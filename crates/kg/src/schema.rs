//! Data Global Schema construction — Algorithm 3.
//!
//! Builds the dataset side of the LiDS graph from column profiles: a
//! metadata subgraph (dataset → table → column hierarchy plus statistics)
//! and similarity edges between column pairs of the same fine-grained type
//! from different tables. Label similarity uses word embeddings with
//! threshold `α`; content similarity uses the *true ratio* for booleans
//! (threshold `β`) and CoLR cosine for everything else (threshold `θ`).
//! Similarity edges are RDF-star-annotated with their score.
//!
//! The pairwise pass is a staged similarity engine rather than a flat
//! O(n²) loop over materialised pairs:
//!
//! 1. **Embedding preparation** — every distinct column label is embedded
//!    exactly once ([`LabelEmbeddingCache`]) and each bucket's CoLR
//!    vectors are pre-normalized into a [`RowMatrix`], so cosine reduces
//!    to a dot product ([`dot_lanes`]).
//! 2. **Candidate generation** — per fine-grained-type bucket. Buckets at
//!    or below [`LinkingConfig::bucket_cutoff`] (and everything under
//!    [`LinkingMode::Exact`]) take the exact blocked scan
//!    ([`scan_pairs_above`]); larger buckets under
//!    [`LinkingMode::Pruned`] query a sharded HNSW index
//!    ([`ShardedHnsw`]) with a radius of `1 − θ` plus a safety margin,
//!    group the hits into connected components, and bound component
//!    pairs with the triangle inequality on centroids — pairs outside
//!    the bound provably contain no θ-edge, so the filter is lossless
//!    even though HNSW itself is approximate. Boolean buckets prune with
//!    a sorted sliding window over the true ratio instead of an index.
//! 3. **Exact scoring** — every surviving pair is scored with the same
//!    [`dot_lanes`] kernel (or the same true-ratio formula) and the same
//!    α/β/θ gates as the exact path, so pruning is *only* a candidate
//!    filter: the emitted edge set and RDF-star scores are identical in
//!    both modes, bit for bit.
//!
//! Label edges keep the exhaustive pass but computed over label
//! *equivalence classes*: one cached similarity per distinct label pair,
//! fanned out to the matching column pairs.

use std::time::Instant;

use lids_embed::{FineGrainedType, LabelEmbeddingCache, WordEmbeddings};
use lids_exec::parallel_blocks;
use lids_profiler::ColumnProfile;
use lids_rdf::{Quad, QuadStore, Term};
use lids_vector::{
    dot_lanes, scan_pairs_above, HnswConfig, Metric, RowMatrix, SearchStats, ShardedHnsw,
};

use crate::ontology::{class, data_prop, object_prop, res, Vocab};

/// How content-similarity candidates are generated.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LinkingMode {
    /// Exhaustive blocked scan over every same-type cross-table pair.
    Exact,
    /// Index-pruned candidates, each verified by the exact kernel.
    Pruned,
}

/// Tuning for the staged similarity engine.
#[derive(Debug, Clone, Copy)]
pub struct LinkingConfig {
    /// Candidate-generation strategy.
    pub mode: LinkingMode,
    /// Buckets with at most this many rows use the exact scan even under
    /// [`LinkingMode::Pruned`] — below it the index build costs more than
    /// the pairs it saves.
    pub bucket_cutoff: usize,
    /// Rows per worker task in the blocked passes.
    pub block: usize,
    /// HNSW `M` (max connections per node on upper layers).
    pub hnsw_m: usize,
    /// HNSW construction beam width.
    pub hnsw_ef_construction: usize,
    /// HNSW search beam width.
    pub hnsw_ef_search: usize,
    /// Independent HNSW shards built in parallel.
    pub shards: usize,
    /// Initial `k` for the adaptive radius search over-fetch.
    pub init_k: usize,
}

impl Default for LinkingConfig {
    /// ANN recall only shapes the candidate components (the
    /// triangle-inequality bound makes the filter lossless regardless), so
    /// the defaults favour a cheap index over a high-recall one.
    fn default() -> Self {
        LinkingConfig {
            mode: LinkingMode::Pruned,
            bucket_cutoff: 192,
            block: 64,
            hnsw_m: 8,
            hnsw_ef_construction: 32,
            hnsw_ef_search: 16,
            shards: 4,
            init_k: 16,
        }
    }
}

/// Widens the HNSW radius (`1 − θ`) so float noise between the index
/// metric and the [`dot_lanes`] re-check cannot drop a true candidate;
/// the exact gate then discards anything the margin let through.
pub(crate) const RADIUS_MARGIN: f32 = 1e-3;

/// Widens the boolean sliding window (`1 − β`) the same way; `β` is f64
/// so a much smaller slack suffices.
const WINDOW_MARGIN: f64 = 1e-9;

/// Fixed level-assignment seed so pruned runs are reproducible.
pub(crate) const HNSW_SEED: u64 = 0x11d5;

/// Slack added to the Euclidean equivalent of the θ-ball (`√(2(1−θ))`) and
/// to each component radius in the triangle-inequality bound, absorbing
/// f32 rounding in centroid/radius computation. The bound only decides
/// which component pairs are *enumerated*; the exact θ gate still decides
/// every edge, so over-wide margins cost speed, never correctness.
pub(crate) const GEOM_MARGIN: f32 = 1e-4;

/// Similarity thresholds (`α`, `β`, `θ` in Algorithm 3) plus engine tuning.
#[derive(Debug, Clone, Copy)]
pub struct SchemaConfig {
    /// Label-similarity threshold.
    pub alpha: f32,
    /// Boolean true-ratio similarity threshold.
    pub beta: f64,
    /// Content (CoLR cosine) similarity threshold.
    pub theta: f32,
    /// Candidate-generation strategy and tuning.
    pub linking: LinkingConfig,
}

impl Default for SchemaConfig {
    fn default() -> Self {
        SchemaConfig {
            alpha: 0.75,
            beta: 0.9,
            theta: 0.9,
            linking: LinkingConfig::default(),
        }
    }
}

/// Construction statistics.
#[derive(Debug, Clone, Default)]
pub struct SchemaStats {
    pub columns: usize,
    /// Logical same-type cross-table pairs (the exact pass's workload).
    pub pairs_compared: usize,
    /// Content pairs that reached the exact scorer.
    pub candidates_generated: usize,
    /// Content pairs the candidate stage ruled out without scoring.
    pub pairs_pruned: usize,
    pub label_edges: usize,
    pub content_edges: usize,
    pub metadata_triples: usize,
    /// Wall-clock seconds of the label-similarity pass.
    pub label_secs: f64,
    /// Wall-clock seconds of the content-similarity pass.
    pub content_secs: f64,
    /// Per-fine-grained-type breakdown of the content pass, ordered by
    /// type label (deterministic across runs and thread counts).
    pub buckets: Vec<BucketStats>,
    /// ANN work counters aggregated over every HNSW-pruned bucket.
    pub hnsw: SearchStats,
}

/// Content-pass breakdown for one fine-grained-type bucket.
#[derive(Debug, Clone, Default)]
pub struct BucketStats {
    /// Fine-grained type label (`"int"`, `"named_entity"`, …).
    pub fgt: &'static str,
    /// Columns in the bucket eligible for content comparison.
    pub rows: usize,
    /// Cross-table pairs the exact pass would score.
    pub eligible_pairs: usize,
    /// Pairs that reached the exact scorer.
    pub candidates: usize,
    /// Pairs the candidate stage ruled out without scoring.
    pub pruned: usize,
    /// Candidate-generation strategy taken: `"exact-scan"`,
    /// `"true-ratio-window"`, or `"hnsw"`.
    pub strategy: &'static str,
    /// ANN work counters (all zero unless the strategy was `"hnsw"`).
    pub hnsw: SearchStats,
}

/// One similarity edge produced by a comparison worker.
struct Edge {
    a: String,
    b: String,
    predicate: &'static str,
    score: f64,
}

/// Build the data global schema into the store's default graph.
///
/// Convenience wrapper over [`data_global_schema_quads`] +
/// [`QuadStore::extend`].
pub fn build_data_global_schema(
    store: &mut QuadStore,
    profiles: &[ColumnProfile],
    config: &SchemaConfig,
    we: &WordEmbeddings,
) -> SchemaStats {
    let mut batch = Vec::new();
    let stats = data_global_schema_quads(&mut batch, profiles, config, we);
    store.extend(batch);
    stats
}

/// Append the metadata quads of one column profile (Algorithm 3 lines
/// 2–5): the dataset/table hierarchy nodes on first sight, then the
/// column node with its type and statistics. Shared by the batch schema
/// pass, the incremental delta path, and retraction-set regeneration, so
/// the three always agree on the exact quad shapes.
pub(crate) fn push_profile_metadata(
    out: &mut Vec<Quad>,
    triples: &mut usize,
    vocab: &Vocab,
    p: &ColumnProfile,
    seen_datasets: &mut std::collections::HashSet<String>,
    seen_tables: &mut std::collections::HashSet<(String, String)>,
) {
    let mut emit = |out: &mut Vec<Quad>, s: Term, pr: Term, o: Term| {
        out.push(Quad::new(s, pr, o));
        *triples += 1;
    };
    let is_part_of = vocab.obj(object_prop::IS_PART_OF);
    let has_table = vocab.obj(object_prop::HAS_TABLE);
    let has_column = vocab.obj(object_prop::HAS_COLUMN);
    let d_iri = res::dataset(&p.meta.dataset);
    if seen_datasets.insert(p.meta.dataset.clone()) {
        emit(out, Term::iri(d_iri.clone()), vocab.rdf_type.clone(), vocab.class(class::DATASET));
        emit(out, Term::iri(d_iri.clone()), vocab.rdfs_label.clone(), Term::string(p.meta.dataset.clone()));
    }
    let t_iri = res::table(&p.meta.dataset, &p.meta.table);
    if seen_tables.insert((p.meta.dataset.clone(), p.meta.table.clone())) {
        emit(out, Term::iri(t_iri.clone()), vocab.rdf_type.clone(), vocab.class(class::TABLE));
        emit(out, Term::iri(t_iri.clone()), vocab.rdfs_label.clone(), Term::string(p.meta.table.clone()));
        emit(out, Term::iri(t_iri.clone()), is_part_of.clone(), Term::iri(d_iri.clone()));
        emit(out, Term::iri(d_iri.clone()), has_table.clone(), Term::iri(t_iri.clone()));
    }
    let c_iri = res::column(&p.meta.dataset, &p.meta.table, &p.meta.column);
    let c = Term::iri(c_iri);
    emit(out, c.clone(), vocab.rdf_type.clone(), vocab.class(class::COLUMN));
    emit(out, c.clone(), vocab.rdfs_label.clone(), Term::string(p.meta.column.clone()));
    emit(out, c.clone(), is_part_of.clone(), Term::iri(t_iri.clone()));
    emit(out, Term::iri(t_iri), has_column.clone(), c.clone());
    emit(out, c.clone(), vocab.data(data_prop::HAS_DATA_TYPE), Term::string(p.fgt.label()));
    emit(
        out,
        c.clone(),
        vocab.data(data_prop::HAS_TOTAL_VALUE_COUNT),
        Term::integer(p.stats.count as i64),
    );
    emit(
        out,
        c.clone(),
        vocab.data(data_prop::HAS_MISSING_VALUE_COUNT),
        Term::integer(p.stats.nulls as i64),
    );
    emit(
        out,
        c.clone(),
        vocab.data(data_prop::HAS_DISTINCT_VALUE_COUNT),
        Term::integer(p.stats.distinct as i64),
    );
    if let Some(v) = p.stats.mean {
        emit(out, c.clone(), vocab.data(data_prop::HAS_MEAN_VALUE), Term::double(v));
    }
    if let Some(v) = p.stats.min {
        emit(out, c.clone(), vocab.data(data_prop::HAS_MIN_VALUE), Term::double(v));
    }
    if let Some(v) = p.stats.max {
        emit(out, c.clone(), vocab.data(data_prop::HAS_MAX_VALUE), Term::double(v));
    }
    if let Some(v) = p.stats.true_ratio {
        emit(out, c, vocab.data(data_prop::HAS_TRUE_RATIO), Term::double(v));
    }
}

/// Append the data global schema quads (default graph) to a batch.
pub fn data_global_schema_quads(
    out: &mut Vec<Quad>,
    profiles: &[ColumnProfile],
    config: &SchemaConfig,
    we: &WordEmbeddings,
) -> SchemaStats {
    data_global_schema_quads_seeded(out, profiles, config, we).0
}

/// [`data_global_schema_quads`], additionally handing back the stage-1/2
/// linking structures ([`LinkSeed`]) the pass built — the interned label
/// cache, dense table ids, and each bucket's pre-normalized matrix plus
/// (for HNSW-pruned buckets) the sharded index and candidate components —
/// so an incremental maintainer can keep linking new columns against them
/// instead of rebuilding from scratch.
pub fn data_global_schema_quads_seeded(
    out: &mut Vec<Quad>,
    profiles: &[ColumnProfile],
    config: &SchemaConfig,
    we: &WordEmbeddings,
) -> (SchemaStats, LinkSeed) {
    let mut stats = SchemaStats { columns: profiles.len(), ..Default::default() };
    let vocab = Vocab::new();

    // ---- metadata subgraph (Algorithm 3 lines 2–5) ----
    let mut seen_tables: std::collections::HashSet<(String, String)> = Default::default();
    let mut seen_datasets: std::collections::HashSet<String> = Default::default();
    for p in profiles {
        push_profile_metadata(
            out,
            &mut stats.metadata_triples,
            &vocab,
            p,
            &mut seen_datasets,
            &mut seen_tables,
        );
    }

    // ---- pairwise similarity (Algorithm 3 lines 6–19) ----

    // Stage 1: embedding preparation. Column IRIs, dense table ids, and
    // one cached label embedding per *distinct* label.
    let col_iris: Vec<String> = profiles
        .iter()
        .map(|p| res::column(&p.meta.dataset, &p.meta.table, &p.meta.column))
        .collect();
    let mut table_ids: std::collections::HashMap<(&str, &str), u32> = Default::default();
    let table_of: Vec<u32> = profiles
        .iter()
        .map(|p| {
            let next = table_ids.len() as u32;
            *table_ids
                .entry((p.meta.dataset.as_str(), p.meta.table.as_str()))
                .or_insert(next)
        })
        .collect();
    let mut cache = LabelEmbeddingCache::new();
    let label_of: Vec<lids_embed::LabelId> = profiles
        .iter()
        .map(|p| cache.intern(we, &p.meta.column))
        .collect();

    let mut by_type: std::collections::HashMap<FineGrainedType, Vec<usize>> = Default::default();
    for (i, p) in profiles.iter().enumerate() {
        by_type.entry(p.fgt).or_default().push(i);
    }
    for members in by_type.values() {
        stats.pairs_compared += cross_table_pair_count(members, &table_of);
    }

    let lk = &config.linking;
    let mut edges: Vec<Edge> = Vec::new();

    // Label pass: exact and exhaustive (Algorithm 3 lines 11–12), computed
    // over *equivalence classes*. Label similarity depends only on the two
    // label strings, so columns are grouped by interned label id, each
    // distinct label pair is scored once from the cache, and the score
    // fans out to every cross-table column pair in the two groups. Same
    // edge set and scores as the naive n² loop — a lake with n columns but
    // d distinct labels pays O(d²) cosines instead of O(n²).
    let label_start = Instant::now();
    for members in by_type.values() {
        let mut by_label: std::collections::HashMap<lids_embed::LabelId, Vec<usize>> =
            Default::default();
        for &i in members {
            by_label.entry(label_of[i]).or_default().push(i);
        }
        let groups: Vec<(lids_embed::LabelId, Vec<usize>)> = by_label.into_iter().collect();
        let found = parallel_blocks(groups.len(), 1.max(lk.block / 8), |range| {
            let mut out = Vec::new();
            for pos in range {
                let (la, ga) = &groups[pos];
                for (lb, gb) in groups[pos..].iter() {
                    let sim = cache.similarity(*la, *lb);
                    if sim < config.alpha {
                        continue;
                    }
                    if la == lb {
                        for (x, &i) in ga.iter().enumerate() {
                            for &j in &ga[x + 1..] {
                                if table_of[i] != table_of[j] {
                                    out.push((i, j, sim));
                                }
                            }
                        }
                    } else {
                        for &i in ga {
                            for &j in gb {
                                if table_of[i] != table_of[j] {
                                    out.push((i, j, sim));
                                }
                            }
                        }
                    }
                }
            }
            out
        });
        for (i, j, sim) in found.into_iter().flatten() {
            edges.push(Edge {
                a: col_iris[i].clone(),
                b: col_iris[j].clone(),
                predicate: object_prop::HAS_LABEL_SIMILARITY,
                score: sim as f64,
            });
        }
    }
    stats.label_secs = label_start.elapsed().as_secs_f64();

    // Content pass: candidate generation + exact re-check (lines 13–18).
    // Buckets run in type-label order so the per-bucket stats (and any
    // tie-broken float accumulation) are reproducible run to run.
    let content_start = Instant::now();
    let mut captures: Vec<BucketCapture> = Vec::new();
    let mut bucket_order: Vec<(&FineGrainedType, &Vec<usize>)> = by_type.iter().collect();
    bucket_order.sort_by_key(|(fgt, _)| fgt.label());
    for (fgt, members) in bucket_order {
        if *fgt == FineGrainedType::Boolean {
            boolean_content(profiles, members, &col_iris, &table_of, config, &mut edges, &mut stats, fgt.label());
        } else {
            embeddable_content(profiles, members, &col_iris, &table_of, config, &mut edges, &mut stats, *fgt, &mut captures);
        }
    }
    for b in &stats.buckets {
        stats.hnsw.merge(&b.hnsw);
    }
    stats.content_secs = content_start.elapsed().as_secs_f64();

    // Predicate and annotation terms are shared by every edge — build them
    // once instead of re-formatting the IRIs per insertion.
    let label_pred = Term::iri(object_prop::iri(object_prop::HAS_LABEL_SIMILARITY));
    let content_pred = Term::iri(object_prop::iri(object_prop::HAS_CONTENT_SIMILARITY));
    let certainty = Term::iri(data_prop::iri(data_prop::WITH_CERTAINTY));
    for edge in edges {
        if edge.predicate == object_prop::HAS_LABEL_SIMILARITY {
            stats.label_edges += 1;
            push_edge_with(out, &edge.a, &edge.b, &label_pred, &certainty, edge.score);
        } else {
            stats.content_edges += 1;
            push_edge_with(out, &edge.a, &edge.b, &content_pred, &certainty, edge.score);
        }
    }
    let seed = LinkSeed {
        cache,
        table_ids: table_ids
            .into_iter()
            .map(|((d, t), id)| ((d.to_string(), t.to_string()), id))
            .collect(),
        table_of,
        label_of,
        buckets: captures,
    };
    (stats, seed)
}

/// The stage-1/2 structures one batch schema pass built, handed over via
/// [`data_global_schema_quads_seeded`] so incremental maintenance links
/// against the *same* label cache, table-id assignment, matrices, and
/// indexes the batch pass used.
pub struct LinkSeed {
    /// Interned label embeddings: one entry per distinct column label.
    pub cache: LabelEmbeddingCache,
    /// Dense table ids in first-appearance order (the cross-table gate's
    /// identity space).
    pub table_ids: std::collections::HashMap<(String, String), u32>,
    /// Profile index → its table id.
    pub table_of: Vec<u32>,
    /// Profile index → its interned label.
    pub label_of: Vec<lids_embed::LabelId>,
    /// Per-embeddable-bucket matrices/indexes, in type-label order.
    pub buckets: Vec<BucketCapture>,
}

/// One embeddable bucket's content-pass structures, kept alive after the
/// batch pass.
pub struct BucketCapture {
    pub fgt: FineGrainedType,
    /// Bucket row → profile index (rows with a non-empty embedding).
    pub rows: Vec<usize>,
    /// Pre-normalized CoLR vectors, one row per entry of `rows`.
    pub matrix: RowMatrix,
    /// The sharded HNSW the pruned path built (`None` for exact-scan
    /// buckets at or below the cutoff).
    pub hnsw: Option<ShardedHnsw>,
    /// The candidate components plus centroid geometry the pruned path
    /// derived (`None` for exact-scan buckets).
    pub cells: Option<CellSet>,
}

/// A partition of a bucket's rows into components with centroid/radius
/// geometry: the lossless triangle-inequality candidate filter. For a
/// query vector `q`, every stored row within the θ-ball of `q` lives in a
/// cell whose centroid is within `r_max + radius` of `q`.
pub struct CellSet {
    /// Row ids per cell; every covered row appears in exactly one cell.
    pub members: Vec<Vec<u32>>,
    /// Flat `cells × dim` centroid matrix.
    pub centroids: Vec<f32>,
    /// Max member distance to the centroid, plus [`GEOM_MARGIN`].
    pub radii: Vec<f32>,
    /// Squared centroid norms, for the sqrt-free bound check.
    pub norms_sq: Vec<f32>,
    pub dim: usize,
}

/// Insert one similarity edge: both directions materialised (symmetric,
/// for cheap BGP queries), each RDF-star-annotated with its score.
/// `predicate` is the short object-property name, e.g.
/// [`object_prop::HAS_CONTENT_SIMILARITY`].
pub fn insert_similarity_edge(
    store: &mut QuadStore,
    a_iri: &str,
    b_iri: &str,
    predicate: &str,
    score: f64,
) {
    let pred = Term::iri(object_prop::iri(predicate));
    let certainty = Term::iri(data_prop::iri(data_prop::WITH_CERTAINTY));
    let mut batch = Vec::with_capacity(4);
    push_edge_with(&mut batch, a_iri, b_iri, &pred, &certainty, score);
    store.extend(batch);
}

/// [`insert_similarity_edge`] with the shared terms pre-built: the subject
/// and object terms are constructed once and the reverse direction reuses
/// them via an in-place swap instead of fresh string allocations.
pub(crate) fn push_edge_with(
    out: &mut Vec<Quad>,
    a_iri: &str,
    b_iri: &str,
    pred: &Term,
    certainty: &Term,
    score: f64,
) {
    let a = Term::iri(a_iri.to_string());
    let b = Term::iri(b_iri.to_string());
    let mut plain = Quad::new(a.clone(), pred.clone(), b.clone());
    let mut star = Quad::new(
        Term::quoted(a, pred.clone(), b),
        certainty.clone(),
        Term::double(score),
    );
    out.push(plain.clone());
    out.push(star.clone());
    std::mem::swap(&mut plain.subject, &mut plain.object);
    if let Term::Quoted(t) = &mut star.subject {
        std::mem::swap(&mut t.subject, &mut t.object);
    }
    out.push(plain);
    out.push(star);
}

/// Euclidean distance between two raw f32 vectors.
pub(crate) fn euclidean(a: &[f32], b: &[f32]) -> f32 {
    a.iter()
        .zip(b)
        .map(|(x, y)| {
            let d = x - y;
            d * d
        })
        .sum::<f32>()
        .sqrt()
}

/// Connected components over `n` nodes and undirected `edges` (union-find
/// with path halving). Every node appears in exactly one component;
/// isolated nodes come back as singletons. Components are ordered by their
/// smallest member so downstream iteration is deterministic.
pub(crate) fn components(n: usize, edges: &[(u32, u32)]) -> Vec<Vec<u32>> {
    let mut parent: Vec<u32> = (0..n as u32).collect();
    fn find(parent: &mut [u32], mut x: u32) -> u32 {
        while parent[x as usize] != x {
            parent[x as usize] = parent[parent[x as usize] as usize];
            x = parent[x as usize];
        }
        x
    }
    for &(a, b) in edges {
        let ra = find(&mut parent, a);
        let rb = find(&mut parent, b);
        if ra != rb {
            parent[ra.max(rb) as usize] = ra.min(rb);
        }
    }
    let mut groups: std::collections::HashMap<u32, Vec<u32>> = Default::default();
    for i in 0..n as u32 {
        groups.entry(find(&mut parent, i)).or_default().push(i);
    }
    let mut out: Vec<Vec<u32>> = groups.into_values().collect();
    out.sort_by_key(|g| g[0]);
    out
}

/// Cross-table pairs among `rows`: all pairs minus the same-table ones,
/// counted from per-table tallies in O(|rows|).
fn cross_table_pair_count(rows: &[usize], table_of: &[u32]) -> usize {
    let mut per_table: std::collections::HashMap<u32, usize> = Default::default();
    for &i in rows {
        *per_table.entry(table_of[i]).or_insert(0) += 1;
    }
    let total = rows.len() * rows.len().saturating_sub(1) / 2;
    let same: usize = per_table.values().map(|&m| m * (m - 1) / 2).sum();
    total - same
}

/// Content similarity for a boolean bucket: `1 − |true_ratio_a −
/// true_ratio_b| ≥ β`. Pruned mode sorts by true ratio and slides a
/// `1 − β` window (plus margin) as the candidate filter; candidates are
/// re-checked with the exact original predicate, so both modes emit the
/// same edges.
#[allow(clippy::too_many_arguments)]
fn boolean_content(
    profiles: &[ColumnProfile],
    members: &[usize],
    col_iris: &[String],
    table_of: &[u32],
    config: &SchemaConfig,
    edges: &mut Vec<Edge>,
    stats: &mut SchemaStats,
    fgt: &'static str,
) {
    let rows: Vec<usize> = members
        .iter()
        .copied()
        .filter(|&i| profiles[i].stats.true_ratio.is_some())
        .collect();
    if rows.len() < 2 {
        return;
    }
    let ratio = |i: usize| profiles[i].stats.true_ratio.unwrap_or_default();
    let eligible = cross_table_pair_count(&rows, table_of);
    let lk = &config.linking;

    let push = |out: &mut Vec<Edge>, i: usize, j: usize, score: f64| {
        out.push(Edge {
            a: col_iris[i].clone(),
            b: col_iris[j].clone(),
            predicate: object_prop::HAS_CONTENT_SIMILARITY,
            score,
        });
    };

    if lk.mode == LinkingMode::Exact || rows.len() <= lk.bucket_cutoff {
        stats.candidates_generated += eligible;
        stats.buckets.push(BucketStats {
            fgt,
            rows: rows.len(),
            eligible_pairs: eligible,
            candidates: eligible,
            strategy: "exact-scan",
            ..Default::default()
        });
        let found = parallel_blocks(rows.len(), lk.block, |range| {
            let mut out = Vec::new();
            for pos in range {
                let i = rows[pos];
                for &j in &rows[pos + 1..] {
                    if table_of[i] == table_of[j] {
                        continue;
                    }
                    let sim = 1.0 - (ratio(i) - ratio(j)).abs();
                    if sim >= config.beta {
                        out.push((i, j, sim));
                    }
                }
            }
            out
        });
        for (i, j, sim) in found.into_iter().flatten() {
            push(edges, i, j, sim);
        }
    } else {
        let mut order = rows.clone();
        order.sort_by(|&a, &b| ratio(a).total_cmp(&ratio(b)));
        let window = (1.0 - config.beta) + WINDOW_MARGIN;
        let found = parallel_blocks(order.len(), lk.block, |range| {
            let mut out = Vec::new();
            let mut cand = 0usize;
            for pos in range {
                let i = order[pos];
                let ta = ratio(i);
                for &j in &order[pos + 1..] {
                    if ratio(j) - ta > window {
                        break;
                    }
                    if table_of[i] == table_of[j] {
                        continue;
                    }
                    cand += 1;
                    // the exact original gate, not the windowed one
                    let sim = 1.0 - (ta - ratio(j)).abs();
                    if sim >= config.beta {
                        out.push((i, j, sim));
                    }
                }
            }
            (out, cand)
        });
        let mut candidates = 0usize;
        for (hits, cand) in found {
            candidates += cand;
            for (i, j, sim) in hits {
                push(edges, i, j, sim);
            }
        }
        stats.candidates_generated += candidates;
        stats.pairs_pruned += eligible.saturating_sub(candidates);
        stats.buckets.push(BucketStats {
            fgt,
            rows: rows.len(),
            eligible_pairs: eligible,
            candidates,
            pruned: eligible.saturating_sub(candidates),
            strategy: "true-ratio-window",
            ..Default::default()
        });
    }
}

/// Content similarity for an embeddable bucket: CoLR cosine `≥ θ` over
/// pre-normalized vectors. Small buckets (or [`LinkingMode::Exact`]) take
/// the exact blocked scan; large buckets under [`LinkingMode::Pruned`]
/// generate candidates from a sharded HNSW radius query and re-check each
/// with the same [`dot_lanes`] kernel the exact scan uses.
#[allow(clippy::too_many_arguments)]
fn embeddable_content(
    profiles: &[ColumnProfile],
    members: &[usize],
    col_iris: &[String],
    table_of: &[u32],
    config: &SchemaConfig,
    edges: &mut Vec<Edge>,
    stats: &mut SchemaStats,
    fgt_type: FineGrainedType,
    captures: &mut Vec<BucketCapture>,
) {
    let fgt = fgt_type.label();
    let rows: Vec<usize> = members
        .iter()
        .copied()
        .filter(|&i| !profiles[i].embedding.is_empty())
        .collect();
    if rows.is_empty() {
        return;
    }
    let dim = profiles[rows[0]].embedding.len();
    let mut m = RowMatrix::with_capacity(dim, rows.len());
    for &i in &rows {
        m.push_normalized(&profiles[i].embedding);
    }
    if rows.len() < 2 {
        // no pairs to score, but the row must stay linkable against
        captures.push(BucketCapture { fgt: fgt_type, rows, matrix: m, hnsw: None, cells: None });
        return;
    }
    let eligible = cross_table_pair_count(&rows, table_of);
    let lk = &config.linking;

    let hits: Vec<(u32, u32, f32)>;
    if lk.mode == LinkingMode::Exact || rows.len() <= lk.bucket_cutoff {
        stats.candidates_generated += eligible;
        stats.buckets.push(BucketStats {
            fgt,
            rows: rows.len(),
            eligible_pairs: eligible,
            candidates: eligible,
            strategy: "exact-scan",
            ..Default::default()
        });
        hits = scan_pairs_above(&m, config.theta, lk.block, |i, j| {
            table_of[rows[i as usize]] != table_of[rows[j as usize]]
        });
        captures.push(BucketCapture { fgt: fgt_type, rows: rows.clone(), matrix: m, hnsw: None, cells: None });
    } else {
        // Stage 2a: ANN seeding. Radius queries over the sharded HNSW
        // surface nearly every θ-pair; each unordered pair has two chances
        // to be seen (from either endpoint's query).
        let index = ShardedHnsw::build(
            &m,
            HnswConfig {
                m: lk.hnsw_m,
                ef_construction: lk.hnsw_ef_construction,
                ef_search: lk.hnsw_ef_search,
                metric: Metric::Cosine,
                seed: HNSW_SEED,
            },
            lk.shards,
        );
        let radius = (1.0 - config.theta) + RADIUS_MARGIN;
        let seeded = parallel_blocks(m.len(), lk.block, |range| {
            let mut out = Vec::new();
            let mut ann = SearchStats::default();
            for i in range {
                for hit in index.search_radius_with_stats(m.row(i), radius, lk.init_k, &mut ann) {
                    let j = hit.id as usize;
                    if j != i {
                        out.push((i.min(j) as u32, i.max(j) as u32));
                    }
                }
            }
            (out, ann)
        });
        let mut ann = SearchStats::default();
        let mut seeds: Vec<(u32, u32)> = Vec::new();
        for (block, block_ann) in seeded {
            ann.merge(&block_ann);
            seeds.extend(block);
        }

        // Stage 2b: group the seeds into connected components, then bound
        // component pairs with the triangle inequality. On pre-normalized
        // vectors `cos(a,b) ≥ θ ⇔ ‖a−b‖ ≤ √(2(1−θ))`, so for components
        // A, B with centroids c_A, c_B and radii r_A, r_B, any cross pair
        // satisfies `‖a−b‖ ≥ ‖c_A−c_B‖ − r_A − r_B`. Component pairs whose
        // centroid distance exceeds `R + r_A + r_B` provably contain no
        // θ-pair and are pruned; every other pair of columns is scored
        // exactly. ANN recall therefore affects only *speed* (worse recall
        // → more fragmented components → more cross-checks), never the
        // emitted edge set.
        let comps = components(m.len(), &seeds);
        let r_max = ((2.0 * (1.0 - config.theta as f64)).sqrt() + GEOM_MARGIN as f64) as f32;
        let dim = m.dim();
        let mut centroids: Vec<f32> = vec![0.0; comps.len() * dim];
        let mut radii: Vec<f32> = vec![0.0; comps.len()];
        for (c, members) in comps.iter().enumerate() {
            let centroid = &mut centroids[c * dim..(c + 1) * dim];
            for &i in members {
                for (acc, x) in centroid.iter_mut().zip(m.row(i as usize)) {
                    *acc += x;
                }
            }
            for x in centroid.iter_mut() {
                *x /= members.len() as f32;
            }
            radii[c] = members
                .iter()
                .map(|&i| euclidean(&centroids[c * dim..(c + 1) * dim], m.row(i as usize)))
                .fold(0.0f32, f32::max)
                + GEOM_MARGIN;
        }
        // Squared centroid norms let the bound check below run on the
        // lane-parallel dot kernel: ‖c_A−c_B‖² = ‖c_A‖² + ‖c_B‖² − 2·c_A·c_B,
        // compared against the squared threshold so no sqrt is needed.
        let norms_sq: Vec<f32> = (0..comps.len())
            .map(|c| {
                let v = &centroids[c * dim..(c + 1) * dim];
                dot_lanes(v, v)
            })
            .collect();

        let found = parallel_blocks(comps.len(), 1.max(lk.block / 8), |range| {
            let mut out = Vec::new();
            let mut cand = 0usize;
            let score_pair = |out: &mut Vec<(u32, u32, f32)>, cand: &mut usize, i: u32, j: u32| {
                if table_of[rows[i as usize]] == table_of[rows[j as usize]] {
                    return;
                }
                *cand += 1;
                // the scan's kernel: scores are bit-identical to the
                // exact path by construction
                let score = dot_lanes(m.row(i as usize), m.row(j as usize)).clamp(-1.0, 1.0);
                if score >= config.theta {
                    out.push((i.min(j), i.max(j), score));
                }
            };
            for a in range {
                let ca = &centroids[a * dim..(a + 1) * dim];
                for (x, &i) in comps[a].iter().enumerate() {
                    for &j in &comps[a][x + 1..] {
                        score_pair(&mut out, &mut cand, i, j);
                    }
                }
                for b in a + 1..comps.len() {
                    let cb = &centroids[b * dim..(b + 1) * dim];
                    let t = r_max + radii[a] + radii[b];
                    let d2 = norms_sq[a] + norms_sq[b] - 2.0 * dot_lanes(ca, cb);
                    if d2 > t * t {
                        continue;
                    }
                    for &i in &comps[a] {
                        for &j in &comps[b] {
                            score_pair(&mut out, &mut cand, i, j);
                        }
                    }
                }
            }
            (out, cand)
        });
        let mut candidates = 0usize;
        let mut all = Vec::new();
        for (block, cand) in found {
            candidates += cand;
            all.extend(block);
        }
        hits = all;
        stats.candidates_generated += candidates;
        stats.pairs_pruned += eligible.saturating_sub(candidates);
        stats.buckets.push(BucketStats {
            fgt,
            rows: rows.len(),
            eligible_pairs: eligible,
            candidates,
            pruned: eligible.saturating_sub(candidates),
            strategy: "hnsw",
            hnsw: ann,
        });
        captures.push(BucketCapture {
            fgt: fgt_type,
            rows: rows.clone(),
            matrix: m,
            hnsw: Some(index),
            cells: Some(CellSet { members: comps, centroids, radii, norms_sq, dim }),
        });
    }

    for (i, j, score) in hits {
        edges.push(Edge {
            a: col_iris[rows[i as usize]].clone(),
            b: col_iris[rows[j as usize]].clone(),
            predicate: object_prop::HAS_CONTENT_SIMILARITY,
            score: score as f64,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lids_embed::ColrModels;
    use lids_profiler::{profile_table, ProfilerConfig};
    use lids_profiler::table::{Column, Table};
    use lids_rdf::QuadPattern;

    fn profiles() -> Vec<ColumnProfile> {
        let models = ColrModels::untrained(3);
        let we = WordEmbeddings::new();
        let cfg = ProfilerConfig::default();
        let t1 = Table::new(
            "patients",
            vec![
                Column::new("age", (20..24).map(|i| i.to_string()).collect()),
                Column::new("smoker", vec!["true".into(), "false".into(), "true".into(), "true".into()]),
            ],
        );
        let t2 = Table::new(
            "clients",
            vec![
                Column::new("age", (20..24).map(|i| i.to_string()).collect()),
                Column::new("is_smoker", vec!["true".into(), "true".into(), "true".into(), "false".into()]),
            ],
        );
        let mut ps = profile_table("health", &t1, &models, &we, &cfg, None);
        ps.extend(profile_table("bank", &t2, &models, &we, &cfg, None));
        ps
    }

    #[test]
    fn metadata_hierarchy_built() {
        let mut store = QuadStore::new();
        let stats = build_data_global_schema(
            &mut store,
            &profiles(),
            &SchemaConfig::default(),
            &WordEmbeddings::new(),
        );
        assert_eq!(stats.columns, 4);
        assert!(stats.metadata_triples > 10);
        // column → table → dataset chain
        let col = res::column("health", "patients", "age");
        let tbl = res::table("health", "patients");
        let part_of: Vec<_> = store
            .match_pattern(
                &QuadPattern::any()
                    .with_subject(Term::iri(col))
                    .with_predicate(Term::iri(object_prop::iri(object_prop::IS_PART_OF))),
            )
            .collect();
        assert_eq!(part_of[0].object.as_iri().unwrap(), tbl);
    }

    #[test]
    fn identical_columns_get_content_edges() {
        let mut store = QuadStore::new();
        let stats = build_data_global_schema(
            &mut store,
            &profiles(),
            &SchemaConfig::default(),
            &WordEmbeddings::new(),
        );
        // the two `age` columns have identical values → cosine 1 ≥ θ
        assert!(stats.content_edges >= 1);
        let a = res::column("health", "patients", "age");
        let b = res::column("bank", "clients", "age");
        let edge = store
            .match_pattern(
                &QuadPattern::any()
                    .with_subject(Term::iri(a.clone()))
                    .with_predicate(Term::iri(object_prop::iri(
                        object_prop::HAS_CONTENT_SIMILARITY,
                    )))
                    .with_object(Term::iri(b.clone())),
            )
            .count();
        assert_eq!(edge, 1);
        // RDF-star annotation present with score ≈ 1
        let score = store
            .match_pattern(
                &QuadPattern::any().with_subject(Term::quoted(
                    Term::iri(a),
                    Term::iri(object_prop::iri(object_prop::HAS_CONTENT_SIMILARITY)),
                    Term::iri(b),
                )),
            )
            .next()
            .unwrap();
        let v = score.object.as_literal().unwrap().as_f64().unwrap();
        assert!(v > 0.99);
    }

    #[test]
    fn label_similarity_edges() {
        let mut store = QuadStore::new();
        let stats = build_data_global_schema(
            &mut store,
            &profiles(),
            &SchemaConfig::default(),
            &WordEmbeddings::new(),
        );
        // age/age exact label match across tables
        assert!(stats.label_edges >= 1);
    }

    #[test]
    fn boolean_similarity_uses_true_ratio() {
        let mut store = QuadStore::new();
        // smoker 0.75 vs is_smoker 0.75 → sim 1.0 ≥ β
        build_data_global_schema(
            &mut store,
            &profiles(),
            &SchemaConfig::default(),
            &WordEmbeddings::new(),
        );
        let a = res::column("health", "patients", "smoker");
        let b = res::column("bank", "clients", "is_smoker");
        let edge = store
            .match_pattern(
                &QuadPattern::any()
                    .with_subject(Term::iri(a))
                    .with_predicate(Term::iri(object_prop::iri(
                        object_prop::HAS_CONTENT_SIMILARITY,
                    )))
                    .with_object(Term::iri(b)),
            )
            .count();
        assert_eq!(edge, 1);
    }

    #[test]
    fn same_table_pairs_skipped() {
        let mut store = QuadStore::new();
        let stats = build_data_global_schema(
            &mut store,
            &profiles(),
            &SchemaConfig::default(),
            &WordEmbeddings::new(),
        );
        // 2 int columns + 2 boolean columns, cross-table only → 1 + 1 pairs
        assert_eq!(stats.pairs_compared, 2);
    }

    #[test]
    fn high_thresholds_suppress_edges() {
        let mut store = QuadStore::new();
        let stats = build_data_global_schema(
            &mut store,
            &profiles(),
            &SchemaConfig { alpha: 1.1, beta: 1.1, theta: 1.1, ..Default::default() },
            &WordEmbeddings::new(),
        );
        assert_eq!(stats.label_edges + stats.content_edges, 0);
    }

    #[test]
    fn exact_and_pruned_agree_on_sample() {
        // tiny cutoff + pruned mode forces the HNSW and sliding-window
        // candidate paths; the edge sets must match the exact mode
        let ps = profiles();
        let we = WordEmbeddings::new();
        let mut exact_store = QuadStore::new();
        let exact_cfg = SchemaConfig {
            linking: LinkingConfig { mode: LinkingMode::Exact, ..Default::default() },
            ..Default::default()
        };
        let exact_stats = build_data_global_schema(&mut exact_store, &ps, &exact_cfg, &we);

        let mut pruned_store = QuadStore::new();
        let pruned_cfg = SchemaConfig {
            linking: LinkingConfig {
                mode: LinkingMode::Pruned,
                bucket_cutoff: 0,
                ..Default::default()
            },
            ..Default::default()
        };
        let pruned_stats = build_data_global_schema(&mut pruned_store, &ps, &pruned_cfg, &we);

        assert_eq!(exact_stats.label_edges, pruned_stats.label_edges);
        assert_eq!(exact_stats.content_edges, pruned_stats.content_edges);
        assert_eq!(exact_stats.pairs_compared, pruned_stats.pairs_compared);
        let mut a: Vec<String> = exact_store.iter().map(|q| q.to_string()).collect();
        let mut b: Vec<String> = pruned_store.iter().map(|q| q.to_string()).collect();
        a.sort();
        b.sort();
        assert_eq!(a, b);
    }

    #[test]
    fn pruned_counters_account_for_all_pairs() {
        let ps = profiles();
        let mut store = QuadStore::new();
        let cfg = SchemaConfig {
            linking: LinkingConfig {
                mode: LinkingMode::Pruned,
                bucket_cutoff: 0,
                ..Default::default()
            },
            ..Default::default()
        };
        let stats = build_data_global_schema(&mut store, &ps, &cfg, &we_default());
        assert!(stats.candidates_generated + stats.pairs_pruned <= stats.pairs_compared);
        assert!(stats.content_edges >= 1);
    }

    fn we_default() -> WordEmbeddings {
        WordEmbeddings::new()
    }

    #[test]
    fn bucket_stats_cover_content_pass() {
        let ps = profiles();
        let mut store = QuadStore::new();
        // default config: both buckets are tiny → exact scan everywhere
        let stats =
            build_data_global_schema(&mut store, &ps, &SchemaConfig::default(), &we_default());
        assert_eq!(stats.buckets.len(), 2);
        let labels: Vec<&str> = stats.buckets.iter().map(|b| b.fgt).collect();
        let mut sorted = labels.clone();
        sorted.sort_unstable();
        assert_eq!(labels, sorted, "buckets ordered by type label");
        for b in &stats.buckets {
            assert_eq!(b.strategy, "exact-scan");
            assert_eq!(b.rows, 2);
            assert_eq!(b.eligible_pairs, 1);
            assert_eq!(b.candidates, 1);
            assert_eq!(b.pruned, 0);
            assert_eq!(b.hnsw, SearchStats::default());
        }
        let eligible: usize = stats.buckets.iter().map(|b| b.eligible_pairs).sum();
        assert_eq!(eligible, stats.pairs_compared);

        // cutoff 0 forces the pruned strategies; the HNSW bucket must
        // report ANN work and the per-bucket counters must reconcile with
        // the aggregate candidate/pruned totals
        let mut store2 = QuadStore::new();
        let cfg = SchemaConfig {
            linking: LinkingConfig {
                mode: LinkingMode::Pruned,
                bucket_cutoff: 0,
                ..Default::default()
            },
            ..Default::default()
        };
        let pruned = build_data_global_schema(&mut store2, &ps, &cfg, &we_default());
        assert_eq!(pruned.buckets.len(), 2);
        let strategies: Vec<&str> = pruned.buckets.iter().map(|b| b.strategy).collect();
        assert!(strategies.contains(&"hnsw"), "int bucket should use hnsw: {strategies:?}");
        assert!(strategies.contains(&"true-ratio-window"), "{strategies:?}");
        let hnsw_bucket = pruned.buckets.iter().find(|b| b.strategy == "hnsw").unwrap();
        assert!(hnsw_bucket.hnsw.searches > 0);
        assert!(hnsw_bucket.hnsw.dist_evals > 0);
        assert_eq!(pruned.hnsw, hnsw_bucket.hnsw, "aggregate sums the one hnsw bucket");
        let cand: usize = pruned.buckets.iter().map(|b| b.candidates).sum();
        let pru: usize = pruned.buckets.iter().map(|b| b.pruned).sum();
        assert_eq!(cand, pruned.candidates_generated);
        assert_eq!(pru, pruned.pairs_pruned);
    }

    #[test]
    fn shared_edge_helper_inserts_both_directions() {
        let mut store = QuadStore::new();
        insert_similarity_edge(
            &mut store,
            "urn:a",
            "urn:b",
            object_prop::HAS_CONTENT_SIMILARITY,
            0.95,
        );
        let pred = Term::iri(object_prop::iri(object_prop::HAS_CONTENT_SIMILARITY));
        for (s, o) in [("urn:a", "urn:b"), ("urn:b", "urn:a")] {
            let plain = store
                .match_pattern(
                    &QuadPattern::any()
                        .with_subject(Term::iri(s))
                        .with_predicate(pred.clone())
                        .with_object(Term::iri(o)),
                )
                .count();
            assert_eq!(plain, 1, "{s} → {o}");
            let star = store
                .match_pattern(&QuadPattern::any().with_subject(Term::quoted(
                    Term::iri(s),
                    pred.clone(),
                    Term::iri(o),
                )))
                .next()
                .unwrap();
            assert_eq!(star.object.as_literal().unwrap().as_f64().unwrap(), 0.95);
        }
    }
}
