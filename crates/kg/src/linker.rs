//! The Global Graph Linker (Section 2.1 / 3.1).
//!
//! Pipeline abstraction emits *predicted* table/column reads as literals.
//! The linker verifies each prediction against the Data Global Schema of
//! the pipeline's dataset: verified tables/columns become `readsTable` /
//! `readsColumn` edges into the dataset graph; unverified predictions
//! (user-defined columns like `NormalizedAge` in Figure 3) are removed.

use std::collections::HashMap;

use lids_rdf::{GraphName, Quad, QuadPattern, QuadStore, Term};

use crate::ontology::{class, object_prop, RDF_TYPE};
#[cfg(test)]
use crate::ontology::res;

/// Linking statistics.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct LinkStats {
    pub tables_linked: usize,
    pub columns_linked: usize,
    pub predictions_dropped: usize,
}

/// Link every abstracted pipeline in the store against the data global
/// schema. Idempotent: consumes all `predictedRead` literals.
///
/// Mutations are batched: verified edges accumulate in a `Vec<Quad>` that
/// is bulk-loaded once at the end ([`QuadStore::extend`]), and consumed
/// predictions are removed afterwards. The read side (schema index,
/// pipeline metadata, per-graph predictions) only touches quads disjoint
/// from both batches, so deferral preserves the per-quad semantics.
pub fn link_pipelines(store: &mut QuadStore) -> LinkStats {
    let mut stats = LinkStats::default();

    // dataset → (table name → table IRI, column name → column IRIs)
    let mut schema_index: HashMap<String, DatasetSchema> = HashMap::new();
    build_schema_index(store, &mut schema_index);

    // pipeline → dataset from the metadata subgraph
    let pipelines: Vec<(String, String)> = store
        .match_pattern(
            &QuadPattern::any()
                .with_predicate(Term::iri(object_prop::iri(object_prop::ABOUT_DATASET))),
        )
        .filter_map(|q| {
            let p = q.subject.as_iri()?.to_string();
            let d = q.object.as_iri()?.to_string();
            Some((p, d))
        })
        .collect();

    let reads_table = Term::iri(object_prop::iri(object_prop::READS_TABLE));
    let reads_column = Term::iri(object_prop::iri(object_prop::READS_COLUMN));
    let mut edges: Vec<Quad> = Vec::new();
    let mut consumed: Vec<Quad> = Vec::new();
    for (pipe_iri, dataset_iri) in pipelines {
        let graph = GraphName::named(pipe_iri.clone());
        let schema = schema_index.get(&dataset_iri);
        let predictions: Vec<Quad> = store
            .match_pattern(
                &QuadPattern::any()
                    .with_predicate(Term::iri(object_prop::iri(object_prop::PREDICTED_READ)))
                    .with_graph(graph.clone()),
            )
            .collect();
        for quad in predictions {
            let Some(lit) = quad.object.as_literal() else { continue };
            let mut linked = false;
            if let Some(schema) = schema {
                if let Some(table) = lit.lexical.strip_prefix("table:") {
                    if let Some(table_iri) = schema.tables.get(table) {
                        edges.push(Quad::in_graph(
                            quad.subject.clone(),
                            reads_table.clone(),
                            Term::iri(table_iri.clone()),
                            graph.clone(),
                        ));
                        stats.tables_linked += 1;
                        linked = true;
                    }
                } else if let Some(column) = lit.lexical.strip_prefix("column:") {
                    if let Some(col_iris) = schema.columns.get(column) {
                        for col_iri in col_iris {
                            edges.push(Quad::in_graph(
                                quad.subject.clone(),
                                reads_column.clone(),
                                Term::iri(col_iri.clone()),
                                graph.clone(),
                            ));
                            stats.columns_linked += 1;
                        }
                        linked = true;
                    }
                }
            }
            if !linked {
                stats.predictions_dropped += 1;
            }
            consumed.push(quad);
        }
    }
    store.extend(edges);
    for quad in &consumed {
        store.remove(quad);
    }
    stats
}

struct DatasetSchema {
    /// table name → table IRI
    tables: HashMap<String, String>,
    /// column name → column IRIs (a name can recur across tables)
    columns: HashMap<String, Vec<String>>,
}

fn build_schema_index(store: &QuadStore, index: &mut HashMap<String, DatasetSchema>) {
    // tables: ?t isPartOf ?d where ?t a Table
    let tables: Vec<(String, String)> = store
        .match_pattern(
            &QuadPattern::any()
                .with_predicate(Term::iri(RDF_TYPE))
                .with_object(Term::iri(class::iri(class::TABLE))),
        )
        .filter_map(|q| {
            let t_iri = q.subject.as_iri()?.to_string();
            let d_iri = store
                .match_pattern(
                    &QuadPattern::any()
                        .with_subject(q.subject.clone())
                        .with_predicate(Term::iri(object_prop::iri(object_prop::IS_PART_OF))),
                )
                .next()?
                .object
                .as_iri()?
                .to_string();
            Some((t_iri, d_iri))
        })
        .collect();

    for (t_iri, d_iri) in tables {
        let t_name = t_iri.rsplit('/').next().unwrap_or("").to_string();
        let entry = index.entry(d_iri).or_insert_with(|| DatasetSchema {
            tables: HashMap::new(),
            columns: HashMap::new(),
        });
        // columns of this table
        for q in store.match_pattern(
            &QuadPattern::any()
                .with_subject(Term::iri(t_iri.clone()))
                .with_predicate(Term::iri(object_prop::iri(object_prop::HAS_COLUMN))),
        ) {
            if let Some(c_iri) = q.object.as_iri() {
                let c_name = c_iri.rsplit('/').next().unwrap_or("").to_string();
                entry.columns.entry(c_name).or_default().push(c_iri.to_string());
            }
        }
        entry.tables.insert(t_name, t_iri);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::abstraction::{abstract_pipeline, AbstractionStats, PipelineMetadata};
    use crate::docs::LibraryDocs;
    use crate::schema::{build_data_global_schema, SchemaConfig};
    use lids_embed::{ColrModels, WordEmbeddings};
    use lids_profiler::table::{Column, Table};
    use lids_profiler::{profile_table, ProfilerConfig};

    const SCRIPT: &str = r#"
import pandas as pd
df = pd.read_csv('titanic/train.csv')
y = df['Survived']
age = df['Age']
df['NormalizedAge'] = age
"#;

    fn build_linked() -> (QuadStore, LinkStats) {
        let mut store = QuadStore::new();
        // dataset side
        let table = Table::new(
            "train",
            vec![
                Column::new("Survived", vec!["0".into(), "1".into()]),
                Column::new("Age", vec!["22".into(), "30".into()]),
            ],
        );
        let profiles = profile_table(
            "titanic",
            &table,
            &ColrModels::untrained(1),
            &WordEmbeddings::new(),
            &ProfilerConfig::default(),
            None,
        );
        build_data_global_schema(
            &mut store,
            &profiles,
            &SchemaConfig::default(),
            &WordEmbeddings::new(),
        );
        // pipeline side
        let md = PipelineMetadata {
            id: "p1".into(),
            dataset: "titanic".into(),
            title: "t".into(),
            author: "a".into(),
            votes: 1,
            score: 0.5,
            task: "classification".into(),
        };
        let mut stats = AbstractionStats::default();
        abstract_pipeline(&mut store, &mut stats, &LibraryDocs::builtin(), &md, SCRIPT).unwrap();
        let link_stats = link_pipelines(&mut store);
        (store, link_stats)
    }

    #[test]
    fn verified_predictions_become_edges() {
        let (store, stats) = build_linked();
        assert_eq!(stats.tables_linked, 1);
        // Survived + Age verified; NormalizedAge dropped
        assert_eq!(stats.columns_linked, 2);
        assert_eq!(stats.predictions_dropped, 1);

        let reads_col = store
            .match_pattern(
                &QuadPattern::any()
                    .with_predicate(Term::iri(object_prop::iri(object_prop::READS_COLUMN))),
            )
            .count();
        assert_eq!(reads_col, 2);
        let reads_table: Vec<Quad> = store
            .match_pattern(
                &QuadPattern::any()
                    .with_predicate(Term::iri(object_prop::iri(object_prop::READS_TABLE))),
            )
            .collect();
        assert_eq!(reads_table.len(), 1);
        assert_eq!(
            reads_table[0].object.as_iri().unwrap(),
            res::table("titanic", "train")
        );
    }

    #[test]
    fn predictions_are_consumed() {
        let (store, _) = build_linked();
        let leftover = store
            .match_pattern(
                &QuadPattern::any()
                    .with_predicate(Term::iri(object_prop::iri(object_prop::PREDICTED_READ))),
            )
            .count();
        assert_eq!(leftover, 0);
    }

    #[test]
    fn linking_is_idempotent() {
        let (mut store, _) = build_linked();
        let again = link_pipelines(&mut store);
        assert_eq!(again, LinkStats::default());
    }

    #[test]
    fn pipeline_without_schema_drops_all() {
        let mut store = QuadStore::new();
        let md = PipelineMetadata {
            id: "p9".into(),
            dataset: "ghost".into(),
            title: "t".into(),
            author: "a".into(),
            votes: 0,
            score: 0.0,
            task: "eda".into(),
        };
        let mut stats = AbstractionStats::default();
        abstract_pipeline(&mut store, &mut stats, &LibraryDocs::builtin(), &md, SCRIPT).unwrap();
        let link = link_pipelines(&mut store);
        assert_eq!(link.tables_linked + link.columns_linked, 0);
        assert!(link.predictions_dropped >= 3);
    }
}
