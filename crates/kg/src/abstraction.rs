//! Pipeline abstraction — Algorithm 1.
//!
//! Each pipeline script is statically analysed (via `lids-py`), enriched
//! with library documentation (return types, implicit parameter names,
//! default parameters) and dataset-usage analysis, and emitted as RDF
//! triples into its own named graph. Triples are tagged with a modelled
//! [`Aspect`] so the Table 3/4 statistics can be reproduced.

use std::collections::HashMap;

use lids_py::{analyze, AnalyzedScript, PyParseError};
use lids_rdf::{GraphName, Quad, QuadStore, Term};

use crate::docs::LibraryDocs;
use crate::ontology::{class, data_prop, object_prop, res, Vocab};

/// The modelled aspects of Table 4 (KGLiDS column).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Aspect {
    DatasetReads,
    LibraryHierarchy,
    RdfNodeTypes,
    ColumnReads,
    LibraryCalls,
    CodeFlow,
    DataFlow,
    ControlFlowType,
    FuncParameters,
    StatementText,
    PipelineMetadata,
}

impl Aspect {
    /// All aspects in Table 4 row order.
    pub const ALL: [Aspect; 11] = [
        Aspect::DatasetReads,
        Aspect::LibraryHierarchy,
        Aspect::RdfNodeTypes,
        Aspect::ColumnReads,
        Aspect::LibraryCalls,
        Aspect::CodeFlow,
        Aspect::DataFlow,
        Aspect::ControlFlowType,
        Aspect::FuncParameters,
        Aspect::StatementText,
        Aspect::PipelineMetadata,
    ];

    /// Table row label.
    pub fn label(self) -> &'static str {
        match self {
            Aspect::DatasetReads => "Dataset reads",
            Aspect::LibraryHierarchy => "Library hierarchy",
            Aspect::RdfNodeTypes => "RDF node types",
            Aspect::ColumnReads => "Column reads",
            Aspect::LibraryCalls => "Library calls",
            Aspect::CodeFlow => "Code flow",
            Aspect::DataFlow => "Data flow",
            Aspect::ControlFlowType => "Control flow type",
            Aspect::FuncParameters => "Func. parameters",
            Aspect::StatementText => "Statement text",
            Aspect::PipelineMetadata => "Pipeline metadata",
        }
    }
}

/// Per-aspect triple counts (Table 4) plus totals.
#[derive(Debug, Clone, Default)]
pub struct AbstractionStats {
    counts: HashMap<Aspect, u64>,
}

impl AbstractionStats {
    /// Record `n` triples of an aspect.
    pub fn add(&mut self, aspect: Aspect, n: u64) {
        *self.counts.entry(aspect).or_insert(0) += n;
    }

    /// Count for one aspect.
    pub fn get(&self, aspect: Aspect) -> u64 {
        self.counts.get(&aspect).copied().unwrap_or(0)
    }

    /// Total across aspects.
    pub fn total(&self) -> u64 {
        self.counts.values().sum()
    }

    /// Merge another stats block into this one.
    pub fn merge(&mut self, other: &AbstractionStats) {
        for (a, n) in &other.counts {
            self.add(*a, *n);
        }
    }
}

/// Pipeline metadata (`MD` in Algorithm 1): dataset linkage, author, votes.
#[derive(Debug, Clone, PartialEq)]
pub struct PipelineMetadata {
    /// Stable pipeline id (file stem on Kaggle).
    pub id: String,
    /// The dataset the pipeline belongs to.
    pub dataset: String,
    pub title: String,
    pub author: String,
    pub votes: u32,
    /// Quality score (e.g. medal score).
    pub score: f64,
    /// Task tag, e.g. `classification` / `regression` / `eda`.
    pub task: String,
}

/// Summary of one abstracted pipeline.
#[derive(Debug, Clone)]
pub struct PipelineGraphInfo {
    /// The pipeline IRI (= its named graph IRI).
    pub graph_iri: String,
    pub statements: usize,
    /// Root libraries used (`pandas`, `sklearn`, …).
    pub libraries: Vec<String>,
}

/// Abstract one pipeline script into the store (Algorithm 1's worker plus
/// the metadata subgraph of the main node).
pub fn abstract_pipeline(
    store: &mut QuadStore,
    stats: &mut AbstractionStats,
    docs: &LibraryDocs,
    md: &PipelineMetadata,
    source: &str,
) -> Result<PipelineGraphInfo, PyParseError> {
    let analyzed = analyze(source)?;
    Ok(emit_pipeline(store, stats, docs, md, &analyzed))
}

/// Emit an already-analysed pipeline into the store.
///
/// Convenience wrapper over [`emit_pipeline_quads`] + [`QuadStore::extend`].
pub fn emit_pipeline(
    store: &mut QuadStore,
    stats: &mut AbstractionStats,
    docs: &LibraryDocs,
    md: &PipelineMetadata,
    analyzed: &AnalyzedScript,
) -> PipelineGraphInfo {
    let mut batch = Vec::new();
    let info = emit_pipeline_quads(&mut batch, stats, docs, md, analyzed, &Vocab::new());
    store.extend(batch);
    info
}

/// Append an already-analysed pipeline's quads to a batch (lets callers
/// parallelise analysis and bulk-load many pipelines in one
/// [`QuadStore::extend`] call).
pub fn emit_pipeline_quads(
    out: &mut Vec<Quad>,
    stats: &mut AbstractionStats,
    docs: &LibraryDocs,
    md: &PipelineMetadata,
    analyzed: &AnalyzedScript,
    vocab: &Vocab,
) -> PipelineGraphInfo {
    let pipe_iri = res::pipeline(&md.dataset, &md.id);
    let graph = GraphName::named(pipe_iri.clone());
    let mut libraries: Vec<String> = Vec::new();

    // --- pipeline metadata subgraph (default graph) ---
    let p = Term::iri(pipe_iri.clone());
    out.push(Quad::new(p.clone(), vocab.rdf_type.clone(), vocab.class(class::PIPELINE)));
    stats.add(Aspect::RdfNodeTypes, 1);
    let meta_triples = [
        (vocab.rdfs_label.clone(), Term::string(md.title.clone())),
        (vocab.data(data_prop::HAS_AUTHOR), Term::string(md.author.clone())),
        (vocab.data(data_prop::HAS_VOTES), Term::integer(md.votes as i64)),
        (vocab.data(data_prop::HAS_SCORE), Term::double(md.score)),
        (vocab.data(data_prop::HAS_NAME), Term::string(md.task.clone())),
        (
            vocab.obj(object_prop::ABOUT_DATASET),
            Term::iri(res::dataset(&md.dataset)),
        ),
    ];
    for (pred, obj) in meta_triples {
        out.push(Quad::new(p.clone(), pred, obj));
        stats.add(Aspect::PipelineMetadata, 1);
    }

    // --- documentation-driven variable typing ---
    // seed with constructor classes found by static analysis
    let mut var_types: HashMap<String, String> = analyzed.var_classes.clone();

    // --- statement subgraph (named graph) ---
    for info in &analyzed.statements {
        let s_iri = res::statement(&pipe_iri, info.index);
        let s = Term::iri(s_iri.clone());
        // (predicate, object, aspect) triples for this statement, inserted
        // in one pass at the end of the loop body
        let mut triples: Vec<(Term, Term, Aspect)> = Vec::new();
        let mut quad = |pred: Term, obj: Term, aspect: Aspect| {
            triples.push((pred, obj, aspect));
        };

        quad(vocab.rdf_type.clone(), vocab.class(class::STATEMENT), Aspect::RdfNodeTypes);
        quad(
            vocab.data(data_prop::HAS_TEXT),
            Term::string(info.text.clone()),
            Aspect::StatementText,
        );
        quad(
            vocab.data(data_prop::HAS_CONTROL_FLOW),
            Term::string(info.control_flow.label()),
            Aspect::ControlFlowType,
        );
        if info.index + 1 < analyzed.statements.len() {
            let next = res::statement(&pipe_iri, info.index + 1);
            quad(
                vocab.obj(object_prop::NEXT_STATEMENT),
                Term::iri(next),
                Aspect::CodeFlow,
            );
        }
        for &from in &info.data_flow_from {
            let from_iri = res::statement(&pipe_iri, from);
            out.push(Quad::in_graph(
                Term::iri(from_iri),
                vocab.obj(object_prop::HAS_DATA_FLOW_TO),
                s.clone(),
                graph.clone(),
            ));
            stats.add(Aspect::DataFlow, 1);
        }

        // --- calls: resolve through imports, var classes, and docs ---
        for call in &info.calls {
            let resolved = call.resolved.clone().or_else(|| {
                let receiver = call.receiver_var.as_ref()?;
                let ty = var_types.get(receiver)?;
                Some(format!("{}.{}", ty, call.path[1..].join(".")))
            });
            let Some(resolved) = resolved else { continue };
            let entry = docs.resolve(&resolved);

            quad(
                vocab.obj(object_prop::CALLS_FUNCTION),
                Term::iri(res::library(&resolved)),
                Aspect::LibraryCalls,
            );
            let root = resolved.split('.').next().unwrap_or("").to_string();
            if !root.is_empty() && !libraries.contains(&root) {
                libraries.push(root);
            }

            // documentation enrichment: parameter names, defaults, and
            // return-type propagation (Algorithm 1 lines 9–13)
            if let Some(entry) = entry {
                let enriched = docs.enrich_parameters(entry, &call.args, &call.kwargs);
                for (name, value, _explicit) in &enriched {
                    quad(
                        vocab.data(data_prop::HAS_PARAMETER),
                        Term::string(format!("{name}={value}")),
                        Aspect::FuncParameters,
                    );
                }
                if let (Some(ret), [first_def, ..]) =
                    (&entry.return_type, info.defines.as_slice())
                {
                    if ret != "self" && info.defines.len() == 1 {
                        var_types.insert(first_def.clone(), ret.clone());
                    }
                }
            } else {
                // undocumented call: keep the explicit arguments as written
                for (i, value) in call.args.iter().enumerate() {
                    quad(
                        vocab.data(data_prop::HAS_PARAMETER),
                        Term::string(format!("arg{i}={value}")),
                        Aspect::FuncParameters,
                    );
                }
                for (name, value) in &call.kwargs {
                    quad(
                        vocab.data(data_prop::HAS_PARAMETER),
                        Term::string(format!("{name}={value}")),
                        Aspect::FuncParameters,
                    );
                }
            }
        }

        // --- dataset usage analysis (Algorithm 1 lines 14–17) ---
        for path in &info.dataset_reads {
            let table = table_name_from_path(path);
            quad(
                vocab.obj(object_prop::PREDICTED_READ),
                Term::string(format!("table:{table}")),
                Aspect::DatasetReads,
            );
        }
        for (_receiver, column) in info.column_reads.iter().chain(&info.column_writes) {
            quad(
                vocab.obj(object_prop::PREDICTED_READ),
                Term::string(format!("column:{column}")),
                Aspect::ColumnReads,
            );
        }

        for (pred, obj, aspect) in triples {
            out.push(Quad::in_graph(s.clone(), pred, obj, graph.clone()));
            stats.add(aspect, 1);
        }
    }

    PipelineGraphInfo {
        graph_iri: pipe_iri,
        statements: analyzed.statements.len(),
        libraries,
    }
}

/// File stem of a dataset read path: `titanic/train.csv` → `train`.
pub fn table_name_from_path(path: &str) -> String {
    let file = path.rsplit(['/', '\\']).next().unwrap_or(path);
    file.rsplit_once('.')
        .map(|(stem, _)| stem)
        .unwrap_or(file)
        .to_string()
}

#[cfg(test)]
mod tests {
    use super::*;
    use lids_rdf::QuadPattern;

    const SCRIPT: &str = r#"
import pandas as pd
from sklearn.ensemble import RandomForestClassifier
df = pd.read_csv('titanic/train.csv')
X = df.drop('Survived', axis=1)
y = df['Survived']
clf = RandomForestClassifier(50, max_depth=10)
clf.fit(X, y)
"#;

    fn md() -> PipelineMetadata {
        PipelineMetadata {
            id: "p1".into(),
            dataset: "titanic".into(),
            title: "Titanic survival".into(),
            author: "alice".into(),
            votes: 120,
            score: 0.9,
            task: "classification".into(),
        }
    }

    fn build() -> (QuadStore, AbstractionStats, PipelineGraphInfo) {
        let mut store = QuadStore::new();
        let mut stats = AbstractionStats::default();
        let docs = LibraryDocs::builtin();
        let info = abstract_pipeline(&mut store, &mut stats, &docs, &md(), SCRIPT).unwrap();
        (store, stats, info)
    }

    #[test]
    fn creates_named_graph_per_pipeline() {
        let (store, _, info) = build();
        assert!(store.named_graphs().contains(&info.graph_iri));
        assert_eq!(info.statements, 7);
    }

    #[test]
    fn return_type_propagates_to_method_calls() {
        // df = pd.read_csv(...) types df as pandas.DataFrame, so df.drop
        // resolves to pandas.DataFrame.drop — the paper's motivating case.
        let (store, _, _) = build();
        let drop_iri = res::library("pandas.DataFrame.drop");
        let hits = store
            .match_pattern(&QuadPattern::any().with_object(Term::iri(drop_iri)))
            .count();
        assert_eq!(hits, 1);
    }

    #[test]
    fn implicit_and_default_parameters_are_recorded() {
        let (store, _, _) = build();
        let params: Vec<String> = store
            .match_pattern(
                &QuadPattern::any()
                    .with_predicate(Term::iri(data_prop::iri(data_prop::HAS_PARAMETER))),
            )
            .filter_map(|q| q.object.as_literal().map(|l| l.lexical.clone()))
            .collect();
        assert!(params.iter().any(|p| p == "n_estimators=50"), "{params:?}");
        assert!(params.iter().any(|p| p == "max_depth=10"));
        // default appended for criterion
        assert!(params.iter().any(|p| p == "criterion='gini'"));
    }

    #[test]
    fn dataset_and_column_reads_predicted() {
        let (store, stats, _) = build();
        let predicted: Vec<String> = store
            .match_pattern(
                &QuadPattern::any()
                    .with_predicate(Term::iri(object_prop::iri(object_prop::PREDICTED_READ))),
            )
            .filter_map(|q| q.object.as_literal().map(|l| l.lexical.clone()))
            .collect();
        assert!(predicted.contains(&"table:train".to_string()));
        assert!(predicted.contains(&"column:Survived".to_string()));
        assert!(stats.get(Aspect::DatasetReads) >= 1);
        assert!(stats.get(Aspect::ColumnReads) >= 1);
    }

    #[test]
    fn code_and_data_flow_edges() {
        let (store, stats, info) = build();
        let next = store
            .match_pattern(
                &QuadPattern::any()
                    .with_predicate(Term::iri(object_prop::iri(object_prop::NEXT_STATEMENT))),
            )
            .count();
        assert_eq!(next, info.statements - 1);
        assert!(stats.get(Aspect::DataFlow) > 0);
    }

    #[test]
    fn metadata_in_default_graph() {
        let (store, _, info) = build();
        let votes = store
            .match_pattern(
                &QuadPattern::any()
                    .with_subject(Term::iri(info.graph_iri.clone()))
                    .with_predicate(Term::iri(data_prop::iri(data_prop::HAS_VOTES)))
                    .with_graph(GraphName::Default),
            )
            .count();
        assert_eq!(votes, 1);
    }

    #[test]
    fn libraries_used() {
        let (_, _, info) = build();
        assert!(info.libraries.contains(&"pandas".to_string()));
        assert!(info.libraries.contains(&"sklearn".to_string()));
    }

    #[test]
    fn table_name_extraction() {
        assert_eq!(table_name_from_path("titanic/train.csv"), "train");
        assert_eq!(table_name_from_path("data.csv"), "data");
        assert_eq!(table_name_from_path("deep/path/to/file.parquet"), "file");
        assert_eq!(table_name_from_path("noext"), "noext");
    }

    #[test]
    fn stats_merge_and_total() {
        let (_, stats, _) = build();
        let mut merged = AbstractionStats::default();
        merged.merge(&stats);
        merged.merge(&stats);
        assert_eq!(merged.total(), stats.total() * 2);
    }
}
