//! The LiDS ontology (Section 2.1).
//!
//! "The LiDS ontology conceptualizes the data, pipeline, and library
//! entities … specified in OWL 2 and has 13 classes, 19 object properties,
//! and 22 data properties." Classes and properties use the
//! `http://kglids.org/ontology/` namespace, resources use
//! `http://kglids.org/resource/`.

use lids_rdf::Term;

/// Ontology namespace prefix.
pub const ONT: &str = "http://kglids.org/ontology/";
/// Resource (instance) namespace prefix.
pub const RES: &str = "http://kglids.org/resource/";
/// RDF namespace `type` property.
pub const RDF_TYPE: &str = "http://www.w3.org/1999/02/22-rdf-syntax-ns#type";
/// RDFS label property.
pub const RDFS_LABEL: &str = "http://www.w3.org/2000/01/rdf-schema#label";

/// The 13 LiDS classes.
pub mod class {
    /// Build the full IRI of a class name.
    pub fn iri(name: &str) -> String {
        format!("{}{name}", super::ONT)
    }

    pub const DATASET: &str = "Dataset";
    pub const TABLE: &str = "Table";
    pub const COLUMN: &str = "Column";
    pub const SOURCE: &str = "Source";
    pub const PIPELINE: &str = "Pipeline";
    pub const STATEMENT: &str = "Statement";
    pub const LIBRARY: &str = "Library";
    pub const LIBRARY_PACKAGE: &str = "LibraryPackage";
    pub const LIBRARY_CLASS: &str = "LibraryClass";
    pub const LIBRARY_FUNCTION: &str = "LibraryFunction";
    pub const MODEL: &str = "Model";
    pub const OPERATION: &str = "Operation";
    pub const USER: &str = "User";

    /// All class names (13, as the paper states).
    pub const ALL: [&str; 13] = [
        DATASET,
        TABLE,
        COLUMN,
        SOURCE,
        PIPELINE,
        STATEMENT,
        LIBRARY,
        LIBRARY_PACKAGE,
        LIBRARY_CLASS,
        LIBRARY_FUNCTION,
        MODEL,
        OPERATION,
        USER,
    ];
}

/// The 19 LiDS object properties.
pub mod object_prop {
    pub fn iri(name: &str) -> String {
        format!("{}{name}", super::ONT)
    }

    pub const IS_PART_OF: &str = "isPartOf";
    pub const HAS_TABLE: &str = "hasTable";
    pub const HAS_COLUMN: &str = "hasColumn";
    pub const NEXT_STATEMENT: &str = "nextStatement";
    pub const HAS_DATA_FLOW_TO: &str = "hasDataFlowTo";
    pub const CALLS_FUNCTION: &str = "callsFunction";
    pub const CALLS_LIBRARY: &str = "callsLibrary";
    pub const CALLS_CLASS: &str = "callsClass";
    pub const READS_TABLE: &str = "readsTable";
    pub const READS_COLUMN: &str = "readsColumn";
    pub const HAS_CONTENT_SIMILARITY: &str = "hasContentSimilarity";
    pub const HAS_LABEL_SIMILARITY: &str = "hasLabelSimilarity";
    pub const HAS_SEMANTIC_SIMILARITY: &str = "hasSemanticSimilarity";
    pub const IS_WRITTEN_BY: &str = "isWrittenBy";
    pub const ABOUT_DATASET: &str = "aboutDataset";
    pub const APPLIES_OPERATION: &str = "appliesOperation";
    pub const TRAINED_ON: &str = "trainedOn";
    pub const USES_LIBRARY: &str = "usesLibrary";
    pub const PREDICTED_READ: &str = "predictedRead";

    /// All object property names (19, as the paper states).
    pub const ALL: [&str; 19] = [
        IS_PART_OF,
        HAS_TABLE,
        HAS_COLUMN,
        NEXT_STATEMENT,
        HAS_DATA_FLOW_TO,
        CALLS_FUNCTION,
        CALLS_LIBRARY,
        CALLS_CLASS,
        READS_TABLE,
        READS_COLUMN,
        HAS_CONTENT_SIMILARITY,
        HAS_LABEL_SIMILARITY,
        HAS_SEMANTIC_SIMILARITY,
        IS_WRITTEN_BY,
        ABOUT_DATASET,
        APPLIES_OPERATION,
        TRAINED_ON,
        USES_LIBRARY,
        PREDICTED_READ,
    ];
}

/// The 22 LiDS data properties.
pub mod data_prop {
    pub fn iri(name: &str) -> String {
        format!("{}{name}", super::ONT)
    }

    pub const HAS_NAME: &str = "hasName";
    pub const HAS_TEXT: &str = "hasText";
    pub const HAS_CONTROL_FLOW: &str = "hasControlFlow";
    pub const HAS_PARAMETER: &str = "hasParameter";
    pub const HAS_LINE: &str = "hasLine";
    pub const HAS_DATA_TYPE: &str = "hasDataType";
    pub const HAS_TOTAL_VALUE_COUNT: &str = "hasTotalValueCount";
    pub const HAS_MISSING_VALUE_COUNT: &str = "hasMissingValueCount";
    pub const HAS_DISTINCT_VALUE_COUNT: &str = "hasDistinctValueCount";
    pub const HAS_MIN_VALUE: &str = "hasMinValue";
    pub const HAS_MAX_VALUE: &str = "hasMaxValue";
    pub const HAS_MEAN_VALUE: &str = "hasMeanValue";
    pub const HAS_STD_DEV: &str = "hasStdDev";
    pub const HAS_TRUE_RATIO: &str = "hasTrueRatio";
    pub const HAS_AVG_LENGTH: &str = "hasAvgLength";
    pub const WITH_CERTAINTY: &str = "withCertainty";
    pub const HAS_VOTES: &str = "hasVotes";
    pub const HAS_SCORE: &str = "hasScore";
    pub const HAS_TITLE: &str = "hasTitle";
    pub const HAS_AUTHOR: &str = "hasAuthor";
    pub const HAS_ROW_COUNT: &str = "hasRowCount";
    pub const HAS_SOURCE_PATH: &str = "hasSourcePath";

    /// All data property names (22, as the paper states).
    pub const ALL: [&str; 22] = [
        HAS_NAME,
        HAS_TEXT,
        HAS_CONTROL_FLOW,
        HAS_PARAMETER,
        HAS_LINE,
        HAS_DATA_TYPE,
        HAS_TOTAL_VALUE_COUNT,
        HAS_MISSING_VALUE_COUNT,
        HAS_DISTINCT_VALUE_COUNT,
        HAS_MIN_VALUE,
        HAS_MAX_VALUE,
        HAS_MEAN_VALUE,
        HAS_STD_DEV,
        HAS_TRUE_RATIO,
        HAS_AVG_LENGTH,
        WITH_CERTAINTY,
        HAS_VOTES,
        HAS_SCORE,
        HAS_TITLE,
        HAS_AUTHOR,
        HAS_ROW_COUNT,
        HAS_SOURCE_PATH,
    ];
}

/// Percent-encode a path segment for use in a resource IRI.
pub fn encode_segment(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            'a'..='z' | 'A'..='Z' | '0'..='9' | '-' | '_' | '.' => out.push(c),
            other => {
                let mut buf = [0u8; 4];
                for b in other.encode_utf8(&mut buf).as_bytes() {
                    out.push_str(&format!("%{b:02X}"));
                }
            }
        }
    }
    out
}

/// Resource IRI builders for the LiDS graph.
pub mod res {
    use super::{encode_segment, RES};

    /// `res/<dataset>`
    pub fn dataset(dataset: &str) -> String {
        format!("{RES}{}", encode_segment(dataset))
    }

    /// `res/<dataset>/<table>`
    pub fn table(dataset: &str, table: &str) -> String {
        format!("{}/{}", self::dataset(dataset), encode_segment(table))
    }

    /// `res/<dataset>/<table>/<column>`
    pub fn column(dataset: &str, table: &str, column: &str) -> String {
        format!("{}/{}", self::table(dataset, table), encode_segment(column))
    }

    /// `res/library/<dotted path with / separators>`
    pub fn library(path: &str) -> String {
        let parts: Vec<String> = path.split('.').map(encode_segment).collect();
        format!("{RES}library/{}", parts.join("/"))
    }

    /// `res/<dataset>/pipelines/<id>` — also the pipeline's named graph IRI.
    pub fn pipeline(dataset: &str, id: &str) -> String {
        format!("{}/pipelines/{}", self::dataset(dataset), encode_segment(id))
    }

    /// `<pipeline>/s<index>`
    pub fn statement(pipeline_iri: &str, index: usize) -> String {
        format!("{pipeline_iri}/s{index}")
    }
}

/// `rdf:type` triple helper terms.
pub fn a(class_name: &str) -> (Term, Term) {
    (Term::iri(RDF_TYPE), Term::iri(class::iri(class_name)))
}

/// Pre-built ontology terms for batch quad emission.
///
/// The IRI builders in [`class`]/[`object_prop`]/[`data_prop`] `format!` a
/// fresh string per call, so emitters producing millions of quads pay an
/// allocation-plus-formatting round per predicate. A `Vocab` materializes
/// every ontology term once up front; emitters clone the finished term
/// (one memcpy-style allocation, no formatting), and the bulk loader's
/// phase-1 hash probe recognizes the repeats without re-interning.
#[derive(Debug)]
pub struct Vocab {
    /// `rdf:type`.
    pub rdf_type: Term,
    /// `rdfs:label`.
    pub rdfs_label: Term,
    classes: std::collections::HashMap<&'static str, Term>,
    object_props: std::collections::HashMap<&'static str, Term>,
    data_props: std::collections::HashMap<&'static str, Term>,
}

impl Vocab {
    pub fn new() -> Self {
        Vocab {
            rdf_type: Term::iri(RDF_TYPE),
            rdfs_label: Term::iri(RDFS_LABEL),
            classes: class::ALL.iter().map(|n| (*n, Term::iri(class::iri(n)))).collect(),
            object_props: object_prop::ALL
                .iter()
                .map(|n| (*n, Term::iri(object_prop::iri(n))))
                .collect(),
            data_props: data_prop::ALL
                .iter()
                .map(|n| (*n, Term::iri(data_prop::iri(n))))
                .collect(),
        }
    }

    /// Class term, e.g. `Vocab::new().class(class::COLUMN)`.
    pub fn class(&self, name: &str) -> Term {
        self.classes
            .get(name)
            .cloned()
            .unwrap_or_else(|| Term::iri(class::iri(name)))
    }

    /// Object property term.
    pub fn obj(&self, name: &str) -> Term {
        self.object_props
            .get(name)
            .cloned()
            .unwrap_or_else(|| Term::iri(object_prop::iri(name)))
    }

    /// Data property term.
    pub fn data(&self, name: &str) -> Term {
        self.data_props
            .get(name)
            .cloned()
            .unwrap_or_else(|| Term::iri(data_prop::iri(name)))
    }

    /// `rdf:type` pair from pre-built terms (the [`a`] helper, allocation-light).
    pub fn a(&self, class_name: &str) -> (Term, Term) {
        (self.rdf_type.clone(), self.class(class_name))
    }
}

impl Default for Vocab {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ontology_cardinalities_match_paper() {
        assert_eq!(class::ALL.len(), 13);
        assert_eq!(object_prop::ALL.len(), 19);
        assert_eq!(data_prop::ALL.len(), 22);
    }

    #[test]
    fn no_duplicate_names() {
        let mut all: Vec<&str> = Vec::new();
        all.extend(class::ALL);
        all.extend(object_prop::ALL);
        all.extend(data_prop::ALL);
        let unique: std::collections::HashSet<_> = all.iter().collect();
        assert_eq!(unique.len(), all.len());
    }

    #[test]
    fn iri_builders() {
        assert_eq!(
            res::column("titanic", "train", "Age"),
            "http://kglids.org/resource/titanic/train/Age"
        );
        assert_eq!(
            res::library("pandas.read_csv"),
            "http://kglids.org/resource/library/pandas/read_csv"
        );
        assert!(res::pipeline("titanic", "p1").ends_with("titanic/pipelines/p1"));
        assert!(res::statement("http://p", 3).ends_with("/s3"));
    }

    #[test]
    fn vocab_terms_match_iri_builders() {
        let v = Vocab::new();
        assert_eq!(v.rdf_type, Term::iri(RDF_TYPE));
        for name in class::ALL {
            assert_eq!(v.class(name), Term::iri(class::iri(name)));
        }
        for name in object_prop::ALL {
            assert_eq!(v.obj(name), Term::iri(object_prop::iri(name)));
        }
        for name in data_prop::ALL {
            assert_eq!(v.data(name), Term::iri(data_prop::iri(name)));
        }
        // unknown names fall back to formatting, staying total
        assert_eq!(v.class("NotAClass"), Term::iri(class::iri("NotAClass")));
    }

    #[test]
    fn segment_encoding() {
        assert_eq!(encode_segment("a b/c"), "a%20b%2Fc");
        assert_eq!(encode_segment("Age_1.csv"), "Age_1.csv");
    }
}
