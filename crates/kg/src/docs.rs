//! Library documentation analysis (Algorithm 1, lines 9–13).
//!
//! "For each class and method in the documentation, we build a JSON
//! document containing the names, values, and data types of input
//! parameters, including default parameters, as well as their return data
//! types." This module is that KB: a built-in registry for the
//! data-science libraries the Kaggle corpus uses, serialisable to/from
//! JSON. It powers accurate return-type detection (`pd.read_csv` →
//! `pandas.DataFrame`), implicit-parameter naming
//! (`RandomForestClassifier(50)` → `n_estimators=50`), and default
//! parameters — the information the paper credits for the improved
//! AutoML hyperparameter pruning (Section 4.4).

use std::collections::HashMap;

use serde::{Deserialize, Serialize};

/// Kind of documented element.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum DocKind {
    Package,
    Class,
    Function,
    Method,
}

/// A documented parameter: name plus optional default value (rendered).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ParamDoc {
    pub name: String,
    pub default: Option<String>,
}

impl ParamDoc {
    fn req(name: &str) -> Self {
        ParamDoc { name: name.into(), default: None }
    }

    fn opt(name: &str, default: &str) -> Self {
        ParamDoc { name: name.into(), default: Some(default.into()) }
    }
}

/// Documentation of one function/class/method.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct DocEntry {
    /// Dotted path, e.g. `sklearn.ensemble.RandomForestClassifier`.
    pub path: String,
    pub kind: DocKind,
    pub parameters: Vec<ParamDoc>,
    /// Dotted path of the return type (constructors return their class).
    pub return_type: Option<String>,
}

/// The documentation KB (`LD` in Algorithm 1).
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct LibraryDocs {
    entries: HashMap<String, DocEntry>,
}

impl LibraryDocs {
    /// Documentation for a dotted path.
    pub fn get(&self, path: &str) -> Option<&DocEntry> {
        self.entries.get(path)
    }

    /// All documented paths.
    pub fn paths(&self) -> impl Iterator<Item = &str> {
        self.entries.keys().map(|s| s.as_str())
    }

    /// Number of documented elements.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when the KB is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Insert an entry (builder-style).
    pub fn insert(&mut self, entry: DocEntry) {
        self.entries.insert(entry.path.clone(), entry);
    }

    /// Serialise the KB to JSON (the paper materialises it as JSON docs).
    pub fn to_json(&self) -> String {
        serde_json::to_string(&self).expect("docs serialise")
    }

    /// Load a KB from JSON.
    pub fn from_json(json: &str) -> Result<Self, serde_json::Error> {
        serde_json::from_str(json)
    }

    /// Resolve a call against the KB. Handles method calls on documented
    /// classes (`sklearn.impute.SimpleImputer.fit_transform` falls back to
    /// the class's method table, then to generic estimator methods).
    pub fn resolve(&self, path: &str) -> Option<&DocEntry> {
        if let Some(e) = self.entries.get(path) {
            return Some(e);
        }
        // method on a documented class?
        let (class_path, method) = path.rsplit_once('.')?;
        if self.entries.get(class_path).map(|e| e.kind) == Some(DocKind::Class) {
            return self.entries.get(&format!("__method__.{method}"));
        }
        None
    }

    /// Pair positional argument values with documented parameter names and
    /// append unspecified defaults — the enrichment of Algorithm 1 lines
    /// 11–13. Returns `(name, value, explicit)` tuples.
    pub fn enrich_parameters(
        &self,
        entry: &DocEntry,
        positional: &[String],
        keyword: &[(String, String)],
    ) -> Vec<(String, String, bool)> {
        let mut out: Vec<(String, String, bool)> = Vec::new();
        let mut used: Vec<&str> = Vec::new();
        for (i, value) in positional.iter().enumerate() {
            let name = entry
                .parameters
                .get(i)
                .map(|p| p.name.clone())
                .unwrap_or_else(|| format!("arg{i}"));
            used.push(entry.parameters.get(i).map(|p| p.name.as_str()).unwrap_or(""));
            out.push((name, value.clone(), true));
        }
        for (name, value) in keyword {
            used.push(name.as_str());
            out.push((name.clone(), value.clone(), true));
        }
        for p in &entry.parameters {
            if let Some(default) = &p.default {
                if !used.contains(&p.name.as_str()) {
                    out.push((p.name.clone(), default.clone(), false));
                }
            }
        }
        out
    }

    /// The built-in KB covering the libraries of the Kaggle-style corpus.
    pub fn builtin() -> Self {
        let mut docs = LibraryDocs::default();
        let mut add = |path: &str, kind: DocKind, params: Vec<ParamDoc>, ret: Option<&str>| {
            docs.insert(DocEntry {
                path: path.to_string(),
                kind,
                parameters: params,
                return_type: ret.map(|s| s.to_string()),
            });
        };

        // ---- packages (library hierarchy roots) ----
        for p in [
            "pandas",
            "numpy",
            "sklearn",
            "sklearn.ensemble",
            "sklearn.linear_model",
            "sklearn.tree",
            "sklearn.svm",
            "sklearn.neighbors",
            "sklearn.impute",
            "sklearn.preprocessing",
            "sklearn.model_selection",
            "sklearn.metrics",
            "xgboost",
            "lightgbm",
            "matplotlib",
            "matplotlib.pyplot",
            "seaborn",
            "scipy",
            "scipy.stats",
            "statsmodels",
            "keras",
            "torch",
        ] {
            add(p, DocKind::Package, vec![], None);
        }

        // ---- pandas ----
        add(
            "pandas.read_csv",
            DocKind::Function,
            vec![
                ParamDoc::req("filepath_or_buffer"),
                ParamDoc::opt("sep", "','"),
                ParamDoc::opt("header", "'infer'"),
                ParamDoc::opt("index_col", "None"),
            ],
            Some("pandas.DataFrame"),
        );
        add(
            "pandas.read_json",
            DocKind::Function,
            vec![ParamDoc::req("path_or_buf")],
            Some("pandas.DataFrame"),
        );
        add(
            "pandas.concat",
            DocKind::Function,
            vec![ParamDoc::req("objs"), ParamDoc::opt("axis", "0"), ParamDoc::opt("sort", "False")],
            Some("pandas.DataFrame"),
        );
        add(
            "pandas.merge",
            DocKind::Function,
            vec![
                ParamDoc::req("left"),
                ParamDoc::req("right"),
                ParamDoc::opt("how", "'inner'"),
                ParamDoc::opt("on", "None"),
            ],
            Some("pandas.DataFrame"),
        );
        add("pandas.DataFrame", DocKind::Class, vec![ParamDoc::opt("data", "None")], Some("pandas.DataFrame"));
        add("pandas.Series", DocKind::Class, vec![ParamDoc::opt("data", "None")], Some("pandas.Series"));
        for (m, params, ret) in [
            ("drop", vec![ParamDoc::req("labels"), ParamDoc::opt("axis", "0")], Some("pandas.DataFrame")),
            ("fillna", vec![ParamDoc::req("value"), ParamDoc::opt("method", "None")], Some("pandas.DataFrame")),
            ("interpolate", vec![ParamDoc::opt("method", "'linear'")], Some("pandas.DataFrame")),
            ("dropna", vec![ParamDoc::opt("axis", "0"), ParamDoc::opt("how", "'any'")], Some("pandas.DataFrame")),
            ("groupby", vec![ParamDoc::req("by")], Some("pandas.DataFrameGroupBy")),
            ("merge", vec![ParamDoc::req("right"), ParamDoc::opt("how", "'inner'")], Some("pandas.DataFrame")),
            ("pivot", vec![ParamDoc::opt("index", "None"), ParamDoc::opt("columns", "None")], Some("pandas.DataFrame")),
            ("apply", vec![ParamDoc::req("func"), ParamDoc::opt("axis", "0")], Some("pandas.DataFrame")),
            ("astype", vec![ParamDoc::req("dtype")], Some("pandas.DataFrame")),
            ("copy", vec![], Some("pandas.DataFrame")),
        ] {
            add(&format!("pandas.DataFrame.{m}"), DocKind::Method, params, ret);
        }

        // ---- numpy ----
        for (f, ret) in [
            ("array", "numpy.ndarray"),
            ("log", "numpy.ndarray"),
            ("log1p", "numpy.ndarray"),
            ("sqrt", "numpy.ndarray"),
            ("mean", "float"),
            ("std", "float"),
            ("zeros", "numpy.ndarray"),
            ("ones", "numpy.ndarray"),
        ] {
            add(&format!("numpy.{f}"), DocKind::Function, vec![ParamDoc::req("x")], Some(ret));
        }

        // ---- sklearn estimators (AutoML portfolio + hyperparameters) ----
        add(
            "sklearn.ensemble.RandomForestClassifier",
            DocKind::Class,
            vec![
                ParamDoc::opt("n_estimators", "100"),
                ParamDoc::opt("criterion", "'gini'"),
                ParamDoc::opt("max_depth", "None"),
                ParamDoc::opt("min_samples_split", "2"),
                ParamDoc::opt("min_samples_leaf", "1"),
                ParamDoc::opt("random_state", "None"),
            ],
            Some("sklearn.ensemble.RandomForestClassifier"),
        );
        add(
            "sklearn.ensemble.GradientBoostingClassifier",
            DocKind::Class,
            vec![
                ParamDoc::opt("n_estimators", "100"),
                ParamDoc::opt("learning_rate", "0.1"),
                ParamDoc::opt("max_depth", "3"),
            ],
            Some("sklearn.ensemble.GradientBoostingClassifier"),
        );
        add(
            "sklearn.ensemble.AdaBoostClassifier",
            DocKind::Class,
            vec![ParamDoc::opt("n_estimators", "50"), ParamDoc::opt("learning_rate", "1.0")],
            Some("sklearn.ensemble.AdaBoostClassifier"),
        );
        add(
            "sklearn.linear_model.LogisticRegression",
            DocKind::Class,
            vec![
                ParamDoc::opt("penalty", "'l2'"),
                ParamDoc::opt("C", "1.0"),
                ParamDoc::opt("max_iter", "100"),
                ParamDoc::opt("solver", "'lbfgs'"),
            ],
            Some("sklearn.linear_model.LogisticRegression"),
        );
        add(
            "sklearn.linear_model.LinearRegression",
            DocKind::Class,
            vec![ParamDoc::opt("fit_intercept", "True")],
            Some("sklearn.linear_model.LinearRegression"),
        );
        add(
            "sklearn.tree.DecisionTreeClassifier",
            DocKind::Class,
            vec![
                ParamDoc::opt("criterion", "'gini'"),
                ParamDoc::opt("max_depth", "None"),
                ParamDoc::opt("min_samples_split", "2"),
            ],
            Some("sklearn.tree.DecisionTreeClassifier"),
        );
        add(
            "sklearn.svm.SVC",
            DocKind::Class,
            vec![
                ParamDoc::opt("C", "1.0"),
                ParamDoc::opt("kernel", "'rbf'"),
                ParamDoc::opt("gamma", "'scale'"),
            ],
            Some("sklearn.svm.SVC"),
        );
        add(
            "sklearn.neighbors.KNeighborsClassifier",
            DocKind::Class,
            vec![ParamDoc::opt("n_neighbors", "5"), ParamDoc::opt("weights", "'uniform'")],
            Some("sklearn.neighbors.KNeighborsClassifier"),
        );
        add(
            "xgboost.XGBClassifier",
            DocKind::Class,
            vec![
                ParamDoc::opt("n_estimators", "100"),
                ParamDoc::opt("max_depth", "6"),
                ParamDoc::opt("learning_rate", "0.3"),
                ParamDoc::opt("subsample", "1.0"),
            ],
            Some("xgboost.XGBClassifier"),
        );
        add(
            "lightgbm.LGBMClassifier",
            DocKind::Class,
            vec![
                ParamDoc::opt("n_estimators", "100"),
                ParamDoc::opt("num_leaves", "31"),
                ParamDoc::opt("learning_rate", "0.1"),
            ],
            Some("lightgbm.LGBMClassifier"),
        );

        // ---- sklearn preprocessing / imputation (the automation targets) ----
        add(
            "sklearn.impute.SimpleImputer",
            DocKind::Class,
            vec![
                ParamDoc::opt("missing_values", "nan"),
                ParamDoc::opt("strategy", "'mean'"),
            ],
            Some("sklearn.impute.SimpleImputer"),
        );
        add(
            "sklearn.impute.KNNImputer",
            DocKind::Class,
            vec![ParamDoc::opt("n_neighbors", "5")],
            Some("sklearn.impute.KNNImputer"),
        );
        add(
            "sklearn.impute.IterativeImputer",
            DocKind::Class,
            vec![ParamDoc::opt("max_iter", "10")],
            Some("sklearn.impute.IterativeImputer"),
        );
        for (c, params) in [
            ("StandardScaler", vec![ParamDoc::opt("with_mean", "True"), ParamDoc::opt("with_std", "True")]),
            ("MinMaxScaler", vec![ParamDoc::opt("feature_range", "(0, 1)")]),
            ("RobustScaler", vec![ParamDoc::opt("quantile_range", "(25.0, 75.0)")]),
            ("LabelEncoder", vec![]),
            ("OneHotEncoder", vec![ParamDoc::opt("handle_unknown", "'error'")]),
        ] {
            let path = format!("sklearn.preprocessing.{c}");
            add(&path, DocKind::Class, params, Some(&path));
        }

        // ---- sklearn model selection & metrics ----
        add(
            "sklearn.model_selection.train_test_split",
            DocKind::Function,
            vec![
                ParamDoc::req("X"),
                ParamDoc::req("y"),
                ParamDoc::opt("test_size", "0.25"),
                ParamDoc::opt("random_state", "None"),
            ],
            Some("tuple"),
        );
        add(
            "sklearn.model_selection.cross_val_score",
            DocKind::Function,
            vec![ParamDoc::req("estimator"), ParamDoc::req("X"), ParamDoc::req("y"), ParamDoc::opt("cv", "5")],
            Some("numpy.ndarray"),
        );
        add(
            "sklearn.model_selection.GridSearchCV",
            DocKind::Class,
            vec![ParamDoc::req("estimator"), ParamDoc::req("param_grid"), ParamDoc::opt("cv", "5")],
            Some("sklearn.model_selection.GridSearchCV"),
        );
        for m in ["accuracy_score", "f1_score", "roc_auc_score", "precision_score", "recall_score"] {
            add(
                &format!("sklearn.metrics.{m}"),
                DocKind::Function,
                vec![ParamDoc::req("y_true"), ParamDoc::req("y_pred")],
                Some("float"),
            );
        }

        // ---- plotting ----
        for f in ["plot", "scatter", "hist", "bar", "show", "figure", "xlabel", "ylabel", "title"] {
            add(
                &format!("matplotlib.pyplot.{f}"),
                DocKind::Function,
                vec![ParamDoc::opt("args", "None")],
                None,
            );
        }
        for f in ["heatmap", "pairplot", "countplot", "boxplot", "distplot"] {
            add(
                &format!("seaborn.{f}"),
                DocKind::Function,
                vec![ParamDoc::req("data")],
                None,
            );
        }

        // ---- generic estimator/transformer methods (shared) ----
        add(
            "__method__.fit",
            DocKind::Method,
            vec![ParamDoc::req("X"), ParamDoc::opt("y", "None")],
            Some("self"),
        );
        add(
            "__method__.predict",
            DocKind::Method,
            vec![ParamDoc::req("X")],
            Some("numpy.ndarray"),
        );
        add(
            "__method__.transform",
            DocKind::Method,
            vec![ParamDoc::req("X")],
            Some("numpy.ndarray"),
        );
        add(
            "__method__.fit_transform",
            DocKind::Method,
            vec![ParamDoc::req("X"), ParamDoc::opt("y", "None")],
            Some("numpy.ndarray"),
        );
        add(
            "__method__.fit_predict",
            DocKind::Method,
            vec![ParamDoc::req("X")],
            Some("numpy.ndarray"),
        );
        add(
            "__method__.score",
            DocKind::Method,
            vec![ParamDoc::req("X"), ParamDoc::req("y")],
            Some("float"),
        );

        docs
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builtin_has_core_entries() {
        let docs = LibraryDocs::builtin();
        assert!(docs.len() > 60);
        let rc = docs.get("pandas.read_csv").unwrap();
        assert_eq!(rc.return_type.as_deref(), Some("pandas.DataFrame"));
        assert_eq!(rc.parameters[0].name, "filepath_or_buffer");
    }

    #[test]
    fn implicit_parameter_naming_figure3() {
        // RandomForestClassifier(50, max_depth=10): the paper's example —
        // "the inference of names of implicit call parameters, such as
        // n_estimators, the first parameter in line 12".
        let docs = LibraryDocs::builtin();
        let entry = docs.get("sklearn.ensemble.RandomForestClassifier").unwrap();
        let params = docs.enrich_parameters(
            entry,
            &["50".to_string()],
            &[("max_depth".to_string(), "10".to_string())],
        );
        assert!(params.contains(&("n_estimators".into(), "50".into(), true)));
        assert!(params.contains(&("max_depth".into(), "10".into(), true)));
        // defaults appended for unspecified parameters
        assert!(params.contains(&("criterion".into(), "'gini'".into(), false)));
        // no duplicate for the explicitly-set ones
        assert_eq!(params.iter().filter(|(n, _, _)| n == "n_estimators").count(), 1);
        assert_eq!(params.iter().filter(|(n, _, _)| n == "max_depth").count(), 1);
    }

    #[test]
    fn method_resolution_via_class() {
        let docs = LibraryDocs::builtin();
        let e = docs.resolve("sklearn.impute.SimpleImputer.fit_transform").unwrap();
        assert_eq!(e.kind, DocKind::Method);
        assert!(docs.resolve("sklearn.impute.SimpleImputer.unknown_method").is_none());
        assert!(docs.resolve("nonexistent.path").is_none());
    }

    #[test]
    fn json_roundtrip() {
        let docs = LibraryDocs::builtin();
        let back = LibraryDocs::from_json(&docs.to_json()).unwrap();
        assert_eq!(back.len(), docs.len());
        assert_eq!(
            back.get("xgboost.XGBClassifier"),
            docs.get("xgboost.XGBClassifier")
        );
    }
}
