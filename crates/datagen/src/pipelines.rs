//! Kaggle-style pipeline corpus generator.
//!
//! The paper abstracts "13,800 data science pipeline scripts used in the
//! top 1000 datasets from Kaggle … selected based on the number of user
//! votes". This generator produces Python scripts with the same structural
//! ingredients — imports with a realistic library mix (the Figure 4
//! shape), a dataset read, column accesses, cleaning/transformation calls,
//! an estimator with hyperparameters, and an evaluation — plus the votes/
//! author/task metadata Algorithm 1 consumes. Each script records which
//! operations were *planted*, giving the KG-harvesting and GNN-training
//! experiments their ground truth.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use lids_kg::abstraction::PipelineMetadata;

/// What a dataset looks like to the corpus generator.
#[derive(Debug, Clone)]
pub struct DatasetSketch {
    pub name: String,
    /// `(table name, column names)` — the first column is the target by
    /// convention.
    pub tables: Vec<(String, Vec<String>)>,
    /// Data character (0–4): what kind of data the dataset holds. Kaggle
    /// authors choose preprocessing suited to their data, so the planted
    /// cleaning operation correlates with this — the signal the cleaning
    /// GNN learns (§4.2).
    pub character: usize,
}

impl DatasetSketch {
    /// A small synthetic dataset sketch.
    pub fn synthetic(name: &str, rng: &mut SmallRng) -> Self {
        let n_cols = rng.gen_range(4..9);
        let columns: Vec<String> = std::iter::once("target".to_string())
            .chain((1..n_cols).map(|i| format!("feature_{i}")))
            .collect();
        DatasetSketch {
            name: name.to_string(),
            tables: vec![("train".to_string(), columns)],
            character: rng.gen_range(0..5),
        }
    }
}

/// The libraries of the Figure 4 bar chart with their usage probabilities
/// (pandas-dominant mix, as in the paper's 13k-pipeline corpus).
pub const LIBRARY_MIX: &[(&str, f64)] = &[
    ("pandas", 1.00),
    ("numpy", 0.90),
    ("sklearn", 0.62),
    ("matplotlib", 0.58),
    ("seaborn", 0.45),
    ("xgboost", 0.22),
    ("scipy", 0.15),
    ("lightgbm", 0.11),
    ("keras", 0.07),
    ("statsmodels", 0.05),
];

/// Operations planted into a generated pipeline (ground truth for the
/// harvesting and GNN-training experiments).
#[derive(Debug, Clone, Default)]
pub struct PlantedOps {
    /// Cleaning op label (`Fillna` / `SimpleImputer` / …), if any.
    pub cleaning: Option<String>,
    /// Scaling op (`StandardScaler` / …), if any.
    pub scaling: Option<String>,
    /// Column transform (`log` / `sqrt`), if any.
    pub column_transform: Option<String>,
    /// Estimator class name.
    pub model: String,
    /// Estimator hyperparameters as written.
    pub hyperparams: Vec<(String, String)>,
}

/// One generated pipeline.
#[derive(Debug, Clone)]
pub struct GeneratedPipeline {
    pub metadata: PipelineMetadata,
    pub source: String,
    pub planted: PlantedOps,
}

/// Corpus parameters.
#[derive(Debug, Clone)]
pub struct CorpusSpec {
    pub datasets: Vec<DatasetSketch>,
    pub pipelines_per_dataset: usize,
    pub seed: u64,
}

impl CorpusSpec {
    /// A fully synthetic corpus of `n_datasets × pipelines_per_dataset`.
    pub fn synthetic(n_datasets: usize, pipelines_per_dataset: usize, seed: u64) -> Self {
        let mut rng = SmallRng::seed_from_u64(seed);
        let datasets = (0..n_datasets)
            .map(|i| DatasetSketch::synthetic(&format!("dataset_{i}"), &mut rng))
            .collect();
        CorpusSpec { datasets, pipelines_per_dataset, seed }
    }
}

const AUTHORS: &[&str] = &[
    "alice", "bob", "carol", "dmitri", "elena", "farid", "grace", "hiro", "ines", "jamal",
];
const MODELS: &[(&str, &str)] = &[
    ("RandomForestClassifier", "sklearn.ensemble"),
    ("DecisionTreeClassifier", "sklearn.tree"),
    ("LogisticRegression", "sklearn.linear_model"),
    ("KNeighborsClassifier", "sklearn.neighbors"),
    ("XGBClassifier", "xgboost"),
    ("LGBMClassifier", "lightgbm"),
];

/// Generate the corpus.
pub fn generate_corpus(spec: &CorpusSpec) -> Vec<GeneratedPipeline> {
    let mut rng = SmallRng::seed_from_u64(spec.seed);
    let mut out = Vec::new();
    for dataset in &spec.datasets {
        for p in 0..spec.pipelines_per_dataset {
            out.push(generate_pipeline(dataset, p, &mut rng));
        }
    }
    out
}

fn generate_pipeline(
    dataset: &DatasetSketch,
    index: usize,
    rng: &mut SmallRng,
) -> GeneratedPipeline {
    let (table, columns) = &dataset.tables[rng.gen_range(0..dataset.tables.len())];
    let target = &columns[0];
    let mut planted = PlantedOps::default();
    let mut src = String::new();

    // ---- imports ----
    let use_lib: Vec<bool> = LIBRARY_MIX.iter().map(|(_, p)| rng.gen_bool(*p)).collect();
    src.push_str("import pandas as pd\n");
    if use_lib[1] {
        src.push_str("import numpy as np\n");
    }
    if use_lib[3] {
        src.push_str("import matplotlib.pyplot as plt\n");
    }
    if use_lib[4] {
        src.push_str("import seaborn as sns\n");
    }
    if use_lib[6] {
        src.push_str("from scipy import stats\n");
    }
    if use_lib[8] {
        src.push_str("import keras\n");
    }
    if use_lib[9] {
        src.push_str("import statsmodels.api as sm\n");
    }

    // estimator selection (XGB/LGBM only when their library is in the mix)
    let candidates: Vec<&(&str, &str)> = MODELS
        .iter()
        .filter(|(_name, module)| {
            if module.starts_with("sklearn") {
                use_lib[2]
            } else if *module == "xgboost" {
                use_lib[5]
            } else {
                use_lib[7]
            }
        })
        .collect();
    // EDA-only pipelines (no estimator) when no ML library is in the mix —
    // a realistic share of Kaggle notebooks never train a model
    let estimator = if candidates.is_empty() {
        None
    } else {
        Some(**candidates.get(rng.gen_range(0..candidates.len())).unwrap())
    };
    let sklearn_utils = use_lib[2];
    if let Some((model_name, model_module)) = estimator {
        src.push_str(&format!("from {model_module} import {model_name}\n"));
    }
    if sklearn_utils {
        src.push_str("from sklearn.model_selection import train_test_split\n");
        src.push_str("from sklearn.metrics import f1_score\n");
    }

    // ---- read + feature selection ----
    src.push_str(&format!("df = pd.read_csv('{}/{}.csv')\n", dataset.name, table));
    let feature = &columns[rng.gen_range(1..columns.len().max(2)).min(columns.len() - 1)];
    src.push_str(&format!(
        "X, y = df.drop('{target}', axis=1), df['{target}']\n"
    ));
    // every imported library gets at least one call, so the Figure 4
    // "unique pipelines calling the library" counts reflect the mix
    if use_lib[1] {
        src.push_str("X = np.array(X)\n");
    }
    if use_lib[6] {
        src.push_str("z = stats.zscore(X)\n");
    }
    if use_lib[8] {
        src.push_str("backbone = keras.Sequential()\n");
    }
    if use_lib[9] {
        src.push_str("ols = sm.OLS(y, X)\n");
    }

    // ---- cleaning (60%) ----
    if rng.gen_bool(0.6) {
        // authors pick the imputer that suits the dataset's character most
        // of the time; sometimes they just fillna. Without sklearn in the
        // mix, only the pandas operations are available.
        let mut op = if rng.gen_bool(0.75) {
            dataset.character
        } else {
            rng.gen_range(0..5)
        };
        if !use_lib[2] && op >= 2 {
            op = usize::from(dataset.character == 1);
        }
        match op {
            0 => {
                src.push_str("X = X.fillna(0)\n");
                planted.cleaning = Some("Fillna".into());
            }
            1 => {
                src.push_str("X = X.interpolate()\n");
                planted.cleaning = Some("Interpolate".into());
            }
            2 => {
                src.push_str("from sklearn.impute import SimpleImputer\n");
                src.push_str("imputer = SimpleImputer(strategy='mean')\nX = imputer.fit_transform(X)\n");
                planted.cleaning = Some("SimpleImputer".into());
            }
            3 => {
                src.push_str("from sklearn.impute import KNNImputer\n");
                src.push_str("imputer = KNNImputer(n_neighbors=5)\nX = imputer.fit_transform(X)\n");
                planted.cleaning = Some("KNNImputer".into());
            }
            _ => {
                src.push_str("from sklearn.impute import IterativeImputer\n");
                src.push_str("imputer = IterativeImputer()\nX = imputer.fit_transform(X)\n");
                planted.cleaning = Some("IterativeImputer".into());
            }
        }
    }

    // ---- scaling (50%) ----
    if use_lib[2] && rng.gen_bool(0.5) {
        let scaler = ["StandardScaler", "MinMaxScaler", "RobustScaler"][rng.gen_range(0..3)];
        src.push_str(&format!("from sklearn.preprocessing import {scaler}\n"));
        src.push_str(&format!("scaler = {scaler}()\nX = scaler.fit_transform(X)\n"));
        planted.scaling = Some(scaler.to_string());
    }

    // ---- column transform (25%) ----
    if use_lib[1] && rng.gen_bool(0.25) {
        let t = if rng.gen_bool(0.5) { "log1p" } else { "sqrt" };
        src.push_str(&format!("X['{feature}'] = np.{t}(X['{feature}'])\n"));
        planted.column_transform = Some(
            if t == "log1p" { "log" } else { "sqrt" }.to_string(),
        );
    }

    // ---- EDA (plots) ----
    if use_lib[4] {
        src.push_str("sns.heatmap(df)\n");
    }
    if use_lib[3] {
        src.push_str("plt.hist(y)\nplt.show()\n");
    }
    if rng.gen_bool(0.4) {
        src.push_str("df.head()\n");
    }

    // ---- estimator with hyperparameters ----
    let hyperparams: Vec<(String, String)> = match estimator.map(|(n, _)| n).unwrap_or("") {
        "RandomForestClassifier" => vec![
            ("n_estimators".into(), [10, 20, 40, 80][rng.gen_range(0..4)].to_string()),
            ("max_depth".into(), [5, 8, 12, 16][rng.gen_range(0..4)].to_string()),
        ],
        "DecisionTreeClassifier" => vec![(
            "max_depth".into(),
            [4, 6, 10, 14][rng.gen_range(0..4)].to_string(),
        )],
        "LogisticRegression" => vec![(
            "C".into(),
            ["0.1", "1.0", "10.0"][rng.gen_range(0..3)].to_string(),
        )],
        "KNeighborsClassifier" => vec![(
            "n_neighbors".into(),
            [3, 5, 9][rng.gen_range(0..3)].to_string(),
        )],
        "XGBClassifier" | "LGBMClassifier" => vec![
            ("n_estimators".into(), [50, 100][rng.gen_range(0..2)].to_string()),
            ("learning_rate".into(), ["0.1", "0.3"][rng.gen_range(0..2)].to_string()),
        ],
        _ => Vec::new(),
    };
    let args = hyperparams
        .iter()
        .map(|(k, v)| format!("{k}={v}"))
        .collect::<Vec<_>>()
        .join(", ");
    if let Some((model_name, _)) = estimator {
        src.push_str(&format!("clf = {model_name}({args})\n"));
        if sklearn_utils {
            src.push_str("X_train, X_test, y_train, y_test = train_test_split(X, y, test_size=0.2)\n");
            src.push_str("clf.fit(X_train, y_train)\n");
            src.push_str("print(f1_score(y_test, clf.predict(X_test)))\n");
        } else {
            src.push_str("clf.fit(X, y)\n");
            src.push_str("preds = clf.predict(X)\n");
        }
    }

    planted.model = estimator.map(|(n, _)| n).unwrap_or("").to_string();
    planted.hyperparams = hyperparams;

    // floor: real notebooks always have some inspection; this also keeps
    // scripts at the minimum *significant* statement count downstream
    // analyzers expect (head/describe/info/show are discarded per §4.1)
    let eda_pad = ["corr = df.corr()\n", "counts = y.value_counts()\n", "X = X.copy()\n"];
    let insignificant =
        |l: &&str| l.ends_with(".head()") || l.ends_with(".show()") || l.ends_with(".info()");
    let mut pad = 0;
    while src.lines().filter(|l| !insignificant(l)).count() < 5 {
        src.push_str(eda_pad[pad % eda_pad.len()]);
        pad += 1;
    }

    let votes = (rng.gen_range(0.0f64..1.0).powi(3) * 500.0) as u32;
    let metadata = PipelineMetadata {
        id: format!("pipeline_{index}"),
        dataset: dataset.name.clone(),
        title: format!("{} analysis #{index}", dataset.name),
        author: AUTHORS[rng.gen_range(0..AUTHORS.len())].to_string(),
        votes,
        score: rng.gen_range(0.5..1.0),
        task: if rng.gen_bool(0.8) { "classification" } else { "eda" }.to_string(),
    };
    GeneratedPipeline { metadata, source: src, planted }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lids_py::analyze;

    #[test]
    fn corpus_counts() {
        let spec = CorpusSpec::synthetic(5, 4, 1);
        let corpus = generate_corpus(&spec);
        assert_eq!(corpus.len(), 20);
        let datasets: std::collections::HashSet<&str> = corpus
            .iter()
            .map(|p| p.metadata.dataset.as_str())
            .collect();
        assert_eq!(datasets.len(), 5);
    }

    #[test]
    fn every_script_parses_and_analyzes() {
        let spec = CorpusSpec::synthetic(8, 5, 2);
        for p in generate_corpus(&spec) {
            let analyzed = analyze(&p.source).unwrap_or_else(|e| {
                panic!("script failed to parse: {e}\n{}", p.source)
            });
            assert!(analyzed.statements.len() >= 5, "{}", p.source);
            // dataset read detected in every pipeline
            assert!(analyzed
                .statements
                .iter()
                .any(|s| !s.dataset_reads.is_empty()));
        }
    }

    #[test]
    fn planted_ops_appear_in_source() {
        let spec = CorpusSpec::synthetic(10, 6, 3);
        for p in generate_corpus(&spec) {
            assert!(p.source.contains(&p.planted.model));
            if let Some(c) = &p.planted.cleaning {
                let marker = match c.as_str() {
                    "Fillna" => "fillna",
                    "Interpolate" => "interpolate",
                    other => other,
                };
                assert!(p.source.contains(marker), "{c} not in\n{}", p.source);
            }
            for (k, v) in &p.planted.hyperparams {
                assert!(p.source.contains(&format!("{k}={v}")));
            }
        }
    }

    #[test]
    fn pandas_always_used_and_mix_is_graded() {
        let spec = CorpusSpec::synthetic(20, 10, 4);
        let corpus = generate_corpus(&spec);
        let count = |needle: &str| corpus.iter().filter(|p| p.source.contains(needle)).count();
        let pandas = count("import pandas");
        let numpy = count("import numpy");
        let seaborn = count("import seaborn");
        let statsmodels = count("import statsmodels");
        assert_eq!(pandas, corpus.len());
        assert!(numpy > seaborn);
        assert!(seaborn > statsmodels);
    }

    #[test]
    fn deterministic() {
        let a = generate_corpus(&CorpusSpec::synthetic(3, 3, 9));
        let b = generate_corpus(&CorpusSpec::synthetic(3, 3, 9));
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.source, y.source);
            assert_eq!(x.metadata, y.metadata);
        }
    }
}
