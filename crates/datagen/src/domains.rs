//! Typed column domains: value generators with name synonyms and scaling
//! variants, covering all seven fine-grained types.

use rand::rngs::SmallRng;
use rand::Rng;

/// Which fine-grained type a domain produces (mirrors
/// `lids_embed::FineGrainedType` labels; kept as a string to avoid a
/// dependency cycle).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DomainType {
    Int,
    Float,
    Boolean,
    Date,
    NamedEntity,
    NaturalLanguage,
    String,
}

/// A column domain: generates values for one semantic variable.
#[derive(Debug, Clone, Copy)]
pub struct Domain {
    /// Stable id.
    pub id: usize,
    /// Name variants (synonyms) — unionable columns pick different ones.
    pub names: &'static [&'static str],
    pub dtype: DomainType,
    /// Unit-scaling factors for numeric domains (`1.0` plus conversions).
    pub scales: &'static [f64],
}

const CITY_POOL: &[&str] = &[
    "London", "Paris", "Tokyo", "Cairo", "Lagos", "Lima", "Oslo", "Rome", "Berlin", "Madrid",
    "Toronto", "Chicago", "Boston", "Seattle", "Austin", "Denver", "Houston", "Miami",
];
const COUNTRY_POOL: &[&str] = &[
    "Canada", "Brazil", "Egypt", "Japan", "Kenya", "Norway", "Peru", "France", "Germany",
    "Spain", "Italy", "China", "India", "Mexico", "Russia", "Nigeria", "Australia",
];
const FIRST_NAMES: &[&str] = &[
    "James", "Mary", "John", "Linda", "Robert", "Susan", "Michael", "Karen", "David", "Nancy",
    "Alice", "Carlos", "Maria", "Ahmed", "Fatima", "Olga", "Pierre", "Hans", "Ingrid",
];
const LAST_NAMES: &[&str] = &[
    "Smith", "Johnson", "Brown", "Garcia", "Miller", "Davis", "Wilson", "Anderson", "Taylor",
    "Moore", "Lee", "White", "Harris", "Clark", "Walker", "Young", "Chen", "Kim", "Singh",
];
const ORG_POOL: &[&str] = &[
    "Google", "Microsoft", "Apple", "Amazon", "Netflix", "Tesla", "IBM", "Intel", "Oracle",
    "Samsung", "Sony", "Toyota", "Boeing", "Walmart", "Target", "Starbucks", "Nike", "Visa",
];
const REVIEW_WORDS: &[&str] = &[
    "great", "product", "loved", "it", "works", "well", "would", "recommend", "quality",
    "poor", "broke", "after", "weeks", "amazing", "value", "shipping", "was", "fast",
    "terrible", "service", "happy", "with", "purchase", "excellent", "condition",
];
const DESCRIPTION_WORDS: &[&str] = &[
    "patient", "presents", "with", "chronic", "acute", "symptoms", "history", "of",
    "treatment", "plan", "follow", "up", "required", "stable", "condition", "noted",
    "lab", "results", "pending", "referred", "specialist", "dosage", "adjusted",
];

/// The catalogue of domains. Indices are stable across runs.
pub const DOMAINS: &[Domain] = &[
    Domain { id: 0, names: &["age", "years", "patient_age"], dtype: DomainType::Int, scales: &[1.0] },
    Domain { id: 1, names: &["price", "cost", "amount"], dtype: DomainType::Float, scales: &[1.0, 1.35, 0.74] },
    Domain { id: 2, names: &["area_sq_ft", "area_sq_m", "size_sqft"], dtype: DomainType::Float, scales: &[1.0, 0.0929, 10.764] },
    Domain { id: 3, names: &["weight_kg", "weight_lb", "mass"], dtype: DomainType::Float, scales: &[1.0, 2.2046] },
    Domain { id: 4, names: &["salary", "income", "wage"], dtype: DomainType::Int, scales: &[1.0, 0.001] },
    Domain { id: 5, names: &["rating", "score", "stars"], dtype: DomainType::Float, scales: &[1.0, 20.0] },
    Domain { id: 6, names: &["count", "quantity", "qty"], dtype: DomainType::Int, scales: &[1.0] },
    Domain { id: 7, names: &["latitude", "lat"], dtype: DomainType::Float, scales: &[1.0] },
    Domain { id: 8, names: &["year", "yr"], dtype: DomainType::Int, scales: &[1.0] },
    Domain { id: 9, names: &["is_active", "active", "enabled"], dtype: DomainType::Boolean, scales: &[1.0] },
    Domain { id: 10, names: &["survived", "alive", "outcome_flag"], dtype: DomainType::Boolean, scales: &[1.0] },
    Domain { id: 11, names: &["date", "record_date", "created_at"], dtype: DomainType::Date, scales: &[1.0] },
    Domain { id: 12, names: &["dob", "birth_date", "birthdate"], dtype: DomainType::Date, scales: &[1.0] },
    Domain { id: 13, names: &["city", "town", "municipality"], dtype: DomainType::NamedEntity, scales: &[1.0] },
    Domain { id: 14, names: &["country", "nation"], dtype: DomainType::NamedEntity, scales: &[1.0] },
    Domain { id: 15, names: &["name", "full_name", "customer_name"], dtype: DomainType::NamedEntity, scales: &[1.0] },
    Domain { id: 16, names: &["company", "employer", "organization"], dtype: DomainType::NamedEntity, scales: &[1.0] },
    Domain { id: 17, names: &["review", "comment", "feedback"], dtype: DomainType::NaturalLanguage, scales: &[1.0] },
    Domain { id: 18, names: &["description", "desc", "notes"], dtype: DomainType::NaturalLanguage, scales: &[1.0] },
    Domain { id: 19, names: &["id", "record_id", "uid"], dtype: DomainType::String, scales: &[1.0] },
    Domain { id: 20, names: &["postal_code", "zip", "zipcode"], dtype: DomainType::String, scales: &[1.0] },
    Domain { id: 21, names: &["sku", "product_code", "item_code"], dtype: DomainType::String, scales: &[1.0] },
];

impl Domain {
    /// Generate one value with the given unit scale.
    pub fn value(&self, scale: f64, rng: &mut SmallRng) -> String {
        match self.id {
            0 => format!("{}", (rng.gen_range(1..95) as f64 * scale).round() as i64),
            1 => format!("{:.2}", rng.gen_range(5.0..500.0) * scale),
            2 => format!("{:.1}", rng.gen_range(300.0..4000.0) * scale),
            3 => format!("{:.1}", rng.gen_range(40.0..120.0) * scale),
            4 => format!("{}", (rng.gen_range(20_000..150_000) as f64 * scale).round() as i64),
            5 => format!("{:.1}", rng.gen_range(1.0..5.0) * scale),
            6 => format!("{}", rng.gen_range(0..1000)),
            7 => format!("{:.4}", rng.gen_range(-85.0..85.0)),
            8 => format!("{}", rng.gen_range(1950..2026)),
            9 | 10 => if rng.gen_bool(if self.id == 9 { 0.7 } else { 0.4 }) {
                "true".to_string()
            } else {
                "false".to_string()
            },
            11 => format!(
                "{}-{:02}-{:02}",
                rng.gen_range(2005..2026),
                rng.gen_range(1..13),
                rng.gen_range(1..29)
            ),
            12 => format!(
                "{}-{:02}-{:02}",
                rng.gen_range(1940..2005),
                rng.gen_range(1..13),
                rng.gen_range(1..29)
            ),
            13 => CITY_POOL[rng.gen_range(0..CITY_POOL.len())].to_string(),
            14 => COUNTRY_POOL[rng.gen_range(0..COUNTRY_POOL.len())].to_string(),
            15 => format!(
                "{} {}",
                FIRST_NAMES[rng.gen_range(0..FIRST_NAMES.len())],
                LAST_NAMES[rng.gen_range(0..LAST_NAMES.len())]
            ),
            16 => ORG_POOL[rng.gen_range(0..ORG_POOL.len())].to_string(),
            17 => (0..rng.gen_range(4..10))
                .map(|_| REVIEW_WORDS[rng.gen_range(0..REVIEW_WORDS.len())])
                .collect::<Vec<_>>()
                .join(" "),
            18 => (0..rng.gen_range(4..10))
                .map(|_| DESCRIPTION_WORDS[rng.gen_range(0..DESCRIPTION_WORDS.len())])
                .collect::<Vec<_>>()
                .join(" "),
            19 => format!("{:06}", rng.gen_range(0..1_000_000)),
            20 => format!(
                "{}{}{}{}{}{}",
                (b'A' + rng.gen_range(0..26)) as char,
                rng.gen_range(0..10),
                (b'A' + rng.gen_range(0..26)) as char,
                rng.gen_range(0..10),
                (b'A' + rng.gen_range(0..26)) as char,
                rng.gen_range(0..10),
            ),
            _ => format!(
                "{}{}-{:04}",
                (b'A' + rng.gen_range(0..26)) as char,
                (b'A' + rng.gen_range(0..26)) as char,
                rng.gen_range(0..10_000)
            ),
        }
    }

    /// Pick a name variant.
    pub fn name(&self, variant: usize) -> &'static str {
        self.names[variant % self.names.len()]
    }

    /// Pick a unit scale.
    pub fn scale(&self, variant: usize) -> f64 {
        self.scales[variant % self.scales.len()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn ids_match_positions() {
        for (i, d) in DOMAINS.iter().enumerate() {
            assert_eq!(d.id, i);
        }
    }

    #[test]
    fn all_seven_types_covered() {
        for t in [
            DomainType::Int,
            DomainType::Float,
            DomainType::Boolean,
            DomainType::Date,
            DomainType::NamedEntity,
            DomainType::NaturalLanguage,
            DomainType::String,
        ] {
            assert!(DOMAINS.iter().any(|d| d.dtype == t), "{t:?} missing");
        }
    }

    #[test]
    fn values_match_types() {
        let mut rng = SmallRng::seed_from_u64(1);
        for d in DOMAINS {
            for _ in 0..5 {
                let v = d.value(1.0, &mut rng);
                match d.dtype {
                    DomainType::Int => assert!(v.parse::<i64>().is_ok(), "{} {v}", d.id),
                    DomainType::Float => assert!(v.parse::<f64>().is_ok(), "{} {v}", d.id),
                    DomainType::Boolean => assert!(v == "true" || v == "false"),
                    DomainType::Date => {
                        assert!(v.len() == 10 && v.chars().filter(|c| *c == '-').count() == 2)
                    }
                    _ => assert!(!v.is_empty()),
                }
            }
        }
    }

    #[test]
    fn name_and_scale_variants_cycle() {
        let d = &DOMAINS[2];
        assert_eq!(d.name(0), "area_sq_ft");
        assert_eq!(d.name(1), "area_sq_m");
        assert_eq!(d.name(3), "area_sq_ft");
        assert_eq!(d.scale(0), 1.0);
        assert!(d.scale(1) < 1.0);
    }
}
