//! Data-lake generators with union-search ground truth.
//!
//! TUS Small and SANTOS Small were "generated using random horizontal and
//! vertical partitioning from real-world tables" — exactly the
//! construction used here: a set of *seed tables* (each a bundle of typed
//! column domains) is partitioned into families of benchmark tables, and
//! tables from the same family are mutually unionable (the ground truth).
//! The D3L-style preset additionally renames columns to synonyms and
//! rescales numeric units across partitions, reproducing the
//! "manually annotated, distribution-shifted" regime where the paper's
//! CoLR models outperform value-overlap methods.

use std::collections::HashMap;

use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

use lids_profiler::table::{Column, Table};

use crate::domains::{DomainType, DOMAINS};

/// A generated data lake with ground truth.
#[derive(Debug, Clone)]
pub struct Lake {
    pub name: String,
    pub tables: Vec<Table>,
    /// Ground truth: table name → unionable table names (same family,
    /// excluding the table itself).
    pub unionable: HashMap<String, Vec<String>>,
    /// Names of the designated query tables.
    pub query_tables: Vec<String>,
}

impl Lake {
    /// Total number of columns across tables.
    pub fn column_count(&self) -> usize {
        self.tables.iter().map(|t| t.columns.len()).sum()
    }

    /// Total size in (approximate) bytes.
    pub fn approx_bytes(&self) -> u64 {
        self.tables.iter().map(|t| t.approx_bytes()).sum()
    }

    /// Average number of unionable tables per query table.
    pub fn avg_unionable(&self) -> f64 {
        if self.query_tables.is_empty() {
            return 0.0;
        }
        let total: usize = self
            .query_tables
            .iter()
            .map(|q| self.unionable.get(q).map_or(0, |v| v.len()))
            .sum();
        total as f64 / self.query_tables.len() as f64
    }

    /// Average rows per table.
    pub fn avg_rows(&self) -> f64 {
        if self.tables.is_empty() {
            return 0.0;
        }
        self.tables.iter().map(|t| t.rows()).sum::<usize>() as f64 / self.tables.len() as f64
    }
}

/// Generation parameters.
#[derive(Debug, Clone)]
pub struct LakeSpec {
    pub name: String,
    /// Number of seed tables (≈ number of unionable families).
    pub seeds: usize,
    /// Partitions (benchmark tables) generated per seed.
    pub partitions_per_seed: usize,
    /// Columns per seed table (inclusive range).
    pub columns: (usize, usize),
    /// Rows per partition table (inclusive range).
    pub rows: (usize, usize),
    /// Number of query tables (one per family, up to `seeds`).
    pub query_tables: usize,
    /// D3L-style: rename columns to synonyms across partitions.
    pub rename_columns: bool,
    /// D3L-style: rescale numeric units across partitions.
    pub rescale_numerics: bool,
    pub seed: u64,
}

impl LakeSpec {
    /// D3L Small shape: few large families, renamed + rescaled columns.
    pub fn d3l_small() -> Self {
        LakeSpec {
            name: "d3l_small".into(),
            seeds: 6,
            partitions_per_seed: 11,
            columns: (10, 16),
            rows: (90, 220),
            query_tables: 6,
            rename_columns: true,
            rescale_numerics: true,
            seed: 0xD31,
        }
    }

    /// TUS Small shape: synthetic partitions with identical distributions.
    pub fn tus_small() -> Self {
        LakeSpec {
            name: "tus_small".into(),
            seeds: 9,
            partitions_per_seed: 17,
            columns: (8, 12),
            rows: (60, 140),
            query_tables: 9,
            rename_columns: false,
            rescale_numerics: false,
            seed: 0x705,
        }
    }

    /// SANTOS Small shape: many small families.
    pub fn santos_small() -> Self {
        LakeSpec {
            name: "santos_small".into(),
            seeds: 14,
            partitions_per_seed: 4,
            columns: (8, 14),
            rows: (70, 160),
            query_tables: 10,
            rename_columns: false,
            rescale_numerics: false,
            seed: 0x5A7,
        }
    }

    /// SANTOS Large shape: the scalability benchmark (no ground truth in
    /// the paper; families exist here but only timing is measured).
    pub fn santos_large() -> Self {
        LakeSpec {
            name: "santos_large".into(),
            seeds: 40,
            partitions_per_seed: 12,
            columns: (8, 14),
            rows: (80, 180),
            query_tables: 12,
            rename_columns: false,
            rescale_numerics: false,
            seed: 0x5A8,
        }
    }

    /// Multiply table counts and row counts (benches scale up; tests scale
    /// down).
    pub fn scaled(mut self, factor: f64) -> Self {
        self.partitions_per_seed =
            ((self.partitions_per_seed as f64 * factor).round() as usize).max(2);
        self.rows.0 = ((self.rows.0 as f64 * factor).round() as usize).max(10);
        self.rows.1 = ((self.rows.1 as f64 * factor).round() as usize).max(self.rows.0 + 1);
        self
    }

    /// Generate the lake.
    pub fn generate(&self) -> Lake {
        let mut rng = SmallRng::seed_from_u64(self.seed);
        // Weight the domain pick list toward text-ish domains to resemble
        // the type breakdown of Table 1 (natural-language heavy).
        let mut pick_list: Vec<usize> = Vec::new();
        for d in DOMAINS {
            let weight = match d.dtype {
                DomainType::NaturalLanguage => 6,
                DomainType::NamedEntity => 3,
                DomainType::Int => 2,
                _ => 1,
            };
            for _ in 0..weight {
                pick_list.push(d.id);
            }
        }

        // Family themes qualify column names in the renamed (D3L-style)
        // regime: related tables share the theme ("housing_price" vs
        // "housing_cost"), unrelated ones differ ("auto_price") — the
        // manually-annotated-lake structure D3L has.
        const THEMES: [&str; 12] = [
            "housing", "auto", "medical", "retail", "hr", "edu", "travel", "energy",
            "sports", "media", "agri", "fin",
        ];
        let mut tables = Vec::new();
        let mut unionable: HashMap<String, Vec<String>> = HashMap::new();
        let mut query_tables = Vec::new();

        for family in 0..self.seeds {
            // choose the seed table's domains (distinct)
            let n_cols = rng.gen_range(self.columns.0..=self.columns.1);
            let mut chosen: Vec<usize> = Vec::new();
            while chosen.len() < n_cols.min(DOMAINS.len()) {
                let d = pick_list[rng.gen_range(0..pick_list.len())];
                if !chosen.contains(&d) {
                    chosen.push(d);
                }
            }

            let family_names: Vec<String> = (0..self.partitions_per_seed)
                .map(|p| format!("{}_f{family}_t{p}", self.name))
                .collect();
            for (p, table_name) in family_names.iter().enumerate() {
                // vertical partition: keep 70–100% of the seed's columns
                let keep = ((chosen.len() as f64) * rng.gen_range(0.7..=1.0)).round() as usize;
                let mut cols = chosen.clone();
                cols.shuffle(&mut rng);
                cols.truncate(keep.max(2));

                let rows = rng.gen_range(self.rows.0..=self.rows.1);
                let columns: Vec<Column> = cols
                    .iter()
                    .map(|&d| {
                        let domain = &DOMAINS[d];
                        // partitions of the same family rename across the
                        // synonym variants (offset per family so unrelated
                        // tables do not align on the same variant)
                        let name_variant = if self.rename_columns { family + p } else { 0 };
                        let scale_variant = if self.rescale_numerics { family + p } else { 0 };
                        let mut scale = domain.scale(scale_variant);
                        if self.rescale_numerics {
                            // family-specific magnitude: the same semantic
                            // domain in another family measures a different
                            // population
                            scale *= [1.0, 2.6, 0.4, 6.5][family % 4];
                        }
                        let values = (0..rows)
                            .map(|_| domain.value(scale, &mut rng))
                            .collect();
                        let name = if self.rename_columns {
                            format!("{}_{}", THEMES[family % THEMES.len()], domain.name(name_variant))
                        } else {
                            domain.name(name_variant).to_string()
                        };
                        Column::new(name, values)
                    })
                    .collect();
                tables.push(Table::new(table_name.clone(), columns));

                let others: Vec<String> = family_names
                    .iter()
                    .filter(|n| *n != table_name)
                    .cloned()
                    .collect();
                unionable.insert(table_name.clone(), others);
            }
            if query_tables.len() < self.query_tables {
                query_tables.push(family_names[0].clone());
            }
        }

        Lake { name: self.name.clone(), tables, unionable, query_tables }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generates_expected_counts() {
        let lake = LakeSpec::santos_small().generate();
        assert_eq!(lake.tables.len(), 14 * 4);
        assert_eq!(lake.query_tables.len(), 10);
        assert!(lake.column_count() > 100);
        assert!(lake.avg_rows() >= 70.0);
        // each family member unionable with the 3 others
        assert!((lake.avg_unionable() - 3.0).abs() < 1e-9);
    }

    #[test]
    fn ground_truth_is_symmetric_and_self_free() {
        let lake = LakeSpec::tus_small().scaled(0.3).generate();
        for (t, others) in &lake.unionable {
            assert!(!others.contains(t));
            for o in others {
                assert!(lake.unionable[o].contains(t), "{o} should list {t}");
            }
        }
    }

    #[test]
    fn deterministic() {
        let a = LakeSpec::d3l_small().scaled(0.2).generate();
        let b = LakeSpec::d3l_small().scaled(0.2).generate();
        assert_eq!(a.tables, b.tables);
    }

    #[test]
    fn d3l_renames_and_rescales() {
        let lake = LakeSpec::d3l_small().scaled(0.3).generate();
        // within a family, at least one pair of partitions should disagree
        // on some column name (synonym renaming)
        let fam0: Vec<&Table> = lake
            .tables
            .iter()
            .filter(|t| t.name.contains("_f0_"))
            .collect();
        assert!(fam0.len() >= 2);
        let names0: Vec<&str> = fam0[0].columns.iter().map(|c| c.name.as_str()).collect();
        let names1: Vec<&str> = fam0[1].columns.iter().map(|c| c.name.as_str()).collect();
        assert_ne!(names0, names1);
    }

    #[test]
    fn tus_partitions_share_names() {
        let lake = LakeSpec::tus_small().scaled(0.2).generate();
        let fam0: Vec<&Table> = lake
            .tables
            .iter()
            .filter(|t| t.name.contains("_f0_"))
            .collect();
        // same variant (0) everywhere → shared column names across family
        let all_names: std::collections::HashSet<&str> = fam0
            .iter()
            .flat_map(|t| t.columns.iter().map(|c| c.name.as_str()))
            .collect();
        for t in &fam0[1..] {
            assert!(t.columns.iter().any(|c| all_names.contains(c.name.as_str())));
        }
    }

    #[test]
    fn scaled_changes_sizes() {
        let base = LakeSpec::santos_small();
        let big = base.clone().scaled(2.0);
        assert_eq!(big.partitions_per_seed, base.partitions_per_seed * 2);
        assert!(big.rows.1 > base.rows.1);
    }
}
