//! `lids-datagen` — synthetic workload generators for the evaluation.
//!
//! The paper's benchmarks are external artifacts (D3L/TUS/SANTOS data
//! lakes, a 13.8k-pipeline Kaggle corpus, 51 UCI/AutoML datasets). Per the
//! substitution policy in DESIGN.md, this crate regenerates statistically
//! faithful equivalents with *known ground truth*:
//!
//! - [`lakes`]: union-search benchmarks built the way TUS/SANTOS Small were
//!   built — horizontal + vertical partitioning of seed tables — plus a
//!   D3L-style variant where unionable tables additionally rename columns
//!   to synonyms and rescale numeric units (the "manually annotated,
//!   distribution-shifted" regime where KGLiDS shines).
//! - [`domains`]: typed column generators covering all seven fine-grained
//!   types with name synonyms and unit-scaling variants.
//! - [`pipelines`]: a Kaggle-style corpus of Python pipeline scripts with a
//!   realistic library mix (Figure 4), votes, tasks, and harvestable
//!   cleaning/transformation/estimator calls.
//! - [`tasks`]: classification datasets with planted missingness and scale
//!   pathologies so the *choice* of cleaning/transformation operation
//!   measurably changes downstream F1 (Tables 5–6, Figures 7–9).

//! - [`faults`]: a seeded artifact corruptor for chaos-testing the
//!   fault-tolerant bootstrap (truncation, unbalanced quotes, invalid
//!   UTF-8, NUL bytes, ragged rows, broken Python syntax).
//! - [`adversarial`]: a seeded generator of resource-hostile SPARQL
//!   queries (cross-product stars, unbound scans, deep OPTIONAL towers)
//!   for chaos-testing the query governor.

pub mod adversarial;
pub mod domains;
pub mod faults;
pub mod lakes;
pub mod pipelines;
pub mod profiles;
pub mod tasks;

pub use adversarial::{AdversarialKind, AdversarialQuery, AdversarialSuite};
pub use domains::{Domain, DOMAINS};
pub use faults::{Corruptor, FaultKind};
pub use lakes::{Lake, LakeSpec};
pub use pipelines::{generate_corpus, CorpusSpec, GeneratedPipeline};
pub use profiles::{synthetic_profiles, ProfileLakeSpec};
pub use tasks::{automl_datasets, cleaning_datasets, transform_datasets, TaskDataset};
