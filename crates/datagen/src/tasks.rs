//! Task datasets for the on-demand-automation experiments (Section 6.3).
//!
//! The paper evaluates on 51 unseen datasets (13 cleaning, 17
//! transformation, plus 24 AutoML tables). These generators produce
//! datasets with the same *shape*: names and increasing sizes mirror the
//! paper's tables, and each dataset plants a structure that makes the
//! choice of operation matter downstream:
//!
//! - Cleaning sets differ in missingness mechanism (row-order trends favour
//!   `Interpolate`, inter-feature correlation favours `IterativeImputer`,
//!   cluster structure favours `KNNImputer`, …), so imputers separate in
//!   10-fold random-forest F1 exactly as in Table 5.
//! - Transformation sets plant scale pathologies (log-normal magnitudes,
//!   quadratic growth, wildly mixed scales) that change the accuracy of a
//!   distance-based downstream model (see EXPERIMENTS.md for why the
//!   evaluator is scale-sensitive).
//! - AutoML sets vary geometry (blobs, linear, interactions, noise) so the
//!   best estimator and hyperparameters differ per dataset (Figure 9).

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use lids_profiler::table::{Column, Table};

/// A generated task dataset.
#[derive(Debug, Clone)]
pub struct TaskDataset {
    /// Paper dataset id (1–30 for cleaning/transform, 1–24 for AutoML).
    pub id: usize,
    pub name: String,
    pub table: Table,
    /// Target column name.
    pub target: String,
}

/// Missingness mechanism planted in a cleaning dataset.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Missingness {
    /// Values missing at random; column means are good fills.
    Random,
    /// Features follow smooth row-order trends; interpolation recovers them.
    Trend,
    /// Features strongly inter-correlated; regression imputation recovers.
    Correlated,
    /// Clustered rows; nearest neighbours recover.
    Clustered,
}

/// Build a numeric classification dataset as string table.
struct Builder {
    rows: usize,
    features: Vec<(String, Vec<f64>)>,
    labels: Vec<usize>,
}

impl Builder {
    fn into_table(
        mut self,
        name: &str,
        missing_rate: f64,
        missing_cols: &[usize],
        rng: &mut SmallRng,
    ) -> Table {
        let mut columns = Vec::new();
        for (j, (fname, values)) in self.features.drain(..).enumerate() {
            let strings: Vec<String> = values
                .iter()
                .map(|v| {
                    if missing_cols.contains(&j) && rng.gen_bool(missing_rate) {
                        "NA".to_string()
                    } else {
                        format!("{v:.4}")
                    }
                })
                .collect();
            columns.push(Column::new(fname, strings));
        }
        columns.push(Column::new(
            "target",
            self.labels.iter().map(|l| format!("c{l}")).collect(),
        ));
        let _ = self.rows;
        Table::new(name, columns)
    }
}

/// Generate a classification dataset with the given mechanism.
fn classification(
    rows: usize,
    n_features: usize,
    mechanism: Missingness,
    seed: u64,
) -> Builder {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut features: Vec<Vec<f64>> =
                (0..n_features).map(|_| Vec::with_capacity(rows)).collect();
    let mut labels = Vec::with_capacity(rows);
    for i in 0..rows {
        let t = i as f64 / rows as f64;
        let row: Vec<f64> = match mechanism {
            Missingness::Random => (0..n_features)
                .map(|_| rng.gen_range(-1.0..1.0))
                .collect(),
            Missingness::Trend => (0..n_features)
                .map(|j| {
                    // smooth per-feature trend + small noise
                    (t * (j + 1) as f64 * std::f64::consts::TAU).sin() * 2.0
                        + rng.gen_range(-0.15..0.15)
                })
                .collect(),
            Missingness::Correlated => {
                let base: f64 = rng.gen_range(-1.0..1.0);
                (0..n_features)
                    .map(|j| base * (j + 1) as f64 + rng.gen_range(-0.1..0.1))
                    .collect()
            }
            Missingness::Clustered => {
                let cluster = rng.gen_range(0..4usize);
                let center = cluster as f64 * 3.0 - 4.5;
                (0..n_features)
                    .map(|j| center + (j as f64 * 0.3) + rng.gen_range(-0.4..0.4))
                    .collect()
            }
        };
        // label depends on the informative features, so bad imputation hurts
        let score: f64 = row.iter().enumerate().map(|(j, v)| v * ((j % 3) as f64 - 1.0)).sum();
        let noise: f64 = rng.gen_range(-0.3..0.3);
        labels.push(usize::from(score + noise > 0.0));
        for (f, v) in features.iter_mut().zip(&row) {
            f.push(*v);
        }
    }
    Builder {
        rows,
        features: features
            .into_iter()
            .enumerate()
            .map(|(j, v)| (format!("f{j}"), v))
            .collect(),
        labels,
    }
}

/// The 13 cleaning datasets of Table 5 (names from the paper, sizes
/// increasing, #11–13 large). `scale` multiplies row counts.
pub fn cleaning_datasets(scale: f64) -> Vec<TaskDataset> {
    let specs: [(&str, usize, Missingness, f64); 13] = [
        ("hepatitis", 160, Missingness::Random, 0.12),
        ("horsecolic", 300, Missingness::Correlated, 0.25),
        ("housevotes84", 430, Missingness::Random, 0.08),
        ("breastcancerwisconsin", 560, Missingness::Clustered, 0.05),
        ("credit", 690, Missingness::Random, 0.07),
        ("cleveland_heart_disease", 300, Missingness::Correlated, 0.15),
        ("titanic", 890, Missingness::Clustered, 0.20),
        ("creditg", 1000, Missingness::Trend, 0.18),
        ("jm1", 1900, Missingness::Random, 0.10),
        ("adult", 2600, Missingness::Clustered, 0.09),
        ("higgs", 5200, Missingness::Trend, 0.12),
        ("APSFailure", 7000, Missingness::Correlated, 0.15),
        ("albert", 9000, Missingness::Random, 0.22),
    ];
    specs
        .iter()
        .enumerate()
        .map(|(i, (name, rows, mech, rate))| {
            let rows = ((*rows as f64 * scale).round() as usize).max(40);
            let seed = 0xC1EA + i as u64;
            let mut rng = SmallRng::seed_from_u64(seed ^ 0xF00D);
            let n_features = 5 + i % 4;
            let builder = classification(rows, n_features, *mech, seed);
            // missingness hits half the features
            let missing_cols: Vec<usize> = (0..n_features).step_by(2).collect();
            let table = builder.into_table(name, *rate, &missing_cols, &mut rng);
            TaskDataset {
                id: i + 1,
                name: name.to_string(),
                table,
                target: "target".to_string(),
            }
        })
        .collect()
}

/// Scale pathology planted in a transformation dataset.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Pathology {
    /// Features already well-behaved (no transform is best).
    None,
    /// Log-normal magnitudes: classes separate in log space.
    LogNormal,
    /// Quadratic growth: classes separate under sqrt.
    Quadratic,
    /// Wildly mixed feature scales: scalers matter for distance models.
    MixedScales,
}

fn transform_dataset(rows: usize, pathology: Pathology, seed: u64) -> Builder {
    let mut rng = SmallRng::seed_from_u64(seed);
    let n_features = 4;
    let mut features: Vec<Vec<f64>> =
                (0..n_features).map(|_| Vec::with_capacity(rows)).collect();
    let mut labels = Vec::with_capacity(rows);
    for _ in 0..rows {
        let class = rng.gen_range(0..2usize);
        let sep = class as f64; // latent separation in "natural" space
        let row: Vec<f64> = match pathology {
            Pathology::None => (0..n_features)
                .map(|_| sep + rng.gen_range(-0.65..0.65))
                .collect(),
            Pathology::LogNormal => (0..n_features)
                .map(|_| {
                    // classes differ by a multiplicative factor → additive in
                    // log space, swamped by magnitude variance in raw space
                    let z: f64 = rng.gen_range(-1.4..1.4);
                    (z + sep * 1.1).exp() * 100.0
                })
                .collect(),
            Pathology::Quadratic => (0..n_features)
                .map(|_| {
                    let base: f64 = sep * 2.0 + 4.0 + rng.gen_range(-0.9..0.9);
                    base * base
                })
                .collect(),
            Pathology::MixedScales => (0..n_features)
                .map(|j| {
                    if j == 0 {
                        // informative, tiny scale
                        sep * 0.01 + rng.gen_range(-0.004..0.004)
                    } else {
                        // uninformative, huge scale — dominates distances
                        rng.gen_range(-1.0e4..1.0e4)
                    }
                })
                .collect(),
        };
        labels.push(class);
        for (f, v) in features.iter_mut().zip(&row) {
            f.push(*v);
        }
    }
    Builder {
        rows,
        features: features
            .into_iter()
            .enumerate()
            .map(|(j, v)| (format!("f{j}"), v))
            .collect(),
        labels,
    }
}

/// The 17 transformation datasets of Table 6 (ids 14–30; 24–30 large —
/// AutoLearn times out / OOMs on those in the paper).
pub fn transform_datasets(scale: f64) -> Vec<TaskDataset> {
    let specs: [(&str, usize, Pathology); 17] = [
        ("fertility_Diagnosis", 100, Pathology::None),
        ("haberman", 300, Pathology::Quadratic),
        ("wine", 180, Pathology::MixedScales),
        ("Ecoli", 340, Pathology::LogNormal),
        ("pima_diabetes", 770, Pathology::None),
        ("Banke_Note", 1370, Pathology::MixedScales),
        ("ionosphere", 350, Pathology::Quadratic),
        ("sonar", 210, Pathology::LogNormal),
        ("Abalone", 4200, Pathology::Quadratic),
        ("libras", 360, Pathology::MixedScales),
        ("waveform", 5000, Pathology::LogNormal),
        ("letter_recognition", 6000, Pathology::MixedScales),
        ("opticaldigits", 5600, Pathology::Quadratic),
        ("featurepixel", 2000, Pathology::MixedScales),
        ("shuttle", 8000, Pathology::None),
        ("featurefourier", 2000, Pathology::LogNormal),
        ("poker", 10000, Pathology::MixedScales),
    ];
    specs
        .iter()
        .enumerate()
        .map(|(i, (name, rows, pathology))| {
            let rows = ((*rows as f64 * scale).round() as usize).max(40);
            let seed = 0x7AA5 + i as u64;
            let mut rng = SmallRng::seed_from_u64(seed ^ 0xBEAD);
            let builder = transform_dataset(rows, *pathology, seed);
            let table = builder.into_table(name, 0.0, &[], &mut rng);
            TaskDataset {
                id: i + 14,
                name: name.to_string(),
                table,
                target: "target".to_string(),
            }
        })
        .collect()
}

/// The 24 AutoML benchmark datasets of Figure 9: varied geometry so the
/// best estimator and hyperparameters differ per dataset.
pub fn automl_datasets(scale: f64) -> Vec<TaskDataset> {
    (0..24)
        .map(|i| {
            let seed = 0xA07 + i as u64;
            let mut rng = SmallRng::seed_from_u64(seed);
            let rows = (((400 + i * 110) as f64) * scale).round() as usize;
            let rows = rows.max(120);
            let n_classes = 2 + i % 3;
            let n_features = 4 + i % 5;
            let geometry = i % 4;
            let mut features: Vec<Vec<f64>> =
                (0..n_features).map(|_| Vec::with_capacity(rows)).collect();
            let mut labels = Vec::with_capacity(rows);
            for _ in 0..rows {
                let class = rng.gen_range(0..n_classes);
                // overlapping classes: hyperparameter choice matters when
                // the problem is neither trivial nor hopeless
                let row: Vec<f64> = match geometry {
                    // overlapping blobs (kNN/forest friendly)
                    0 => (0..n_features)
                        .map(|j| class as f64 * 0.9 + (j as f64 * 0.2) + rng.gen_range(-0.9..0.9))
                        .collect(),
                    // noisy linear boundary (logistic friendly)
                    1 => {
                        let dir: Vec<f64> =
                            (0..n_features).map(|j| ((j + 1) as f64 * 0.7).sin()).collect();
                        let offset = class as f64 * 0.8;
                        dir.iter()
                            .map(|d| d * offset + rng.gen_range(-0.8..0.8))
                            .collect()
                    }
                    // overlapping axis-aligned boxes (tree friendly)
                    2 => (0..n_features)
                        .map(|j| {
                            let box_id = (class + j) % n_classes;
                            box_id as f64 * 1.0 + rng.gen_range(-0.8..0.8)
                        })
                        .collect(),
                    // noisy interactions (deep forest friendly)
                    _ => {
                        let a: f64 = rng.gen_range(-1.0..1.0);
                        let b: f64 = rng.gen_range(-1.0..1.0);
                        let mut row: Vec<f64> =
                            (0..n_features).map(|_| rng.gen_range(-1.0..1.0)).collect();
                        row[0] = a;
                        row[1 % n_features] = b;
                        let want = usize::from(a * b > 0.0) % n_classes;
                        if n_features > 2 {
                            row[2] = (class as f64 - want as f64) * 0.7 + rng.gen_range(-0.5..0.5);
                        }
                        row
                    }
                };
                // 12% label noise caps attainable F1 below saturation
                let observed = if rng.gen_bool(0.12) {
                    rng.gen_range(0..n_classes)
                } else {
                    class
                };
                labels.push(observed);
                for (f, v) in features.iter_mut().zip(&row) {
                    f.push(*v);
                }
            }
            let builder = Builder {
                rows,
                features: features
                    .into_iter()
                    .enumerate()
                    .map(|(j, v)| (format!("f{j}"), v))
                    .collect(),
                labels,
            };
            let table = builder.into_table(&format!("automl_{}", i + 1), 0.0, &[], &mut rng);
            TaskDataset {
                id: i + 1,
                name: format!("automl_{}", i + 1),
                table,
                target: "target".to_string(),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use lids_ml::MlFrame;

    #[test]
    fn cleaning_sets_have_missing_values_and_ids() {
        let sets = cleaning_datasets(0.2);
        assert_eq!(sets.len(), 13);
        for (i, d) in sets.iter().enumerate() {
            assert_eq!(d.id, i + 1);
            let frame = MlFrame::from_table(&d.table, &d.target).unwrap();
            assert!(frame.has_missing(), "{} should have NAs", d.name);
            assert!(frame.n_classes >= 2);
        }
        // sizes increase overall
        assert!(sets[12].table.rows() > sets[0].table.rows() * 10);
    }

    #[test]
    fn transform_sets_are_complete_and_numbered_14_to_30() {
        let sets = transform_datasets(0.2);
        assert_eq!(sets.len(), 17);
        assert_eq!(sets[0].id, 14);
        assert_eq!(sets[16].id, 30);
        for d in &sets {
            let frame = MlFrame::from_table(&d.table, &d.target).unwrap();
            assert!(!frame.has_missing(), "{}", d.name);
        }
    }

    #[test]
    fn automl_sets_vary_in_classes() {
        let sets = automl_datasets(0.3);
        assert_eq!(sets.len(), 24);
        let classes: std::collections::HashSet<usize> = sets
            .iter()
            .map(|d| MlFrame::from_table(&d.table, &d.target).unwrap().n_classes)
            .collect();
        assert!(classes.len() >= 2);
    }

    #[test]
    fn deterministic() {
        let a = cleaning_datasets(0.1);
        let b = cleaning_datasets(0.1);
        assert_eq!(a[3].table, b[3].table);
    }

    #[test]
    fn labels_are_learnable() {
        // sanity: a forest beats chance on a generated cleaning dataset
        use lids_ml::{Classifier, RandomForest};
        let d = &cleaning_datasets(0.3)[4];
        let frame = MlFrame::from_table(&d.table, &d.target).unwrap();
        let clean = lids_ml::CleaningOp::SimpleImputer.apply(&frame);
        let mut rf = RandomForest::new(Default::default());
        rf.fit(&clean.x, &clean.y);
        let acc = lids_ml::accuracy(&clean.y, &rf.predict(&clean.x));
        assert!(acc > 0.7, "accuracy {acc}");
    }
}
