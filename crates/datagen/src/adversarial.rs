//! Seeded adversarial SPARQL workload generator for resource-governance
//! chaos tests.
//!
//! Every generated query is *semantically valid* but pathological for a
//! naive evaluator: disconnected cross-product stars whose result size is
//! the product of whole-store scans, unbound-everything scans that touch
//! every quad (chained so intermediates blow up), and deeply nested
//! `OPTIONAL` towers that multiply bindings level by level. The chaos
//! suite (`tests/query_chaos.rs`) runs these against a governed platform
//! and asserts each one terminates within its deadline with a typed error
//! or a truncated partial result — never a panic, abort, or hang.
//!
//! Like [`crate::faults::Corruptor`], generation is fully seeded: the same
//! seed and call sequence always yields the same workload.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// The adversarial query families.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AdversarialKind {
    /// Disconnected triple patterns: the result is the cartesian product
    /// of full scans (`n^k` rows for `k` star arms over `n` quads).
    CrossProductStar,
    /// Variable-only patterns chained through shared variables: every
    /// quad matches every pattern position.
    UnboundScan,
    /// `OPTIONAL` towers: each nesting level multiplies the surviving
    /// bindings by another full scan.
    DeepOptional,
}

impl AdversarialKind {
    /// Every family, in declaration order.
    pub const ALL: [AdversarialKind; 3] = [
        AdversarialKind::CrossProductStar,
        AdversarialKind::UnboundScan,
        AdversarialKind::DeepOptional,
    ];
}

impl std::fmt::Display for AdversarialKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{self:?}")
    }
}

/// One generated adversarial query.
#[derive(Debug, Clone)]
pub struct AdversarialQuery {
    /// Stable label (`cross_product_star#2` etc.) for reports.
    pub name: String,
    pub kind: AdversarialKind,
    /// The SPARQL text.
    pub text: String,
}

/// Seeded generator of adversarial queries plus the companion quads that
/// make them expensive.
#[derive(Debug)]
pub struct AdversarialSuite {
    rng: SmallRng,
}

impl AdversarialSuite {
    pub fn new(seed: u64) -> Self {
        AdversarialSuite { rng: SmallRng::seed_from_u64(seed) }
    }

    /// `n` queries cycling through the three families, parameters drawn
    /// from the seeded rng.
    pub fn generate(&mut self, n: usize) -> Vec<AdversarialQuery> {
        (0..n)
            .map(|i| {
                let kind = AdversarialKind::ALL[i % AdversarialKind::ALL.len()];
                let text = match kind {
                    AdversarialKind::CrossProductStar => {
                        let arms = self.rand_range(3, 5);
                        self.cross_product_star(arms)
                    }
                    AdversarialKind::UnboundScan => {
                        let hops = self.rand_range(2, 4);
                        self.unbound_scan(hops)
                    }
                    AdversarialKind::DeepOptional => {
                        let depth = self.rand_range(3, 6);
                        self.deep_optional(depth)
                    }
                };
                AdversarialQuery { name: format!("{kind}#{i}"), kind, text }
            })
            .collect()
    }

    fn rand_range(&mut self, lo: usize, hi: usize) -> usize {
        self.rng.gen_range(lo..=hi)
    }

    /// `k` disconnected full-scan patterns: `n^k` result rows.
    fn cross_product_star(&mut self, arms: usize) -> String {
        let mut body = String::new();
        for a in 0..arms {
            body.push_str(&format!("?s{a} ?p{a} ?o{a} . "));
        }
        format!("SELECT * WHERE {{ {body}}}")
    }

    /// Variable-only patterns chained object→subject so every hop fans
    /// out over the whole store again.
    fn unbound_scan(&mut self, hops: usize) -> String {
        let mut body = String::from("?s0 ?p0 ?s1 . ");
        for h in 1..hops {
            body.push_str(&format!("?s{h} ?p{h} ?s{} . ", h + 1));
        }
        format!("SELECT * WHERE {{ {body}}}")
    }

    /// An `OPTIONAL` tower `depth` levels deep, each level a fresh full
    /// scan: surviving bindings multiply at every level.
    fn deep_optional(&mut self, depth: usize) -> String {
        let mut body = format!("?s0 ?p0 ?o0 . {}", self.optional_tower(1, depth));
        body = format!("SELECT * WHERE {{ {body} }}");
        body
    }

    fn optional_tower(&mut self, level: usize, depth: usize) -> String {
        if level > depth {
            return String::new();
        }
        let inner = self.optional_tower(level + 1, depth);
        format!("OPTIONAL {{ ?s{level} ?p{level} ?o{level} . {inner}}}")
    }

    /// Companion data: `(subject, predicate, object)` IRI triples forming
    /// a dense bipartite-ish graph so full scans are non-trivially large
    /// and cross products explode. Returns IRI strings (the caller owns
    /// term construction — this crate stays store-agnostic).
    pub fn dense_triples(&mut self, subjects: usize, fanout: usize) -> Vec<(String, String, String)> {
        let mut out = Vec::with_capacity(subjects * fanout);
        for s in 0..subjects {
            for _ in 0..fanout {
                let p = self.rng.gen_range(0..8u32);
                let o = self.rng.gen_range(0..subjects.max(1) as u32);
                out.push((
                    format!("urn:adv:s{s}"),
                    format!("urn:adv:p{p}"),
                    format!("urn:adv:s{o}"),
                ));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic_per_seed() {
        let a: Vec<String> = AdversarialSuite::new(7).generate(9).into_iter().map(|q| q.text).collect();
        let b: Vec<String> = AdversarialSuite::new(7).generate(9).into_iter().map(|q| q.text).collect();
        let c: Vec<String> = AdversarialSuite::new(8).generate(9).into_iter().map(|q| q.text).collect();
        assert_eq!(a, b, "same seed must reproduce the workload");
        assert_ne!(a, c, "different seeds must vary parameters");
    }

    #[test]
    fn all_families_are_covered() {
        let queries = AdversarialSuite::new(1).generate(9);
        for kind in AdversarialKind::ALL {
            assert!(queries.iter().any(|q| q.kind == kind), "missing {kind}");
        }
        // structural spot checks
        assert!(queries
            .iter()
            .filter(|q| q.kind == AdversarialKind::DeepOptional)
            .all(|q| q.text.matches("OPTIONAL").count() >= 3));
        assert!(queries
            .iter()
            .filter(|q| q.kind == AdversarialKind::CrossProductStar)
            .all(|q| q.text.matches(" . ").count() >= 3));
    }

    #[test]
    fn dense_triples_have_requested_shape() {
        let triples = AdversarialSuite::new(3).dense_triples(10, 4);
        assert_eq!(triples.len(), 40);
        assert!(triples.iter().all(|(s, p, o)| {
            s.starts_with("urn:adv:s") && p.starts_with("urn:adv:p") && o.starts_with("urn:adv:s")
        }));
    }
}
