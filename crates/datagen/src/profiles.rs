//! Synthetic column-profile lakes — pre-profiled input for the similarity
//! linker, skipping Algorithm 2 entirely.
//!
//! The `linking_schema` bench and the exact-vs-pruned differential test
//! need thousands of [`ColumnProfile`]s with controllable structure:
//! clustered CoLR embeddings (so θ-edges exist *and* most pairs miss),
//! repeated column labels (so the label cache has work to dedupe),
//! boolean true-ratio clusters (so the sliding window prunes), and every
//! fine-grained type represented. Profiling real generated tables at that
//! scale would dominate the run; this module fabricates the profiles
//! directly, deterministically from a seed.

use lids_profiler::{ColumnMeta, ColumnProfile, ColumnStats, FineGrainedType};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Shape of a synthetic profile lake.
#[derive(Debug, Clone)]
pub struct ProfileLakeSpec {
    /// RNG seed; same spec → same profiles.
    pub seed: u64,
    /// Number of tables.
    pub tables: usize,
    /// Columns per table.
    pub columns_per_table: usize,
    /// Tables grouped under one dataset name.
    pub tables_per_dataset: usize,
    /// CoLR embedding width (300 in production; tests shrink it).
    pub embedding_dim: usize,
    /// Embedding cluster centers per fine-grained type. Columns in the
    /// same cluster land above θ, different clusters land far below.
    pub clusters: usize,
    /// Within-cluster perturbation amplitude.
    pub noise: f32,
    /// Probability a column is forced to [`FineGrainedType::NaturalLanguage`],
    /// skewing bucket sizes the way real lakes skew toward text columns.
    pub dominant_share: f64,
}

impl Default for ProfileLakeSpec {
    fn default() -> Self {
        ProfileLakeSpec {
            seed: 7,
            tables: 8,
            columns_per_table: 4,
            tables_per_dataset: 2,
            embedding_dim: 64,
            clusters: 4,
            noise: 0.03,
            dominant_share: 0.0,
        }
    }
}

/// Per-type label vocabulary; overlapping names across tables exercise the
/// label cache and produce α-edges (including exact token matches).
/// Within a pool the words are mutually non-synonymous (at most one word
/// per word-embedding concept group): duplicate-label matches are the
/// plentiful α-hit, synonym hits stay rare, and edge counts grow roughly
/// linearly with the lake instead of quadratically — as in real lakes,
/// where most column names do *not* resemble each other.
fn label_pool(fgt: FineGrainedType) -> &'static [&'static str] {
    match fgt {
        FineGrainedType::Int => &["age", "votes", "attempts", "floors", "siblings", "wins"],
        FineGrainedType::Float => &["price", "salary", "rating", "humidity", "speed", "lat"],
        FineGrainedType::Boolean => &["active", "verified", "paid", "smoker", "insured"],
        FineGrainedType::Date => &["date", "created", "updated", "expires", "birthday"],
        FineGrainedType::NamedEntity => &["city", "country", "name", "company", "airline"],
        FineGrainedType::NaturalLanguage => &["description", "summary", "overview", "feedback", "bio"],
        FineGrainedType::String => &["code", "sku", "label", "category", "serial"],
    }
}

/// Consonants for generated filler tokens: three-consonant tokens are
/// outside the word-embedding concept table (every entry there of three or
/// more letters has a vowel) and fail the common-English check, so two
/// labels sharing only their base word embed at ≈0.5 cosine — well below
/// α. Most labels should *not* link, as in a real lake.
const CONSONANTS: &[char] = &[
    'b', 'c', 'd', 'f', 'g', 'h', 'j', 'k', 'l', 'm', 'n', 'p', 'q', 'r', 's', 't', 'v', 'w',
    'x', 'z',
];

/// Filler vocabulary sized to the lake: distinct-label count grows with
/// the column count, so duplicate-label α-edges stay roughly *linear* in
/// lake size instead of quadratic.
fn filler_tokens(columns: usize) -> Vec<String> {
    let n = (columns / 10).max(50);
    (0..n)
        .map(|i| {
            let a = CONSONANTS[i % 20];
            let b = CONSONANTS[(i / 20) % 20];
            let c = CONSONANTS[(i / 400) % 20];
            format!("{a}{b}{c}")
        })
        .collect()
}

const ALL_TYPES: [FineGrainedType; 7] = [
    FineGrainedType::Int,
    FineGrainedType::Float,
    FineGrainedType::Boolean,
    FineGrainedType::Date,
    FineGrainedType::NamedEntity,
    FineGrainedType::NaturalLanguage,
    FineGrainedType::String,
];

/// Generate a lake of synthetic profiles. Deterministic in the spec.
pub fn synthetic_profiles(spec: &ProfileLakeSpec) -> Vec<ColumnProfile> {
    let mut rng = SmallRng::seed_from_u64(spec.seed);
    // one set of cluster centers per (type, cluster) pair, drawn up front
    let types_with_embeddings: Vec<FineGrainedType> = ALL_TYPES
        .iter()
        .copied()
        .filter(|t| *t != FineGrainedType::Boolean)
        .collect();
    // Cluster centers are drawn around a small set of per-type "parent"
    // directions rather than fully isotropically. Real embedding spaces
    // (CoLR included) are anisotropic — semantically related columns
    // concentrate around shared directions — and that correlation is what
    // makes them navigable for graph ANN indexes. Fully random centers at
    // dim 300 are pairwise near-orthogonal, a flat landscape with no
    // gradient for any search structure (and unlike anything profiled from
    // real tables).
    let mut centers: std::collections::HashMap<(FineGrainedType, usize), Vec<f32>> =
        Default::default();
    for &t in &types_with_embeddings {
        let n_parents = (spec.clusters.max(1) as f64).sqrt().ceil() as usize;
        let parents: Vec<Vec<f32>> = (0..n_parents)
            .map(|_| {
                (0..spec.embedding_dim)
                    .map(|_| rng.gen_range(-1.0f32..1.0))
                    .collect()
            })
            .collect();
        for c in 0..spec.clusters.max(1) {
            let parent = &parents[c % n_parents];
            let v: Vec<f32> = parent
                .iter()
                .map(|p| 0.6 * p + 0.4 * rng.gen_range(-1.0f32..1.0))
                .collect();
            centers.insert((t, c), v);
        }
    }
    // boolean true-ratio clusters: tight groups the window pass can split
    let ratio_centers: Vec<f64> = (0..spec.clusters.max(1))
        .map(|_| rng.gen_range(0.0..1.0))
        .collect();

    let fillers = filler_tokens(spec.tables * spec.columns_per_table);
    let mut profiles = Vec::with_capacity(spec.tables * spec.columns_per_table);
    for t in 0..spec.tables {
        let dataset = format!("ds{}", t / spec.tables_per_dataset.max(1));
        let table = format!("t{t}");
        for _c in 0..spec.columns_per_table {
            let fgt = if rng.gen_bool(spec.dominant_share) {
                FineGrainedType::NaturalLanguage
            } else {
                ALL_TYPES[rng.gen_range(0..ALL_TYPES.len())]
            };
            let pool = label_pool(fgt);
            let base = pool[rng.gen_range(0..pool.len())];
            // ~2% bare duplicates (label-cache hits, exact α-edges); the
            // rest get a filler token that drowns the shared base word
            let column = if rng.gen_bool(0.02) {
                base.to_string()
            } else {
                format!("{base}_{}", fillers[rng.gen_range(0..fillers.len())])
            };
            let cluster = rng.gen_range(0..spec.clusters.max(1));
            let numeric = fgt.is_numeric();
            let (embedding, true_ratio) = if fgt == FineGrainedType::Boolean {
                // ~10% of booleans lack a ratio (all-null columns)
                let ratio = if rng.gen_bool(0.9) {
                    Some((ratio_centers[cluster] + rng.gen_range(-0.01..0.01)).clamp(0.0, 1.0))
                } else {
                    None
                };
                (Vec::new(), ratio)
            } else if rng.gen_bool(0.05) {
                // occasionally no embedding, as with quarantined columns
                (Vec::new(), None)
            } else {
                let center = &centers[&(fgt, cluster)];
                let e: Vec<f32> = center
                    .iter()
                    .map(|x| x + rng.gen_range(-spec.noise..spec.noise))
                    .collect();
                (e, None)
            };
            let count = rng.gen_range(50..500usize);
            profiles.push(ColumnProfile {
                meta: ColumnMeta {
                    dataset: dataset.clone(),
                    table: table.clone(),
                    column,
                },
                fgt,
                stats: ColumnStats {
                    count,
                    nulls: rng.gen_range(0..count / 10),
                    distinct: rng.gen_range(1..count),
                    min: numeric.then(|| rng.gen_range(-100.0..0.0)),
                    max: numeric.then(|| rng.gen_range(0.0..100.0)),
                    mean: numeric.then(|| rng.gen_range(-10.0..10.0)),
                    std_dev: numeric.then(|| rng.gen_range(0.0..5.0)),
                    true_ratio,
                    avg_length: (!numeric && fgt != FineGrainedType::Boolean)
                        .then(|| rng.gen_range(1.0..40.0)),
                },
                embedding,
            });
        }
    }
    profiles
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_and_sized() {
        let spec = ProfileLakeSpec::default();
        let a = synthetic_profiles(&spec);
        let b = synthetic_profiles(&spec);
        assert_eq!(a.len(), spec.tables * spec.columns_per_table);
        assert_eq!(a, b);
    }

    #[test]
    fn covers_all_types_at_scale() {
        let spec = ProfileLakeSpec { tables: 40, seed: 3, ..Default::default() };
        let ps = synthetic_profiles(&spec);
        for t in ALL_TYPES {
            assert!(ps.iter().any(|p| p.fgt == t), "missing {t:?}");
        }
        // booleans carry ratios, not embeddings
        assert!(ps
            .iter()
            .filter(|p| p.fgt == FineGrainedType::Boolean)
            .all(|p| p.embedding.is_empty()));
        assert!(ps
            .iter()
            .any(|p| p.fgt == FineGrainedType::Boolean && p.stats.true_ratio.is_some()));
    }

    #[test]
    fn dominant_share_skews_buckets() {
        let spec = ProfileLakeSpec {
            tables: 30,
            dominant_share: 0.9,
            seed: 11,
            ..Default::default()
        };
        let ps = synthetic_profiles(&spec);
        let nl = ps
            .iter()
            .filter(|p| p.fgt == FineGrainedType::NaturalLanguage)
            .count();
        assert!(nl * 2 > ps.len(), "{nl}/{}", ps.len());
    }
}
