//! Deterministic fault injection for chaos-testing the bootstrap.
//!
//! A seeded [`Corruptor`] damages serialized artifacts (CSV bytes, Python
//! sources) in precisely one of six ways, each mapped to the [`ErrorKind`]
//! the strict ingestion path must classify it as. Chaos tests corrupt a
//! known subset of a generated lake, bootstrap it, and assert the platform
//! quarantines exactly the corrupted artifacts with the expected kinds —
//! and never panics.

use lids_exec::ErrorKind;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// The ways an artifact can be damaged.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultKind {
    /// Cut the byte stream mid-record, leaving an unterminated quoted field.
    Truncate,
    /// Open a quote that never closes.
    UnbalancedQuote,
    /// Splice a byte sequence that is not valid UTF-8.
    InvalidUtf8,
    /// Sprinkle NUL bytes into field data.
    NulBytes,
    /// Add extra fields to a data row so it no longer matches the header.
    RaggedRow,
    /// Break a Python script's syntax (unclosed paren).
    PySyntax,
}

impl FaultKind {
    /// Every fault kind, in declaration order.
    pub const ALL: [FaultKind; 6] = [
        FaultKind::Truncate,
        FaultKind::UnbalancedQuote,
        FaultKind::InvalidUtf8,
        FaultKind::NulBytes,
        FaultKind::RaggedRow,
        FaultKind::PySyntax,
    ];

    /// The fault kinds that apply to CSV tables.
    pub const CSV: [FaultKind; 5] = [
        FaultKind::Truncate,
        FaultKind::UnbalancedQuote,
        FaultKind::InvalidUtf8,
        FaultKind::NulBytes,
        FaultKind::RaggedRow,
    ];

    /// The [`ErrorKind`] the strict ingestion path classifies this fault as.
    pub fn expected_error(&self) -> ErrorKind {
        match self {
            FaultKind::Truncate | FaultKind::UnbalancedQuote | FaultKind::RaggedRow => {
                ErrorKind::CsvMalformed
            }
            FaultKind::InvalidUtf8 | FaultKind::NulBytes => ErrorKind::EncodingError,
            FaultKind::PySyntax => ErrorKind::PyParseError,
        }
    }
}

impl std::fmt::Display for FaultKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{self:?}")
    }
}

/// Seeded artifact corruptor. The same seed and call sequence always
/// produces the same damage, so chaos tests are reproducible.
#[derive(Debug)]
pub struct Corruptor {
    rng: SmallRng,
}

impl Corruptor {
    pub fn new(seed: u64) -> Self {
        Corruptor { rng: SmallRng::seed_from_u64(seed) }
    }

    /// Damage CSV bytes with the given fault. Panics if `kind` is
    /// [`FaultKind::PySyntax`] (not a CSV fault).
    pub fn corrupt_csv(&mut self, csv: &[u8], kind: FaultKind) -> Vec<u8> {
        let mut out = csv.to_vec();
        match kind {
            FaultKind::Truncate => {
                // cut inside the last third, then open a quote so the tail
                // is an unterminated quoted field regardless of cut point
                let floor = out.len().saturating_mul(2) / 3;
                let cut = self.rng.gen_range(floor.max(1)..=out.len().max(1));
                out.truncate(cut);
                out.push(b'"');
            }
            FaultKind::UnbalancedQuote => {
                // open a quote at a field start (just after a comma) and
                // never close it
                let at = position_after(&out, b',', &mut self.rng).unwrap_or(out.len());
                out.insert(at, b'"');
            }
            FaultKind::InvalidUtf8 => {
                // 0xFF can never appear in well-formed UTF-8
                let at = self.rng.gen_range(0..=out.len());
                out.insert(at, 0xFF);
            }
            FaultKind::NulBytes => {
                let at = self.rng.gen_range(0..=out.len());
                out.insert(at, 0x00);
            }
            FaultKind::RaggedRow => {
                // append extra fields to the final data row
                while out.last() == Some(&b'\n') {
                    out.pop();
                }
                out.extend_from_slice(b",surplus,surplus\n");
            }
            FaultKind::PySyntax => panic!("PySyntax is not a CSV fault"),
        }
        out
    }

    /// Damage Python source so it no longer parses: an opening paren with
    /// no close, spliced onto a random line end.
    pub fn corrupt_py(&mut self, source: &str) -> String {
        let lines: Vec<&str> = source.lines().collect();
        let at = if lines.is_empty() { 0 } else { self.rng.gen_range(0..lines.len()) };
        let mut out = String::new();
        for (i, line) in lines.iter().enumerate() {
            out.push_str(line);
            if i == at {
                out.push_str(" ((");
            }
            out.push('\n');
        }
        if lines.is_empty() {
            out.push_str("((\n");
        }
        out
    }
}

/// A random position immediately after an occurrence of `byte`.
fn position_after(haystack: &[u8], byte: u8, rng: &mut SmallRng) -> Option<usize> {
    let hits: Vec<usize> = haystack
        .iter()
        .enumerate()
        .filter(|(_, b)| **b == byte)
        .map(|(i, _)| i + 1)
        .collect();
    if hits.is_empty() {
        None
    } else {
        Some(hits[rng.gen_range(0..hits.len())])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lids_profiler::{parse_csv_bytes, CsvMode};

    const CSV: &str = "id,name,price\n1,apple,1.50\n2,banana,0.75\n3,cherry,3.10\n";

    #[test]
    fn corruption_is_deterministic() {
        for kind in FaultKind::CSV {
            let a = Corruptor::new(7).corrupt_csv(CSV.as_bytes(), kind);
            let b = Corruptor::new(7).corrupt_csv(CSV.as_bytes(), kind);
            assert_eq!(a, b, "{kind} not deterministic");
        }
        let a = Corruptor::new(7).corrupt_py("x = 1\ny = 2\n");
        let b = Corruptor::new(7).corrupt_py("x = 1\ny = 2\n");
        assert_eq!(a, b);
    }

    #[test]
    fn each_csv_fault_yields_its_expected_error_kind() {
        for (i, kind) in FaultKind::CSV.into_iter().enumerate() {
            let bad = Corruptor::new(41 + i as u64).corrupt_csv(CSV.as_bytes(), kind);
            let err = parse_csv_bytes("t", &bad, CsvMode::Strict)
                .expect_err(&format!("{kind} should fail strict parsing"));
            assert_eq!(err.kind(), kind.expected_error(), "{kind}: {err}");
        }
    }

    #[test]
    fn corrupted_python_fails_to_parse() {
        let src = "import pandas as pd\ndf = pd.read_csv('x.csv')\nprint(df)\n";
        let bad = Corruptor::new(3).corrupt_py(src);
        assert!(lids_py::analyze(&bad).is_err());
        assert!(lids_py::analyze(src).is_ok());
    }

    #[test]
    fn lenient_mode_still_accepts_ragged_and_nul() {
        for kind in [FaultKind::RaggedRow, FaultKind::NulBytes] {
            let bad = Corruptor::new(5).corrupt_csv(CSV.as_bytes(), kind);
            assert!(parse_csv_bytes("t", &bad, CsvMode::Lenient).is_ok(), "{kind}");
        }
    }
}
