//! SPARQL evaluator edge cases beyond the unit suite: nested OPTIONALs,
//! filters inside optional groups, unions with shared variables, and
//! aggregate/modifier interactions.

use lids_rdf::{GraphName, Quad, QuadStore, Term};
use lids_sparql::query;

fn store() -> QuadStore {
    let mut s = QuadStore::new();
    let t = |a: &str, p: &str, b: &str| Quad::new(Term::iri(a), Term::iri(p), Term::iri(b));
    s.insert(&t("a", "knows", "b"));
    s.insert(&t("b", "knows", "c"));
    s.insert(&t("c", "knows", "a"));
    s.insert(&Quad::new(Term::iri("a"), Term::iri("age"), Term::integer(30)));
    s.insert(&Quad::new(Term::iri("b"), Term::iri("age"), Term::integer(40)));
    s.insert(&Quad::new(Term::iri("a"), Term::iri("name"), Term::string("alice")));
    s
}

#[test]
fn nested_optionals() {
    let s = store();
    let r = query(
        &s,
        "SELECT ?x ?age ?name WHERE { \
            ?x <knows> ?y . \
            OPTIONAL { ?x <age> ?age . OPTIONAL { ?x <name> ?name . } } \
         } ORDER BY ?x",
    )
    .unwrap();
    assert_eq!(r.len(), 3);
    // a: age + name; b: age only; c: neither
    assert_eq!(r.get_f64(0, "age"), Some(30.0));
    assert_eq!(r.get_str(0, "name").as_deref(), Some("alice"));
    assert_eq!(r.get_f64(1, "age"), Some(40.0));
    assert!(r.get(1, "name").is_none());
    assert!(r.get(2, "age").is_none());
    assert!(r.get(2, "name").is_none());
}

#[test]
fn filter_inside_optional_scopes_locally() {
    let s = store();
    // the filter only constrains the optional part: rows keep their base
    // bindings even when the optional fails the filter
    let r = query(
        &s,
        "SELECT ?x ?age WHERE { \
            ?x <knows> ?y . \
            OPTIONAL { ?x <age> ?age . FILTER(?age > 35) } \
         } ORDER BY ?x",
    )
    .unwrap();
    assert_eq!(r.len(), 3);
    assert!(r.get(0, "age").is_none()); // a's age 30 fails the filter
    assert_eq!(r.get_f64(1, "age"), Some(40.0));
}

#[test]
fn union_branches_share_variables() {
    let s = store();
    let r = query(
        &s,
        "SELECT ?x ?v WHERE { \
            ?x <knows> ?y . \
            { ?x <age> ?v . } UNION { ?x <name> ?v . } \
         } ORDER BY ?x",
    )
    .unwrap();
    // a: age + name = 2 rows; b: age = 1 row; c: none
    assert_eq!(r.len(), 3);
}

#[test]
fn aggregates_with_order_and_offset() {
    let s = store();
    let r = query(
        &s,
        "SELECT ?x (COUNT(?y) AS ?n) WHERE { ?x <knows> ?y . } \
         GROUP BY ?x ORDER BY ?x LIMIT 2 OFFSET 1",
    )
    .unwrap();
    assert_eq!(r.len(), 2);
    assert_eq!(r.get_str(0, "x").as_deref(), Some("b"));
}

#[test]
fn cyclic_joins_terminate() {
    let s = store();
    // the knows-relation is a 3-cycle; a triangle query finds it 3 times
    let r = query(
        &s,
        "SELECT ?a ?b ?c WHERE { ?a <knows> ?b . ?b <knows> ?c . ?c <knows> ?a . }",
    )
    .unwrap();
    assert_eq!(r.len(), 3);
}

#[test]
fn graph_and_default_interplay() {
    let mut s = store();
    s.insert(&Quad::in_graph(
        Term::iri("stmt"),
        Term::iri("calls"),
        Term::iri("lib"),
        GraphName::named("pipe1"),
    ));
    // join a named-graph pattern with a default-graph pattern
    s.insert(&Quad::new(Term::iri("pipe1"), Term::iri("votes"), Term::integer(9)));
    let r = query(
        &s,
        "SELECT ?g ?v WHERE { GRAPH ?g { ?s <calls> ?lib . } ?g <votes> ?v . }",
    )
    .unwrap();
    assert_eq!(r.len(), 1);
    assert_eq!(r.get_f64(0, "v"), Some(9.0));
}

#[test]
fn empty_group_yields_unit_solution() {
    let s = store();
    let r = query(&s, "SELECT (COUNT(*) AS ?n) WHERE { }").unwrap();
    // empty BGP = one empty solution; COUNT(*) = 1
    assert_eq!(r.get_f64(0, "n"), Some(1.0));
}

#[test]
fn select_star_projects_all_variables() {
    let s = store();
    let r = query(&s, "SELECT * WHERE { ?x <knows> ?y . }").unwrap();
    assert_eq!(r.columns, vec!["x".to_string(), "y".to_string()]);
    assert_eq!(r.len(), 3);
}

#[test]
fn ask_with_filter() {
    let s = store();
    assert!(query(&s, "ASK { ?x <age> ?a . FILTER(?a > 35) }").unwrap().ask.unwrap());
    assert!(!query(&s, "ASK { ?x <age> ?a . FILTER(?a > 99) }").unwrap().ask.unwrap());
}

#[test]
fn numeric_comparison_across_datatypes() {
    let mut s = store();
    s.insert(&Quad::new(Term::iri("d"), Term::iri("age"), Term::double(35.5)));
    // integer and double literals compare numerically
    let r = query(&s, "SELECT ?x WHERE { ?x <age> ?a . FILTER(?a >= 35.5) } ORDER BY ?x").unwrap();
    assert_eq!(r.len(), 2); // b (40 int) and d (35.5 double)
}
