//! Differential property tests: the encoded evaluator must agree with the
//! naive decoded reference engine on randomly generated stores and queries.
//!
//! Two comparisons per case:
//! - with join reordering off and parallelism disabled, the encoded engine
//!   drives the same index scans in the same textual order as the
//!   reference, so rows must match *in order*;
//! - with reordering on and an aggressive parallel threshold, join order
//!   (and thus row order) may differ, so rows must match as a multiset.
//!
//! Queries avoid DISTINCT/ORDER BY/LIMIT/OFFSET so the raw row stream is
//! comparable; those modifiers run in code shared by both engines anyway.

use proptest::prelude::*;

use lids_rdf::{GraphName, Quad, QuadStore, Term};
use lids_sparql::{evaluate_with, parse_query, reference, EvalOptions, Solutions};

/// `(subject, predicate, object-kind, object-index, graph)` — rendered as
/// `n{s} p{p} (n{oi} | int oi)` in the default graph or `g{g}`.
type QuadSpec = (u8, u8, u8, u8, u8);

/// `(a, b, score)` — rendered as `<< n{a} <sim> n{b} >> <score> {score}`.
type EdgeSpec = (u8, u8, u8);

/// `(subject, predicate, object)` node selectors for one triple pattern.
#[derive(Debug, Clone, Copy)]
struct TripleSpec {
    s: (u8, u8),
    p: (u8, u8),
    o: (u8, u8),
}

#[derive(Debug, Clone)]
enum ElemSpec {
    Triple(TripleSpec),
    /// Quoted-subject annotation pattern; `a`/`b` select const-or-var
    /// inner nodes, the score is always a variable.
    Quoted(u8, u8, u8),
    Optional(TripleSpec),
    /// `(kind, var, operand)`.
    Filter(u8, u8, u8),
    /// `(scope selector, inner pattern)`.
    Graph(u8, TripleSpec),
}

fn build_store(quads: &[QuadSpec], edges: &[EdgeSpec]) -> QuadStore {
    let mut store = QuadStore::new();
    for &(s, p, okind, oidx, g) in quads {
        let object = if okind == 0 {
            Term::iri(format!("n{}", oidx % 6))
        } else {
            Term::integer(i64::from(oidx % 6))
        };
        let graph = match g % 3 {
            0 => GraphName::Default,
            gi => GraphName::named(format!("g{gi}")),
        };
        store.insert(&Quad::in_graph(
            Term::iri(format!("n{}", s % 6)),
            Term::iri(format!("p{}", p % 4)),
            object,
            graph,
        ));
    }
    for &(a, b, v) in edges {
        store.insert(&Quad::new(
            Term::quoted(
                Term::iri(format!("n{}", a % 6)),
                Term::iri("sim"),
                Term::iri(format!("n{}", b % 6)),
            ),
            Term::iri("score"),
            Term::integer(i64::from(v % 8)),
        ));
    }
    store
}

fn var(idx: u8) -> String {
    format!("?v{}", idx % 4)
}

fn subject_node((kind, idx): (u8, u8)) -> String {
    match kind % 3 {
        0 | 1 => var(idx),
        _ => format!("<n{}>", idx % 6),
    }
}

fn predicate_node((kind, idx): (u8, u8)) -> String {
    match kind % 3 {
        0 | 1 => format!("<p{}>", idx % 4),
        _ => var(idx),
    }
}

fn object_node((kind, idx): (u8, u8)) -> String {
    match kind % 4 {
        0 | 1 => var(idx),
        2 => format!("<n{}>", idx % 6),
        _ => format!("{}", idx % 6),
    }
}

/// Const-or-var selector for quoted inner nodes: 0..6 a constant, 6..12 a
/// variable.
fn inner_node(sel: u8) -> String {
    let sel = sel % 12;
    if sel < 6 {
        format!("<n{sel}>")
    } else {
        var(sel)
    }
}

fn render_triple(t: &TripleSpec) -> String {
    format!(
        "{} {} {} .",
        subject_node(t.s),
        predicate_node(t.p),
        object_node(t.o)
    )
}

fn render_query(elems: &[ElemSpec]) -> String {
    let mut body = String::new();
    for elem in elems {
        let part = match elem {
            ElemSpec::Triple(t) => render_triple(t),
            ElemSpec::Quoted(a, b, v) => format!(
                "<< {} <sim> {} >> <score> {} .",
                inner_node(*a),
                inner_node(*b),
                var(*v)
            ),
            ElemSpec::Optional(t) => format!("OPTIONAL {{ {} }}", render_triple(t)),
            ElemSpec::Filter(kind, x, k) => match kind % 4 {
                0 => format!("FILTER({} = {})", var(*x), var(*k)),
                1 => format!("FILTER({} > {})", var(*x), k % 8),
                2 => format!("FILTER(BOUND({}))", var(*x)),
                _ => format!("FILTER(CONTAINS(STR({}), \"{}\"))", var(*x), k % 6),
            },
            ElemSpec::Graph(sel, t) => {
                let scope = match sel % 6 {
                    0 => "<g1>".to_string(),
                    1 => "<g2>".to_string(),
                    2 => "<g9>".to_string(), // no such graph
                    s => var(s - 3),
                };
                format!("GRAPH {} {{ {} }}", scope, render_triple(t))
            }
        };
        body.push_str(&part);
        body.push(' ');
    }
    format!("SELECT * WHERE {{ {body}}}")
}

fn triple_spec() -> impl Strategy<Value = TripleSpec> {
    ((0..3u8, 0..8u8), (0..3u8, 0..8u8), (0..4u8, 0..8u8))
        .prop_map(|(s, p, o)| TripleSpec { s, p, o })
}

fn elem_spec() -> impl Strategy<Value = ElemSpec> {
    prop_oneof![
        5 => triple_spec().prop_map(ElemSpec::Triple),
        1 => (0..12u8, 0..12u8, 0..4u8).prop_map(|(a, b, v)| ElemSpec::Quoted(a, b, v)),
        2 => triple_spec().prop_map(ElemSpec::Optional),
        2 => (0..4u8, 0..4u8, 0..8u8).prop_map(|(kind, x, k)| ElemSpec::Filter(kind, x, k)),
        1 => (0..6u8, triple_spec()).prop_map(|(sel, t)| ElemSpec::Graph(sel, t)),
    ]
}

fn sorted_rows(solutions: &Solutions) -> Vec<String> {
    let mut rows: Vec<String> = solutions.rows.iter().map(|r| format!("{r:?}")).collect();
    rows.sort();
    rows
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]
    #[test]
    fn encoded_agrees_with_reference(
        quads in proptest::collection::vec((0..6u8, 0..4u8, 0..2u8, 0..8u8, 0..3u8), 0..28),
        edges in proptest::collection::vec((0..8u8, 0..8u8, 0..8u8), 0..4),
        elems in proptest::collection::vec(elem_spec(), 1..5),
    ) {
        let store = build_store(&quads, &edges);
        let text = render_query(&elems);
        let query = parse_query(&text).unwrap();

        let reference = reference::evaluate(&store, &query).unwrap();

        // Textual join order, no parallelism, no vectorization: identical
        // scans, identical rows.
        let naive = evaluate_with(
            &store,
            &query,
            EvalOptions { reorder_joins: false, parallel_threshold: usize::MAX, vectorize: false, ..EvalOptions::default() },
        )
        .unwrap();
        prop_assert_eq!(&naive.rows, &reference.rows, "textual-order rows differ for {}", &text);

        // Cardinality ordering + parallel chunks + vectorized operators:
        // same multiset of rows.
        let optimized = evaluate_with(
            &store,
            &query,
            EvalOptions { reorder_joins: true, parallel_threshold: 2, vectorize: true, ..EvalOptions::default() },
        )
        .unwrap();
        prop_assert_eq!(
            sorted_rows(&optimized),
            sorted_rows(&reference),
            "row multiset differs for {}",
            &text
        );
    }
}

// ---------------------------------------------------------------- stars
//
// The vectorized engine special-cases multi-pattern star shapes
// (leapfrog intersection) and large batches (sort-merge), so this
// second suite biases generation toward exactly those: star BGPs over a
// shared subject variable, duplicate-heavy stores (every quad inserted
// in several named graphs so subjects carry many quads per predicate),
// and OPTIONAL blocks layered over the star.

/// One star leg: `?s <p{p}> (const | ?var)`.
type LegSpec = (u8, u8, u8);

fn render_star(legs: &[LegSpec], tail: &Option<TripleSpec>, optional: &Option<LegSpec>) -> String {
    let mut body = String::new();
    for &(p, okind, oidx) in legs {
        let object = if okind % 3 == 0 {
            format!("<n{}>", oidx % 6)
        } else {
            // distinct object variables per predicate keep the star
            // leapfrog-eligible; colliding ones exercise the fallback
            var(oidx)
        };
        body.push_str(&format!("?s <p{}> {} . ", p % 4, object));
    }
    if let Some(t) = tail {
        body.push_str(&render_triple(t));
        body.push(' ');
    }
    if let Some(&(p, okind, oidx)) = optional.as_ref() {
        let object = if okind % 2 == 0 {
            format!("<n{}>", oidx % 6)
        } else {
            var(oidx)
        };
        body.push_str(&format!("OPTIONAL {{ ?s <p{}> {} }} ", p % 4, object));
    }
    format!("SELECT * WHERE {{ {body}}}")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]
    #[test]
    fn vectorized_star_shapes_agree_with_reference(
        quads in proptest::collection::vec((0..6u8, 0..4u8, 0..2u8, 0..8u8, 0..3u8), 4..40),
        dup_graphs in 1..4u8,
        legs in proptest::collection::vec((0..4u8, 0..3u8, 0..8u8), 2..5),
        tail_sel in (0..2u8, triple_spec()),
        opt_sel in (0..2u8, (0..4u8, 0..2u8, 0..8u8)),
    ) {
        let tail = (tail_sel.0 == 1).then_some(tail_sel.1);
        let optional = (opt_sel.0 == 1).then_some(opt_sel.1);
        // duplicate-heavy store: the same triples across several named
        // graphs, so each subject holds runs of quads per predicate
        let mut store = build_store(&quads, &[]);
        for g in 0..dup_graphs {
            for &(s, p, okind, oidx, _) in &quads {
                let object = if okind == 0 {
                    Term::iri(format!("n{}", oidx % 6))
                } else {
                    Term::integer(i64::from(oidx % 6))
                };
                store.insert(&Quad::in_graph(
                    Term::iri(format!("n{}", s % 6)),
                    Term::iri(format!("p{}", p % 4)),
                    object,
                    GraphName::named(format!("dup{g}")),
                ));
            }
        }
        let text = render_star(&legs, &tail, &optional);
        let query = parse_query(&text).unwrap();

        let reference = reference::evaluate(&store, &query).unwrap();
        let vectorized = evaluate_with(
            &store,
            &query,
            EvalOptions { reorder_joins: true, parallel_threshold: usize::MAX, vectorize: true, ..EvalOptions::default() },
        )
        .unwrap();
        prop_assert_eq!(
            sorted_rows(&vectorized),
            sorted_rows(&reference),
            "star row multiset differs for {}",
            &text
        );
    }
}
