//! Term-level expression evaluation, shared by both evaluators.
//!
//! Expressions always operate on decoded [`Term`]s — FILTER needs lexical
//! values and numeric coercions that ids cannot answer. The encoded
//! evaluator therefore hands this module a *resolver* closure that decodes
//! a variable on demand, so only variables an expression actually touches
//! are ever materialised.
//!
//! `Err(())` models SPARQL's expression errors (unbound variables, type
//! mismatches), which FILTER treats as false.

use std::cmp::Ordering;

use lids_rdf::Term;

use crate::ast::{BinOp, Expr, Func, VarId};
use crate::results::term_text;

/// Evaluate an expression, resolving variables through `resolver`.
pub(crate) fn eval_expr<R>(resolver: &R, expr: &Expr) -> Result<Term, ()>
where
    R: Fn(VarId) -> Option<Term>,
{
    match expr {
        Expr::Var(v) => resolver(*v).ok_or(()),
        Expr::Const(t) => Ok(t.clone()),
        Expr::Not(e) => {
            let b = effective_bool(Some(&eval_expr(resolver, e)?)).ok_or(())?;
            Ok(Term::boolean(!b))
        }
        Expr::Neg(e) => {
            let v = numeric(&eval_expr(resolver, e)?).ok_or(())?;
            Ok(Term::double(-v))
        }
        Expr::Binary(op, l, r) => eval_binary(resolver, *op, l, r),
        Expr::Call(func, args) => eval_call(resolver, *func, args),
    }
}

/// True when the expression evaluates to an effective boolean true; errors
/// count as false (the FILTER rule).
pub fn filter_passes<R>(resolver: &R, expr: &Expr) -> bool
where
    R: Fn(VarId) -> Option<Term>,
{
    effective_bool(eval_expr(resolver, expr).ok().as_ref()).unwrap_or(false)
}

fn eval_binary<R>(resolver: &R, op: BinOp, l: &Expr, r: &Expr) -> Result<Term, ()>
where
    R: Fn(VarId) -> Option<Term>,
{
    match op {
        BinOp::And => {
            let lv = effective_bool(eval_expr(resolver, l).as_ref().ok()).ok_or(())?;
            if !lv {
                return Ok(Term::boolean(false));
            }
            let rv = effective_bool(eval_expr(resolver, r).as_ref().ok()).ok_or(())?;
            Ok(Term::boolean(rv))
        }
        BinOp::Or => {
            let lv = effective_bool(eval_expr(resolver, l).as_ref().ok());
            if lv == Some(true) {
                return Ok(Term::boolean(true));
            }
            let rv = effective_bool(eval_expr(resolver, r).as_ref().ok());
            match (lv, rv) {
                (_, Some(true)) => Ok(Term::boolean(true)),
                (Some(false), Some(false)) => Ok(Term::boolean(false)),
                _ => Err(()),
            }
        }
        _ => {
            let lv = eval_expr(resolver, l);
            let rv = eval_expr(resolver, r);
            combine_binary(op, lv, rv)
        }
    }
}

pub(crate) fn combine_binary(
    op: BinOp,
    lv: Result<Term, ()>,
    rv: Result<Term, ()>,
) -> Result<Term, ()> {
    let lv = lv?;
    let rv = rv?;
    match op {
        BinOp::Add | BinOp::Sub | BinOp::Mul | BinOp::Div => {
            let a = numeric(&lv).ok_or(())?;
            let b = numeric(&rv).ok_or(())?;
            let out = match op {
                BinOp::Add => a + b,
                BinOp::Sub => a - b,
                BinOp::Mul => a * b,
                BinOp::Div => {
                    if b == 0.0 {
                        return Err(());
                    }
                    a / b
                }
                _ => unreachable!(),
            };
            Ok(Term::double(out))
        }
        BinOp::Eq => Ok(Term::boolean(terms_equal(&lv, &rv))),
        BinOp::Ne => Ok(Term::boolean(!terms_equal(&lv, &rv))),
        BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge => {
            let ord = compare_terms(Some(&lv), Some(&rv));
            Ok(Term::boolean(match op {
                BinOp::Lt => ord == Ordering::Less,
                BinOp::Le => ord != Ordering::Greater,
                BinOp::Gt => ord == Ordering::Greater,
                BinOp::Ge => ord != Ordering::Less,
                _ => unreachable!(),
            }))
        }
        BinOp::And | BinOp::Or => unreachable!("handled by eval_binary"),
    }
}

fn eval_call<R>(resolver: &R, func: Func, args: &[Expr]) -> Result<Term, ()>
where
    R: Fn(VarId) -> Option<Term>,
{
    match func {
        Func::Bound => match args.first() {
            Some(Expr::Var(v)) => Ok(Term::boolean(resolver(*v).is_some())),
            _ => Err(()),
        },
        Func::Str => {
            let t = eval_expr(resolver, args.first().ok_or(())?)?;
            Ok(Term::string(term_text(&t)))
        }
        Func::LCase | Func::UCase => {
            let t = eval_expr(resolver, args.first().ok_or(())?)?;
            let s = string_of(&t).ok_or(())?;
            Ok(Term::string(if func == Func::LCase {
                s.to_lowercase()
            } else {
                s.to_uppercase()
            }))
        }
        Func::Contains | Func::StrStarts => {
            if args.len() != 2 {
                return Err(());
            }
            let hay = string_of(&eval_expr(resolver, &args[0])?).ok_or(())?;
            let needle = string_of(&eval_expr(resolver, &args[1])?).ok_or(())?;
            Ok(Term::boolean(if func == Func::Contains {
                hay.contains(&needle)
            } else {
                hay.starts_with(&needle)
            }))
        }
        Func::Regex => {
            if args.len() != 2 {
                return Err(());
            }
            let hay = string_of(&eval_expr(resolver, &args[0])?).ok_or(())?;
            let pat = string_of(&eval_expr(resolver, &args[1])?).ok_or(())?;
            Ok(Term::boolean(simple_regex(&hay, &pat)))
        }
    }
}

pub(crate) fn string_of(t: &Term) -> Option<String> {
    match t {
        Term::Literal(l) => Some(l.lexical.clone()),
        Term::Iri(i) => Some(i.clone()),
        _ => None,
    }
}

pub(crate) fn numeric(t: &Term) -> Option<f64> {
    t.as_literal().and_then(|l| l.as_f64())
}

pub(crate) fn terms_equal(a: &Term, b: &Term) -> bool {
    if let (Some(x), Some(y)) = (numeric(a), numeric(b)) {
        return x == y;
    }
    a == b
}

/// SPARQL-ish ordering: unbound < numbers < strings < IRIs < other.
pub(crate) fn compare_terms(a: Option<&Term>, b: Option<&Term>) -> Ordering {
    fn rank(t: Option<&Term>) -> u8 {
        match t {
            None => 0,
            Some(t) => match t {
                Term::Literal(l) if l.as_f64().is_some() => 1,
                Term::Literal(_) => 2,
                Term::Iri(_) => 3,
                _ => 4,
            },
        }
    }
    let (ra, rb) = (rank(a), rank(b));
    if ra != rb {
        return ra.cmp(&rb);
    }
    match (a, b) {
        (Some(x), Some(y)) => {
            if let (Some(nx), Some(ny)) = (numeric(x), numeric(y)) {
                nx.partial_cmp(&ny).unwrap_or(Ordering::Equal)
            } else {
                term_text(x).cmp(&term_text(y))
            }
        }
        _ => Ordering::Equal,
    }
}

/// SPARQL effective boolean value.
pub(crate) fn effective_bool(t: Option<&Term>) -> Option<bool> {
    match t? {
        Term::Literal(l) => {
            if let Some(b) = l.as_bool() {
                Some(b)
            } else if let Some(n) = l.as_f64() {
                Some(n != 0.0)
            } else {
                Some(!l.lexical.is_empty())
            }
        }
        _ => None,
    }
}

/// Tiny regex: supports `.`, `*`, `+`, `?` (postfix on single atoms), `^`,
/// `$`, and `\`-escaped literals. Enough for the label filters the KGLiDS
/// interfaces issue; unanchored by default.
pub fn simple_regex(text: &str, pattern: &str) -> bool {
    let pat: Vec<char> = pattern.chars().collect();
    let txt: Vec<char> = text.chars().collect();
    let anchored_start = pat.first() == Some(&'^');
    let p = if anchored_start { &pat[1..] } else { &pat[..] };
    if anchored_start {
        return match_here(p, &txt);
    }
    for start in 0..=txt.len() {
        if match_here(p, &txt[start..]) {
            return true;
        }
    }
    false
}

fn match_here(pat: &[char], txt: &[char]) -> bool {
    if pat.is_empty() {
        return true;
    }
    if pat == ['$'] {
        return txt.is_empty();
    }
    // atom (+ optional escape)
    let (atom, alen): (Option<char>, usize) = if pat[0] == '\\' && pat.len() > 1 {
        (Some(pat[1]), 2)
    } else if pat[0] == '.' {
        (None, 1)
    } else {
        (Some(pat[0]), 1)
    };
    let quant = pat.get(alen).copied();
    let matches_atom = |c: char| atom.is_none_or(|a| a == c);
    match quant {
        Some('*') => {
            let rest = &pat[alen + 1..];
            let mut i = 0;
            loop {
                if match_here(rest, &txt[i..]) {
                    return true;
                }
                if i < txt.len() && matches_atom(txt[i]) {
                    i += 1;
                } else {
                    return false;
                }
            }
        }
        Some('+') => {
            let rest = &pat[alen + 1..];
            if txt.is_empty() || !matches_atom(txt[0]) {
                return false;
            }
            let mut i = 1;
            loop {
                if match_here(rest, &txt[i..]) {
                    return true;
                }
                if i < txt.len() && matches_atom(txt[i]) {
                    i += 1;
                } else {
                    return false;
                }
            }
        }
        Some('?') => {
            let rest = &pat[alen + 1..];
            if !txt.is_empty() && matches_atom(txt[0]) && match_here(rest, &txt[1..]) {
                return true;
            }
            match_here(rest, txt)
        }
        _ => {
            if !txt.is_empty() && matches_atom(txt[0]) {
                match_here(&pat[alen..], &txt[1..])
            } else {
                false
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn simple_regex_features() {
        assert!(simple_regex("hello", "ell"));
        assert!(simple_regex("hello", "^hel"));
        assert!(simple_regex("hello", "o$"));
        assert!(!simple_regex("hello", "^ello"));
        assert!(simple_regex("aaab", "a+b"));
        assert!(simple_regex("ab", "a.*b"));
        assert!(simple_regex("ab", "ax?b"));
        assert!(simple_regex("a.b", "a\\.b"));
        assert!(!simple_regex("axb", "a\\.b"));
    }
}
