//! Solution modifiers shared by both evaluators: projection, GROUP BY /
//! aggregates, ORDER BY, DISTINCT, OFFSET/LIMIT.
//!
//! Operates on fully decoded rows — this is the boundary where the encoded
//! evaluator materialises [`Term`]s, and the only place the solution
//! modifiers need lexical values.

use std::cmp::Ordering;
use std::collections::HashSet;

use lids_rdf::Term;

use crate::ast::*;
use crate::expr::{compare_terms, eval_expr};
use crate::results::{Solutions, SparqlError};

/// A decoded partial solution: one optional term per query variable.
pub(crate) type Binding = Vec<Option<Term>>;

pub(crate) fn project(
    query: &Query,
    select: &SelectQuery,
    bindings: Vec<Binding>,
) -> Result<Solutions, SparqlError> {
    let items: Vec<SelectItem> = match &select.projection {
        Projection::Star => (0..query.variables.len())
            .map(|i| SelectItem::Var(VarId(i as u16)))
            .collect(),
        Projection::Items(items) => items.clone(),
    };
    let has_aggregate = items
        .iter()
        .any(|i| matches!(i, SelectItem::Aggregate { .. }));

    let columns: Vec<String> = items
        .iter()
        .map(|i| match i {
            SelectItem::Var(v) | SelectItem::Aggregate { alias: v, .. } => {
                query.variables[v.0 as usize].clone()
            }
        })
        .collect();

    let mut rows: Vec<Vec<Option<Term>>> = if has_aggregate || !select.group_by.is_empty() {
        aggregate_rows(select, &items, bindings)?
    } else {
        bindings
            .iter()
            .map(|b| {
                items
                    .iter()
                    .map(|item| match item {
                        SelectItem::Var(v) => b[v.0 as usize].clone(),
                        SelectItem::Aggregate { .. } => unreachable!(),
                    })
                    .collect()
            })
            .collect()
    };

    // ORDER BY applies to projected rows; sort keys resolve variables
    // through the projection's column mapping.
    if !select.order_by.is_empty() {
        let col_of_var: Vec<Option<usize>> = (0..query.variables.len())
            .map(|vi| {
                items.iter().position(|it| match it {
                    SelectItem::Var(v) | SelectItem::Aggregate { alias: v, .. } => {
                        v.0 as usize == vi
                    }
                })
            })
            .collect();
        fn resolver<'r>(
            row: &'r [Option<Term>],
            col_of_var: &'r [Option<usize>],
        ) -> impl Fn(VarId) -> Option<Term> + 'r {
            move |v: VarId| {
                col_of_var
                    .get(v.0 as usize)
                    .copied()
                    .flatten()
                    .and_then(|c| row[c].clone())
            }
        }
        rows.sort_by(|a, b| {
            for key in &select.order_by {
                let va = eval_expr(&resolver(a, &col_of_var), &key.expr);
                let vb = eval_expr(&resolver(b, &col_of_var), &key.expr);
                let ord = compare_terms(va.as_ref().ok(), vb.as_ref().ok());
                let ord = if key.descending { ord.reverse() } else { ord };
                if ord != Ordering::Equal {
                    return ord;
                }
            }
            Ordering::Equal
        });
    }

    if select.distinct {
        let mut seen = HashSet::new();
        rows.retain(|r| seen.insert(format!("{r:?}")));
    }

    let offset = select.offset.unwrap_or(0);
    if offset > 0 {
        rows.drain(..offset.min(rows.len()));
    }
    if let Some(limit) = select.limit {
        rows.truncate(limit);
    }

    Ok(Solutions { columns, rows, ask: None, truncated: false })
}

fn aggregate_rows(
    select: &SelectQuery,
    items: &[SelectItem],
    bindings: Vec<Binding>,
) -> Result<Vec<Vec<Option<Term>>>, SparqlError> {
    use std::collections::BTreeMap;
    // Group key: rendered group-by values (terms compare via Debug ordering;
    // BTreeMap keeps output deterministic).
    let mut groups: BTreeMap<String, (Binding, Vec<Binding>)> = BTreeMap::new();
    for b in bindings {
        let key: String = select
            .group_by
            .iter()
            .map(|v| format!("{:?}|", b[v.0 as usize]))
            .collect();
        groups
            .entry(key)
            .or_insert_with(|| (b.clone(), Vec::new()))
            .1
            .push(b);
    }
    // With no GROUP BY but an aggregate: a single group over everything.
    if groups.is_empty() {
        // no solutions: aggregates over the empty group (COUNT = 0)
        let row = items
            .iter()
            .map(|item| match item {
                SelectItem::Aggregate { agg: Aggregate::Count { .. }, .. } => {
                    Some(Term::integer(0))
                }
                _ => None,
            })
            .collect();
        return Ok(vec![row]);
    }

    let mut rows = Vec::with_capacity(groups.len());
    for (_, (representative, members)) in groups {
        let row = items
            .iter()
            .map(|item| match item {
                SelectItem::Var(v) => representative[v.0 as usize].clone(),
                SelectItem::Aggregate { agg, .. } => eval_aggregate(agg, &members),
            })
            .collect();
        rows.push(row);
    }
    Ok(rows)
}

fn eval_aggregate(agg: &Aggregate, members: &[Binding]) -> Option<Term> {
    match agg {
        Aggregate::Count { distinct, var } => {
            let n = match var {
                None => members.len(),
                Some(v) => {
                    let iter = members.iter().filter_map(|b| b[v.0 as usize].as_ref());
                    if *distinct {
                        iter.collect::<HashSet<_>>().len()
                    } else {
                        iter.count()
                    }
                }
            };
            Some(Term::integer(n as i64))
        }
        Aggregate::Sum(v) | Aggregate::Avg(v) => {
            let values: Vec<f64> = members
                .iter()
                .filter_map(|b| b[v.0 as usize].as_ref())
                .filter_map(|t| t.as_literal().and_then(|l| l.as_f64()))
                .collect();
            if values.is_empty() {
                return Some(Term::double(0.0));
            }
            let sum: f64 = values.iter().sum();
            Some(Term::double(if matches!(agg, Aggregate::Avg(_)) {
                sum / values.len() as f64
            } else {
                sum
            }))
        }
        Aggregate::Min(v) | Aggregate::Max(v) => {
            let mut best: Option<&Term> = None;
            for b in members {
                if let Some(t) = b[v.0 as usize].as_ref() {
                    best = Some(match best {
                        None => t,
                        Some(cur) => {
                            let ord = compare_terms(Some(t), Some(cur));
                            let take = if matches!(agg, Aggregate::Min(_)) {
                                ord == Ordering::Less
                            } else {
                                ord == Ordering::Greater
                            };
                            if take {
                                t
                            } else {
                                cur
                            }
                        }
                    });
                }
            }
            best.cloned()
        }
    }
}

/// Variables the solution modifiers can observe: projected variables,
/// aggregate inputs, GROUP BY keys, and ORDER BY expression variables.
/// The encoded evaluator decodes exactly these slots.
pub(crate) fn used_variables(query: &Query, select: &SelectQuery) -> Vec<bool> {
    let nvars = query.variables.len();
    let mut used = vec![false; nvars];
    match &select.projection {
        Projection::Star => used.iter_mut().for_each(|u| *u = true),
        Projection::Items(items) => {
            for item in items {
                match item {
                    SelectItem::Var(v) => used[v.0 as usize] = true,
                    SelectItem::Aggregate { agg, .. } => match agg {
                        Aggregate::Count { var, .. } => {
                            if let Some(v) = var {
                                used[v.0 as usize] = true;
                            }
                        }
                        Aggregate::Sum(v)
                        | Aggregate::Avg(v)
                        | Aggregate::Min(v)
                        | Aggregate::Max(v) => used[v.0 as usize] = true,
                    },
                }
            }
        }
    }
    for v in &select.group_by {
        used[v.0 as usize] = true;
    }
    for key in &select.order_by {
        collect_expr_vars(&key.expr, &mut used);
    }
    used
}

fn collect_expr_vars(expr: &Expr, used: &mut [bool]) {
    match expr {
        Expr::Var(v) => used[v.0 as usize] = true,
        Expr::Const(_) => {}
        Expr::Not(e) | Expr::Neg(e) => collect_expr_vars(e, used),
        Expr::Binary(_, l, r) => {
            collect_expr_vars(l, used);
            collect_expr_vars(r, used);
        }
        Expr::Call(_, args) => {
            for a in args {
                collect_expr_vars(a, used);
            }
        }
    }
}
