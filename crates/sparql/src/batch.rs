//! Columnar binding batches and vectorized join operators.
//!
//! The row engine in [`crate::eval`] extends one `Vec<Option<TermId>>`
//! at a time, re-planning an index scan and cloning the binding for
//! every candidate quad. This module replaces that hot path with
//! *batch-at-a-time* execution over a struct-of-arrays binding table
//! ([`Batch`]): one `Vec<u32>` column per query variable, unbound slots
//! holding the [`UNBOUND`] sentinel.
//!
//! Three operators, selected per pattern:
//! - **leapfrog** — worst-case-optimal star intersection for the
//!   root-level multi-pattern star shapes that dominate discovery
//!   queries: all patterns sharing one subject variable advance
//!   seekable [`RunCursor`]s in lockstep, so subjects failing any
//!   pattern are skipped without enumerating a single join row.
//! - **merge** — sort-merge join for batches of at least [`MERGE_MIN`]
//!   rows with a join key that lands inside an index prefix: the batch
//!   is sorted by the key column and one forward cursor sweeps the
//!   sorted run, scanning each distinct key's range exactly once
//!   (galloping over the gaps) instead of once per row.
//! - **probe** — per-row index probe (the row engine's scan, emitting
//!   into columns); the fallback for small batches, keyless patterns,
//!   and mixed-boundness columns.
//!
//! Operator choice is recorded per pattern in the explain
//! instrumentation and counted in [`ExecStats`]. Everything here is
//! gated by exact-result parity against [`crate::reference`] in the
//! differential property suite; BGP shapes the operators do not cover
//! (quoted-triple patterns, `GRAPH ?g` scopes) return `None` from
//! [`try_vectorized`] and fall back to the row engine.

use std::collections::HashSet;

use lids_rdf::{EncodedPattern, IndexOrder, RunCursor, StoreSnapshot, TermId};

use crate::ast::VarId;
use crate::eval::{
    collect_triple_vars, const_of, EncElement, EncGroup, EncNode, EncTriple, Evaluator, GraphCtx,
    IdBinding, Operator, GOVERNOR_ROW_INTERVAL,
};
use crate::results::SparqlError;

/// Sentinel marking an unbound variable slot in a batch column.
pub(crate) const UNBOUND: u32 = u32::MAX;

/// Minimum batch size for a sort-merge join; smaller batches probe
/// (sorting and cursor setup don't pay for themselves below this).
pub(crate) const MERGE_MIN: usize = 32;

// ------------------------------------------------------------------ batch

/// Columnar binding table: `cols[v][i]` is the binding of variable `v`
/// in row `i`, or [`UNBOUND`].
pub(crate) struct Batch {
    cols: Vec<Vec<u32>>,
    /// Input-row provenance for left-outer (OPTIONAL) joins: the index
    /// of the original input row each row descends from.
    prov: Option<Vec<u32>>,
    len: usize,
}

impl Batch {
    fn from_rows(rows: &[IdBinding], with_prov: bool) -> Batch {
        let nvars = rows.first().map_or(0, |r| r.len());
        let mut cols = vec![Vec::with_capacity(rows.len()); nvars];
        for row in rows {
            for (v, slot) in row.iter().enumerate() {
                cols[v].push(slot.map_or(UNBOUND, |id| id.0));
            }
        }
        let prov = with_prov.then(|| (0..rows.len() as u32).collect());
        Batch { cols, prov, len: rows.len() }
    }

    fn empty_like(&self) -> Batch {
        Batch {
            cols: vec![Vec::new(); self.cols.len()],
            prov: self.prov.as_ref().map(|_| Vec::new()),
            len: 0,
        }
    }

    fn len(&self) -> usize {
        self.len
    }

    fn get(&self, var: VarId, row: usize) -> u32 {
        self.cols[var.0 as usize][row]
    }

    /// Append a copy of `src` row `i`, with `updates` overwriting the
    /// named variable slots.
    fn push_row(&mut self, src: &Batch, i: usize, updates: &[(VarId, u32)]) {
        for (v, col) in self.cols.iter_mut().enumerate() {
            let update = updates.iter().find(|(u, _)| u.0 as usize == v);
            col.push(match update {
                Some(&(_, id)) => id,
                None => src.cols[v][i],
            });
        }
        if let (Some(prov), Some(src_prov)) = (&mut self.prov, &src.prov) {
            prov.push(src_prov[i]);
        }
        self.len += 1;
    }

    /// Append a fresh row that binds only `updates` (everything else
    /// unbound). Root-star emission.
    fn push_fresh_row(&mut self, updates: &[(VarId, u32)]) {
        for (v, col) in self.cols.iter_mut().enumerate() {
            let update = updates.iter().find(|(u, _)| u.0 as usize == v);
            col.push(update.map_or(UNBOUND, |&(_, id)| id));
        }
        self.len += 1;
    }

    fn to_rows(&self) -> Vec<IdBinding> {
        (0..self.len)
            .map(|i| {
                self.cols
                    .iter()
                    .map(|col| (col[i] != UNBOUND).then(|| TermId(col[i])))
                    .collect()
            })
            .collect()
    }

    /// True for the single all-unbound row a query root starts from.
    fn is_root(&self) -> bool {
        self.len == 1 && self.cols.iter().all(|col| col[0] == UNBOUND)
    }

    /// Whether `var` is bound in every row (merge-key precondition).
    fn fully_bound(&self, var: VarId) -> bool {
        self.cols[var.0 as usize].iter().all(|&v| v != UNBOUND)
    }

    /// Logical bytes of this batch's binding table: one `u32` per
    /// column slot plus the provenance column.
    fn logical_bytes(&self) -> u64 {
        ((self.cols.len() as u64) + 1) * (self.len as u64) * 4
    }

    /// Keep only the first `cap` rows (graceful-degradation row cap).
    fn truncate(&mut self, cap: usize) {
        if self.len <= cap {
            return;
        }
        for col in &mut self.cols {
            col.truncate(cap);
        }
        if let Some(prov) = &mut self.prov {
            prov.truncate(cap);
        }
        self.len = cap;
    }
}

/// Streaming governance over a growing output batch: every
/// [`GOVERNOR_ROW_INTERVAL`] produced rows, charge the bytes accrued
/// since the last checkpoint and run a boundary check — so a cartesian
/// blowup trips the budget/deadline *while* it materializes, not after.
/// Returns `true` when the row cap is exceeded and the producer should
/// stop emitting (the caller truncates and latches the flag).
fn governed_progress(
    ev: &Evaluator<'_>,
    out: &Batch,
    since_check: &mut usize,
    charged: &mut u64,
) -> Result<bool, SparqlError> {
    if let Some(cap) = ev.options.row_cap {
        if out.len() > cap {
            return Ok(true);
        }
    }
    if ev.governor.is_some() {
        *since_check += 1;
        if *since_check >= GOVERNOR_ROW_INTERVAL {
            *since_check = 0;
            let bytes = out.logical_bytes();
            ev.charge(bytes.saturating_sub(*charged))?;
            *charged = bytes;
            ev.guard()?;
        }
    }
    Ok(false)
}

/// A run cursor wired to the governor's interrupt flag when governed,
/// so mid-gallop scans wind down as soon as a trip or cancel lands.
fn governed_cursor<'s>(ev: &Evaluator<'s>, order: IndexOrder) -> RunCursor<'s> {
    let cursor = ev.store.run_cursor(order);
    match ev.governor {
        Some(gov) => cursor.with_interrupt(gov.interrupt_flag()),
        None => cursor,
    }
}

// ------------------------------------------------------------ entry points

/// Whether the vectorized operators cover this BGP: simple nodes only
/// (no quoted-triple patterns) under a default or fixed graph scope.
fn vectorizable(patterns: &[EncTriple], ctx: GraphCtx) -> bool {
    if matches!(ctx, GraphCtx::Var(_)) {
        return false;
    }
    patterns.iter().all(|p| {
        [&p.subject, &p.predicate, &p.object]
            .into_iter()
            .all(|n| !matches!(n, EncNode::Quoted(_)))
    })
}

/// Vectorized BGP evaluation, or `None` when the shape is not covered
/// and the caller should fall back to the row engine.
pub(crate) fn try_vectorized(
    ev: &Evaluator<'_>,
    patterns: &[EncTriple],
    bindings: &[IdBinding],
    ctx: GraphCtx,
) -> Result<Option<Vec<IdBinding>>, SparqlError> {
    if patterns.is_empty() || bindings.is_empty() || !vectorizable(patterns, ctx) {
        return Ok(None);
    }
    let mut batch = Batch::from_rows(bindings, false);
    let mut done = vec![false; patterns.len()];
    let mut position = 0usize;

    // worst-case-optimal star intersection at the query root
    if batch.is_root() && matches!(ctx, GraphCtx::Default) {
        if let Some(star) = detect_star(patterns) {
            batch = leapfrog_star(ev, patterns, &star, &batch)?;
            for &idx in &star.patterns {
                done[idx] = true;
                record(ev, &patterns[idx], position, Operator::Leapfrog);
                position += 1;
            }
            if let Some(stats) = ev.stats {
                stats.count(Operator::Leapfrog);
            }
        }
    }

    batch = join_pipeline(ev, patterns, &mut done, batch, ctx, &mut position)?;
    Ok(Some(batch.to_rows()))
}

/// Vectorized left-outer join for `OPTIONAL { <single BGP> }`: joins
/// the whole batch through the inner patterns once, then restores input
/// rows that produced no extension. Returns `None` (row-engine
/// fallback) for inner groups with filters/nesting, uncovered shapes,
/// or batches too small to be worth it.
pub(crate) fn try_vectorized_optional(
    ev: &Evaluator<'_>,
    inner: &EncGroup,
    bindings: &[IdBinding],
    ctx: GraphCtx,
) -> Result<Option<Vec<IdBinding>>, SparqlError> {
    let [EncElement::Triples(patterns)] = inner.elements.as_slice() else {
        return Ok(None);
    };
    if bindings.len() < 2 || patterns.is_empty() || !vectorizable(patterns, ctx) {
        return Ok(None);
    }
    let mut done = vec![false; patterns.len()];
    let mut position = 0usize;
    let batch = Batch::from_rows(bindings, true);
    let joined = join_pipeline(ev, patterns, &mut done, batch, ctx, &mut position)?;
    // left-outer semantics: an input row with no extension survives as-is
    let mut matched = vec![false; bindings.len()];
    if let Some(prov) = &joined.prov {
        for &p in prov {
            matched[p as usize] = true;
        }
    }
    let mut rows = joined.to_rows();
    for (i, row) in bindings.iter().enumerate() {
        if !matched[i] {
            rows.push(row.clone());
        }
    }
    Ok(Some(rows))
}

/// Join every not-yet-done pattern into the batch, cheapest first
/// (same greedy cardinality rule as the row engine), choosing merge or
/// probe per step.
fn join_pipeline(
    ev: &Evaluator<'_>,
    patterns: &[EncTriple],
    done: &mut [bool],
    mut batch: Batch,
    ctx: GraphCtx,
    position: &mut usize,
) -> Result<Batch, SparqlError> {
    let graph_slot = match ctx {
        GraphCtx::Fixed(id) => Some(id),
        _ => None,
    };
    // variables bound so far, seeded from the first row (the same
    // heuristic seed the row engine's join_order uses)
    let mut bound: HashSet<VarId> = HashSet::new();
    if batch.len() > 0 {
        for v in 0..batch.cols.len() {
            if batch.cols[v][0] != UNBOUND {
                bound.insert(VarId(v as u16));
            }
        }
    }
    for (idx, pattern) in patterns.iter().enumerate() {
        if done[idx] {
            collect_triple_vars(pattern, &mut bound);
        }
    }
    loop {
        let mut best: Option<(usize, f64)> = None;
        for (idx, pattern) in patterns.iter().enumerate() {
            if done[idx] {
                continue;
            }
            let cost = if ev.options.reorder_joins {
                ev.pattern_cost(pattern, &bound, graph_slot)
            } else {
                idx as f64 // textual order
            };
            if best.is_none_or(|(_, c)| cost < c) {
                best = Some((idx, cost));
            }
        }
        let Some((idx, _)) = best else {
            break;
        };
        done[idx] = true;
        let pattern = &patterns[idx];
        if batch.len() > 0 {
            ev.guard()?;
            let (mut next, op, precharged) = execute_pattern(ev, pattern, &batch, ctx)?;
            // budget: the new binding table's logical bytes, charged
            // before the old batch is dropped (cumulative accounting);
            // the operator already charged `precharged` while producing
            ev.charge(next.logical_bytes().saturating_sub(precharged))?;
            if let Some(cap) = ev.options.row_cap {
                if next.len() > cap {
                    next.truncate(cap);
                    ev.truncated.store(true, std::sync::atomic::Ordering::Relaxed);
                }
            }
            record(ev, pattern, *position, op);
            if let Some(stats) = ev.stats {
                stats.count(op);
            }
            if let Some(instr) = ev.instr {
                instr.record_match(pattern.pid, next.len());
            }
            batch = next;
        }
        *position += 1;
        collect_triple_vars(pattern, &mut bound);
    }
    ev.guard()?;
    Ok(batch)
}

fn record(ev: &Evaluator<'_>, pattern: &EncTriple, position: usize, op: Operator) {
    if let Some(instr) = ev.instr {
        instr.record_order(pattern.pid, position);
        instr.record_operator(pattern.pid, op);
    }
}

/// Run one pattern against the batch with the best applicable operator.
fn execute_pattern(
    ev: &Evaluator<'_>,
    pattern: &EncTriple,
    batch: &Batch,
    ctx: GraphCtx,
) -> Result<(Batch, Operator, u64), SparqlError> {
    if batch.len() >= MERGE_MIN {
        if let Some(plan) = merge_plan(ev.store, pattern, batch, ctx) {
            let (out, charged) = merge_join(ev, pattern, batch, ctx, &plan)?;
            return Ok((out, Operator::Merge, charged));
        }
    }
    let (out, charged) = probe_join(ev, pattern, batch, ctx)?;
    Ok((out, Operator::Probe, charged))
}

// ------------------------------------------------------------- unification

/// Compute the variable updates joining `quad` onto row `i`, or `None`
/// when a bound position disagrees (covers repeated variables).
fn bind_updates(
    pattern: &EncTriple,
    batch: &Batch,
    i: usize,
    quad: [u32; 4],
) -> Option<Vec<(VarId, u32)>> {
    let mut updates: Vec<(VarId, u32)> = Vec::new();
    for (node, val) in [
        (&pattern.subject, quad[0]),
        (&pattern.predicate, quad[1]),
        (&pattern.object, quad[2]),
    ] {
        match node {
            EncNode::Const(c) => {
                if c.0 != val {
                    return None;
                }
            }
            EncNode::Var(v) => {
                let existing = batch.get(*v, i);
                if existing != UNBOUND {
                    if existing != val {
                        return None;
                    }
                } else {
                    match updates.iter().find(|(u, _)| u == v) {
                        Some(&(_, prev)) => {
                            if prev != val {
                                return None;
                            }
                        }
                        None => updates.push((*v, val)),
                    }
                }
            }
            // excluded by `vectorizable`
            EncNode::Quoted(_) => return None,
        }
    }
    Some(updates)
}

// ------------------------------------------------------------------- probe

/// Per-row index probe, emitting matches into fresh columns. Same scan
/// the row engine runs, minus the per-candidate binding clone.
fn probe_join(
    ev: &Evaluator<'_>,
    pattern: &EncTriple,
    batch: &Batch,
    ctx: GraphCtx,
) -> Result<(Batch, u64), SparqlError> {
    let store = ev.store;
    let graph = match ctx {
        GraphCtx::Fixed(id) => Some(id),
        _ => None,
    };
    let resolve = |node: &EncNode, i: usize| -> Option<TermId> {
        match node {
            EncNode::Const(id) => Some(*id),
            EncNode::Var(v) => {
                let val = batch.get(*v, i);
                (val != UNBOUND).then_some(TermId(val))
            }
            EncNode::Quoted(_) => None,
        }
    };
    let mut out = batch.empty_like();
    let mut since_check = 0usize;
    let mut charged = 0u64;
    'rows: for i in 0..batch.len() {
        if ev.governor.is_some() {
            since_check += 1;
            if since_check >= GOVERNOR_ROW_INTERVAL {
                since_check = 0;
                ev.guard()?;
            }
        }
        let scan = EncodedPattern {
            subject: resolve(&pattern.subject, i),
            predicate: resolve(&pattern.predicate, i),
            object: resolve(&pattern.object, i),
            graph,
        };
        for quad in store.match_ids(&scan) {
            if let Some(updates) = bind_updates(pattern, batch, i, quad) {
                out.push_row(batch, i, &updates);
                // a low-selectivity pattern (worst case: a cartesian
                // product) explodes in this inner loop — govern the
                // *output* as it grows, not just the outer sweep
                if governed_progress(ev, &out, &mut since_check, &mut charged)? {
                    break 'rows;
                }
            }
        }
    }
    Ok((out, charged))
}

// ------------------------------------------------------------------- merge

/// Where a merge join places the join key inside an index: the chosen
/// ordering, the pinned prefix (constants and the key), and any
/// constants that fall outside it (residual-filtered per key).
struct MergePlan {
    key: VarId,
    order: IndexOrder,
    /// Key-position of the join key inside the index ordering.
    key_pos: usize,
    prefix_len: usize,
    /// Constants by index key position (inside and outside the prefix).
    consts: [Option<u32>; 4],
}

/// Choose a join key and index ordering such that the pattern's
/// constants plus the key form the longest possible index prefix.
/// `None` when no pattern variable is fully bound across the batch (or
/// a candidate key repeats inside the pattern) — probe territory.
fn merge_plan(
    store: &StoreSnapshot,
    pattern: &EncTriple,
    batch: &Batch,
    ctx: GraphCtx,
) -> Option<MergePlan> {
    // constants in [s, p, o, g] slot order
    let mut slot_const: [Option<u32>; 4] = [
        const_of(&pattern.subject).map(|t| t.0),
        const_of(&pattern.predicate).map(|t| t.0),
        const_of(&pattern.object).map(|t| t.0),
        None,
    ];
    if let GraphCtx::Fixed(id) = ctx {
        slot_const[3] = Some(id.0);
    }
    let slot_var = |slot: usize| -> Option<VarId> {
        let node = match slot {
            0 => &pattern.subject,
            1 => &pattern.predicate,
            _ => &pattern.object,
        };
        match node {
            EncNode::Var(v) => Some(*v),
            _ => None,
        }
    };
    let mut best: Option<MergePlan> = None;
    for key in [slot_var(0), slot_var(1), slot_var(2)].into_iter().flatten() {
        // the key must appear in exactly one position and be bound in
        // every row of the batch
        let occurrences = (0..3).filter(|&s| slot_var(s) == Some(key)).count();
        if occurrences != 1 || !batch.fully_bound(key) {
            continue;
        }
        let key_slot = (0..3).find(|&s| slot_var(s) == Some(key)).unwrap_or(0);
        for order in IndexOrder::ALL {
            let positions = order.positions();
            // longest run of leading key positions that are constants
            // or the key itself; the key must land inside it
            let mut prefix_len = 0;
            let mut key_pos = None;
            for (pos, &slot) in positions.iter().enumerate() {
                if slot == key_slot {
                    key_pos = Some(pos);
                    prefix_len = pos + 1;
                } else if slot_const[slot].is_some() {
                    prefix_len = pos + 1;
                } else {
                    break;
                }
            }
            let Some(key_pos) = key_pos else {
                continue;
            };
            if key_pos >= prefix_len {
                continue;
            }
            let mut consts = [None; 4];
            for (pos, &slot) in positions.iter().enumerate() {
                if slot != key_slot {
                    consts[pos] = slot_const[slot];
                }
            }
            let better = match &best {
                None => true,
                Some(b) => prefix_len > b.prefix_len,
            };
            if better {
                best = Some(MergePlan { key, order, key_pos, prefix_len, consts });
            }
        }
    }
    // sanity: a usable plan must exist on a real index of this store
    let _ = store;
    best
}

/// Sort-merge join: sort the batch by the key column, then sweep one
/// forward cursor over the chosen index run, scanning each distinct
/// key's range once and cross-joining it with the key's row group.
fn merge_join(
    ev: &Evaluator<'_>,
    pattern: &EncTriple,
    batch: &Batch,
    ctx: GraphCtx,
    plan: &MergePlan,
) -> Result<(Batch, u64), SparqlError> {
    let key_col = &batch.cols[plan.key.0 as usize];
    let mut rows: Vec<u32> = (0..batch.len() as u32).collect();
    rows.sort_unstable_by_key(|&i| key_col[i as usize]);

    let mut out = batch.empty_like();
    let mut cursor = governed_cursor(ev, plan.order);
    let mut scratch: Vec<[u32; 4]> = Vec::new();
    let graph = match ctx {
        GraphCtx::Fixed(id) => Some(id.0),
        _ => None,
    };
    let _ = graph; // graph constant already folded into plan.consts
    let mut g = 0usize;
    let mut groups_since_check = 0usize;
    let mut charged = 0u64;
    'sweep: while g < rows.len() {
        if ev.governor.is_some() {
            groups_since_check += 1;
            if groups_since_check >= GOVERNOR_ROW_INTERVAL {
                groups_since_check = 0;
                ev.guard()?;
            }
        }
        let key_val = key_col[rows[g] as usize];
        let mut g_end = g + 1;
        while g_end < rows.len() && key_col[rows[g_end] as usize] == key_val {
            g_end += 1;
        }
        // range bounds for this key: prefix pinned, tail open
        let mut lo = [0u32; 4];
        let mut hi = [u32::MAX; 4];
        for pos in 0..plan.prefix_len {
            let v = if pos == plan.key_pos { key_val } else { plan.consts[pos].unwrap_or(0) };
            lo[pos] = v;
            hi[pos] = v;
        }
        scratch.clear();
        cursor.seek_ge(lo);
        while let Some(k) = cursor.current() {
            if k > hi {
                break;
            }
            // residual constants outside the prefix
            let residual_ok = (plan.prefix_len..4)
                .all(|pos| plan.consts[pos].is_none_or(|v| k[pos] == v));
            if residual_ok {
                scratch.push(plan.order.decode(k));
            }
            cursor.advance();
        }
        if !scratch.is_empty() {
            for &row in &rows[g..g_end] {
                for &quad in &scratch {
                    if let Some(updates) = bind_updates(pattern, batch, row as usize, quad) {
                        out.push_row(batch, row as usize, &updates);
                        // many-to-many keys explode here: govern the
                        // output as it grows
                        if governed_progress(ev, &out, &mut groups_since_check, &mut charged)? {
                            break 'sweep;
                        }
                    }
                }
            }
        }
        g = g_end;
    }
    // a tripped governor exhausts the interrupt-wired cursor mid-sweep;
    // surface the typed error instead of a silently partial batch
    ev.guard()?;
    Ok((out, charged))
}

// ---------------------------------------------------------------- leapfrog

/// A star detected at the query root: ≥ 2 patterns sharing one subject
/// variable, with constant predicates and constant-or-distinct-variable
/// objects.
struct Star {
    subject: VarId,
    patterns: Vec<usize>,
}

/// One star pattern's contribution: predicate id plus object shape.
enum StarLeg {
    /// `?s <p> <o>` — subjects sorted at posg key position 2.
    ConstObj { p: u32, o: u32 },
    /// `?s <p> ?x` — subjects at spog key position 0, objects bound
    /// per matching quad.
    VarObj { p: u32, var: VarId },
}

fn detect_star(patterns: &[EncTriple]) -> Option<Star> {
    // count eligible patterns per subject variable
    let eligible = |p: &EncTriple, subject: VarId| -> bool {
        if !matches!(&p.subject, EncNode::Var(v) if *v == subject) {
            return false;
        }
        if !matches!(&p.predicate, EncNode::Const(_)) {
            return false;
        }
        match &p.object {
            EncNode::Const(_) => true,
            EncNode::Var(v) => *v != subject,
            EncNode::Quoted(_) => false,
        }
    };
    let mut best: Option<Star> = None;
    let mut seen: HashSet<VarId> = HashSet::new();
    for pattern in patterns {
        let EncNode::Var(subject) = &pattern.subject else {
            continue;
        };
        if !seen.insert(*subject) {
            continue;
        }
        let mut members = Vec::new();
        let mut object_vars: HashSet<VarId> = HashSet::new();
        for (idx, member) in patterns.iter().enumerate() {
            if !eligible(member, *subject) {
                continue;
            }
            // object variables must be pairwise distinct so the
            // cross-product emission never equates two of them
            if let EncNode::Var(v) = &member.object {
                if !object_vars.insert(*v) {
                    continue;
                }
            }
            members.push(idx);
        }
        if members.len() >= 2
            && best.as_ref().is_none_or(|b| members.len() > b.patterns.len())
        {
            best = Some(Star { subject: *subject, patterns: members });
        }
    }
    best
}

/// Cursor state for one star leg, advancing through subjects that
/// satisfy the leg. Forward-only; every seek strictly advances.
struct StarIter<'a> {
    leg: StarLeg,
    cursor: lids_rdf::RunCursor<'a>,
}

impl StarIter<'_> {
    /// Smallest subject `>= t` this leg matches, positioning the cursor
    /// on the subject's first quad.
    fn next_ge(&mut self, t: u32) -> Option<u32> {
        match self.leg {
            StarLeg::ConstObj { p, o } => {
                self.cursor.seek_ge([p, o, t, 0]);
                match self.cursor.current() {
                    Some(k) if k[0] == p && k[1] == o => Some(k[2]),
                    _ => None,
                }
            }
            StarLeg::VarObj { p, .. } => {
                let mut t = t;
                loop {
                    self.cursor.seek_ge([t, p, 0, 0]);
                    let k = self.cursor.current()?;
                    if k[0] == t {
                        if k[1] == p {
                            return Some(t);
                        }
                        // subject t lacks p entirely (keys >= [t,p,..]
                        // with k[0]==t have k[1] > p): next subject
                        t = t.checked_add(1)?;
                    } else {
                        // jumped to a later subject's first quad
                        t = k[0];
                        if k[1] == p {
                            return Some(t);
                        }
                        if k[1] > p {
                            t = t.checked_add(1)?;
                        }
                        // k[1] < p: re-seek [t, p, 0, 0] on this subject
                    }
                }
            }
        }
    }

    /// With the cursor on subject `t`'s first quad for this leg,
    /// collect the object binding of every matching quad (one entry per
    /// quad — graph multiplicity preserved), advancing past them.
    fn collect(&mut self, t: u32) -> Vec<u32> {
        let mut vals = Vec::new();
        match self.leg {
            StarLeg::ConstObj { p, o } => {
                while let Some(k) = self.cursor.current() {
                    if k[0] != p || k[1] != o || k[2] != t {
                        break;
                    }
                    vals.push(UNBOUND); // multiplicity only, no binding
                    self.cursor.advance();
                }
            }
            StarLeg::VarObj { p, .. } => {
                while let Some(k) = self.cursor.current() {
                    if k[0] != t || k[1] != p {
                        break;
                    }
                    vals.push(k[2]);
                    self.cursor.advance();
                }
            }
        }
        vals
    }
}

/// Leapfrog star intersection over the store's sorted runs. Every leg
/// proposes its smallest subject ≥ the current candidate; subjects all
/// legs agree on are emitted with the cross product of their per-leg
/// quads (so quad multiplicity across graphs matches the row engine).
fn leapfrog_star(
    ev: &Evaluator<'_>,
    patterns: &[EncTriple],
    star: &Star,
    batch: &Batch,
) -> Result<Batch, SparqlError> {
    let mut iters: Vec<StarIter<'_>> = star
        .patterns
        .iter()
        .map(|&idx| {
            let pattern = &patterns[idx];
            let p = const_of(&pattern.predicate).map_or(0, |t| t.0);
            match &pattern.object {
                EncNode::Const(o) => StarIter {
                    leg: StarLeg::ConstObj { p, o: o.0 },
                    cursor: governed_cursor(ev, IndexOrder::Posg),
                },
                _ => {
                    let var = match &pattern.object {
                        EncNode::Var(v) => *v,
                        _ => unreachable!("detect_star admits const or var objects"),
                    };
                    StarIter {
                        leg: StarLeg::VarObj { p, var },
                        cursor: governed_cursor(ev, IndexOrder::Spog),
                    }
                }
            }
        })
        .collect();

    let mut out = batch.empty_like();
    let mut t = 0u32;
    let mut subjects_since_check = 0usize;
    let mut charged = 0u64;
    'leapfrog: loop {
        if ev.governor.is_some() {
            subjects_since_check += 1;
            if subjects_since_check >= GOVERNOR_ROW_INTERVAL {
                subjects_since_check = 0;
                ev.guard()?;
            }
        }
        // advance all legs to agreement on t
        loop {
            let mut agreed = true;
            for iter in iters.iter_mut() {
                match iter.next_ge(t) {
                    None => break 'leapfrog,
                    Some(s) if s == t => {}
                    Some(s) => {
                        t = s;
                        agreed = false;
                    }
                }
            }
            if agreed {
                break;
            }
        }
        // emit the cross product of the per-leg quads for subject t
        let legs: Vec<Vec<u32>> = iters.iter_mut().map(|it| it.collect(t)).collect();
        if let Some(instr) = ev.instr {
            for (leg, &idx) in legs.iter().zip(&star.patterns) {
                instr.record_match(patterns[idx].pid, leg.len());
            }
        }
        let mut updates: Vec<(VarId, u32)> = vec![(star.subject, t)];
        emit_cross(&mut out, &iters, &legs, 0, &mut updates);
        // govern the accumulated output (per-subject granularity); a
        // row-cap hit truncates here because this batch does not pass
        // through the pipeline's cap site
        if governed_progress(ev, &out, &mut subjects_since_check, &mut charged)? {
            if let Some(cap) = ev.options.row_cap {
                out.truncate(cap);
                ev.truncated.store(true, std::sync::atomic::Ordering::Relaxed);
            }
            break 'leapfrog;
        }
        match t.checked_add(1) {
            Some(next) => t = next,
            None => break,
        }
    }
    // interrupted cursors exhaust silently; convert to the typed trip
    ev.guard()?;
    // the star result enters the pipeline as its base batch, so charge
    // the un-precharged remainder here
    ev.charge(out.logical_bytes().saturating_sub(charged))?;
    Ok(out)
}

/// Recursive odometer over per-leg quad lists, pushing one fresh row
/// per combination.
fn emit_cross(
    out: &mut Batch,
    iters: &[StarIter<'_>],
    legs: &[Vec<u32>],
    depth: usize,
    updates: &mut Vec<(VarId, u32)>,
) {
    if depth == legs.len() {
        out.push_fresh_row(updates);
        return;
    }
    for &val in &legs[depth] {
        let pushed = match iters[depth].leg {
            StarLeg::VarObj { var, .. } => {
                updates.push((var, val));
                true
            }
            StarLeg::ConstObj { .. } => false,
        };
        emit_cross(out, iters, legs, depth + 1, updates);
        if pushed {
            updates.pop();
        }
    }
}
