//! Naive decoded reference evaluator.
//!
//! This is the original binding-at-a-time engine: every intermediate
//! binding holds cloned [`Term`]s, patterns are matched through the store's
//! decoding [`StoreSnapshot::match_pattern`] scan, and BGPs are evaluated in
//! textual order with no join reordering. It is deliberately simple and
//! kept as the semantic oracle for the encoded evaluator — the
//! `encoded_vs_reference` property tests require the two to produce
//! identical solutions — and as the baseline arm of the query benchmarks.
//!
//! Like the encoded engine, it honours an optional [`QueryGovernor`]:
//! the row loops call a boundary check per element and per scanned
//! binding row, so even this worst-case engine terminates within a
//! deadline or budget.

use lids_exec::QueryGovernor;
use lids_rdf::{GraphName, QuadPattern, StoreSnapshot, Term};

use crate::ast::*;
use crate::expr::filter_passes;
use crate::project::{project, Binding};
use crate::results::{Solutions, SparqlError};

/// Evaluate a parsed query with the reference engine, ungoverned.
pub fn evaluate(store: &StoreSnapshot, query: &Query) -> Result<Solutions, SparqlError> {
    evaluate_governed(store, query, None)
}

/// Evaluate under an optional resource governor: row loops observe
/// deadlines, cancellation, and memory budgets at binding granularity.
pub fn evaluate_governed(
    store: &StoreSnapshot,
    query: &Query,
    governor: Option<&QueryGovernor>,
) -> Result<Solutions, SparqlError> {
    let nvars = query.variables.len();
    match &query.form {
        QueryForm::Ask(pattern) => {
            let bindings = eval_group(store, pattern, vec![vec![None; nvars]], None, governor)?;
            Ok(Solutions {
                columns: Vec::new(),
                rows: Vec::new(),
                ask: Some(!bindings.is_empty()),
                truncated: false,
            })
        }
        QueryForm::Select(select) => {
            let bindings =
                eval_group(store, &select.pattern, vec![vec![None; nvars]], None, governor)?;
            project(query, select, bindings)
        }
    }
}

/// Boundary check: a no-op when ungoverned.
fn guard(governor: Option<&QueryGovernor>) -> Result<(), SparqlError> {
    match governor {
        Some(gov) => gov.check().map_err(SparqlError::Governed),
        None => Ok(()),
    }
}

/// Logical bytes of one decoded binding row (terms are heap-heavy;
/// this deliberately over-counts relative to the encoded engine).
fn row_bytes(nvars: usize) -> u64 {
    (nvars as u64) * 48
}

fn eval_group(
    store: &StoreSnapshot,
    group: &GroupPattern,
    mut bindings: Vec<Binding>,
    graph_ctx: Option<&NodePattern>,
    governor: Option<&QueryGovernor>,
) -> Result<Vec<Binding>, SparqlError> {
    for element in &group.elements {
        if bindings.is_empty() {
            return Ok(bindings);
        }
        guard(governor)?;
        bindings = match element {
            PatternElement::Triples(patterns) => {
                let mut current = bindings;
                for pattern in patterns {
                    let mut next = Vec::new();
                    for binding in &current {
                        guard(governor)?;
                        match_one(store, pattern, binding, graph_ctx, &mut next);
                    }
                    if let Some(gov) = governor {
                        let produced = next.len() as u64;
                        gov.charge(produced * row_bytes(next.first().map_or(0, Vec::len)))
                            .map_err(SparqlError::Governed)?;
                    }
                    current = next;
                    if current.is_empty() {
                        break;
                    }
                }
                current
            }
            PatternElement::Filter(expr) => bindings
                .into_iter()
                .filter(|b| filter_passes(&|v: VarId| b[v.0 as usize].clone(), expr))
                .collect(),
            PatternElement::Optional(inner) => {
                let mut next = Vec::new();
                for binding in bindings {
                    guard(governor)?;
                    let extended =
                        eval_group(store, inner, vec![binding.clone()], graph_ctx, governor)?;
                    if extended.is_empty() {
                        next.push(binding);
                    } else {
                        next.extend(extended);
                    }
                }
                next
            }
            PatternElement::Graph(node, inner) => {
                eval_group(store, inner, bindings, Some(node), governor)?
            }
            PatternElement::Union(branches) => {
                let mut next = Vec::new();
                for branch in branches {
                    next.extend(eval_group(store, branch, bindings.clone(), graph_ctx, governor)?);
                }
                next
            }
        };
    }
    Ok(bindings)
}

/// Resolve a node pattern against a binding: a concrete term, or None (free).
fn resolve(node: &NodePattern, binding: &Binding) -> Option<Term> {
    match node {
        NodePattern::Term(t) => Some(t.clone()),
        NodePattern::Var(v) => binding[v.0 as usize].clone(),
        NodePattern::Quoted(q) => {
            let s = resolve(&q.subject, binding)?;
            let p = resolve(&q.predicate, binding)?;
            let o = resolve(&q.object, binding)?;
            Some(Term::quoted(s, p, o))
        }
    }
}

fn match_one(
    store: &StoreSnapshot,
    pattern: &TriplePattern,
    binding: &Binding,
    graph_ctx: Option<&NodePattern>,
    out: &mut Vec<Binding>,
) {
    let s = resolve(&pattern.subject, binding);
    let p = resolve(&pattern.predicate, binding);
    let o = resolve(&pattern.object, binding);

    let mut qp = QuadPattern::any();
    if let Some(t) = &s {
        qp = qp.with_subject(t.clone());
    }
    if let Some(t) = &p {
        qp = qp.with_predicate(t.clone());
    }
    if let Some(t) = &o {
        qp = qp.with_object(t.clone());
    }

    // Graph scoping
    let mut graph_var: Option<VarId> = None;
    match graph_ctx {
        None => {}
        Some(NodePattern::Term(Term::Iri(iri))) => {
            qp = qp.with_graph(GraphName::named(iri.clone()));
        }
        Some(NodePattern::Var(v)) => match &binding[v.0 as usize] {
            Some(Term::Iri(iri)) => qp = qp.with_graph(GraphName::named(iri.clone())),
            Some(_) => return,
            None => graph_var = Some(*v),
        },
        Some(_) => return,
    }

    for quad in store.match_pattern(&qp) {
        let mut candidate = binding.clone();
        if !unify(&pattern.subject, &quad.subject, &mut candidate) {
            continue;
        }
        if !unify(&pattern.predicate, &quad.predicate, &mut candidate) {
            continue;
        }
        if !unify(&pattern.object, &quad.object, &mut candidate) {
            continue;
        }
        if let Some(v) = graph_var {
            match &quad.graph {
                GraphName::Named(iri) => candidate[v.0 as usize] = Some(Term::iri(iri.clone())),
                // GRAPH ?g ranges over named graphs only
                GraphName::Default => continue,
            }
        }
        out.push(candidate);
    }
}

/// Unify a node pattern with a concrete term under a binding.
fn unify(node: &NodePattern, term: &Term, binding: &mut Binding) -> bool {
    match node {
        NodePattern::Term(t) => t == term,
        NodePattern::Var(v) => {
            let slot = &mut binding[v.0 as usize];
            match slot {
                Some(existing) => existing == term,
                None => {
                    *slot = Some(term.clone());
                    true
                }
            }
        }
        NodePattern::Quoted(q) => match term {
            Term::Quoted(t) => {
                unify(&q.subject, &t.subject, binding)
                    && unify(&q.predicate, &t.predicate, binding)
                    && unify(&q.object, &t.object, binding)
            }
            _ => false,
        },
    }
}
