//! Query plan reports for instrumented evaluation.
//!
//! [`crate::evaluate_explained`] runs the encoded evaluator with
//! per-pattern atomic counters and folds them into an
//! [`ExplainReport`]: for every triple pattern the plan shows the
//! store's `estimate_pattern` guess (the number the greedy join
//! orderer actually ranked on), the rows the pattern really produced,
//! how many scans it was probed with, and its position in the chosen
//! join order — plus evaluator-wide decode and parallel/serial join
//! counts.

use std::fmt;

/// One triple pattern's line in the plan.
#[derive(Debug, Clone, PartialEq)]
pub struct PatternPlan {
    /// The pattern text, e.g. `?table <rdf:type> <kglids:Table>`.
    pub pattern: String,
    /// `QuadStore::estimate_pattern` over the pattern's constants — the
    /// cardinality guess join ordering ranked on.
    pub estimated_rows: usize,
    /// Rows the pattern actually produced across all scans.
    pub actual_rows: u64,
    /// Number of times the pattern was probed (once per input binding
    /// in a nested-loop join step).
    pub scans: u64,
    /// Position in the executed join order of its BGP, if the pattern
    /// was ever joined (`None` for patterns in branches never reached).
    pub order: Option<usize>,
    /// Join operator that executed the pattern (`"nested-loop"`,
    /// `"probe"`, `"merge"`, or `"leapfrog"`); `None` if never joined.
    pub operator: Option<&'static str>,
    /// `false` when the pattern references a constant the dictionary
    /// has never interned — its whole BGP compiled to empty.
    pub satisfiable: bool,
}

/// Full instrumented-evaluation report.
#[derive(Debug, Clone, PartialEq)]
pub struct ExplainReport {
    /// Whether cardinality-based join reordering was enabled.
    pub reorder_joins: bool,
    /// Solution rows returned.
    pub rows: usize,
    /// End-to-end wall time (compile + evaluate + project).
    pub wall_secs: f64,
    /// One entry per triple pattern, in textual (compile) order.
    pub patterns: Vec<PatternPlan>,
    /// Terms materialised from ids (projection + lazy FILTER decodes).
    pub decoded_terms: u64,
    /// Join steps that ran on the parallel path.
    pub parallel_joins: u64,
    /// Join steps that ran serially.
    pub serial_joins: u64,
    /// Vectorized sort-merge join steps executed.
    pub merge_joins: u64,
    /// Vectorized per-row probe join steps executed.
    pub probe_joins: u64,
    /// Leapfrog star-intersection steps executed.
    pub leapfrog_joins: u64,
    /// True when a graceful-degradation row cap truncated intermediate
    /// binding sets: the reported rows are a valid subset of the exact
    /// answer.
    pub truncated: bool,
}

impl fmt::Display for ExplainReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "plan: {} pattern(s), join reordering {}, {} row(s) in {:.3} ms",
            self.patterns.len(),
            if self.reorder_joins { "on" } else { "off" },
            self.rows,
            self.wall_secs * 1e3,
        )?;
        // print in executed join order; never-joined patterns last
        let mut idx: Vec<usize> = (0..self.patterns.len()).collect();
        idx.sort_by_key(|&i| (self.patterns[i].order.unwrap_or(usize::MAX), i));
        let width = self.patterns.iter().map(|p| p.pattern.len()).max().unwrap_or(0).min(72);
        for &i in &idx {
            let p = &self.patterns[i];
            let order = match p.order {
                Some(o) => format!("#{o}"),
                None => "--".to_string(),
            };
            if p.satisfiable {
                writeln!(
                    f,
                    "  {order:>4}  {:width$}  est {:>8}  actual {:>8}  scans {:>6}  via {}",
                    p.pattern,
                    p.estimated_rows,
                    p.actual_rows,
                    p.scans,
                    p.operator.unwrap_or("--"),
                )?;
            } else {
                writeln!(
                    f,
                    "  {order:>4}  {:width$}  unsatisfiable (constant not in store)",
                    p.pattern,
                )?;
            }
        }
        write!(
            f,
            "  decoded terms {} | joins: {} parallel, {} serial | ops: {} merge, {} probe, {} leapfrog",
            self.decoded_terms,
            self.parallel_joins,
            self.serial_joins,
            self.merge_joins,
            self.probe_joins,
            self.leapfrog_joins,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_shows_est_and_actual() {
        let report = ExplainReport {
            reorder_joins: true,
            rows: 2,
            wall_secs: 0.0015,
            patterns: vec![
                PatternPlan {
                    pattern: "?t <type> <Table>".into(),
                    estimated_rows: 2,
                    actual_rows: 2,
                    scans: 1,
                    order: Some(0),
                    operator: Some("probe"),
                    satisfiable: true,
                },
                PatternPlan {
                    pattern: "?t <missing> ?x".into(),
                    estimated_rows: 0,
                    actual_rows: 0,
                    scans: 0,
                    order: None,
                    operator: None,
                    satisfiable: false,
                },
            ],
            decoded_terms: 4,
            parallel_joins: 0,
            serial_joins: 1,
            merge_joins: 0,
            probe_joins: 1,
            leapfrog_joins: 0,
            truncated: false,
        };
        let text = report.to_string();
        assert!(text.contains("est"));
        assert!(text.contains("actual"));
        assert!(text.contains("unsatisfiable"));
        assert!(text.contains("reordering on"));
        // executed pattern printed before never-joined one
        let pos_joined = text.find("?t <type> <Table>").unwrap();
        let pos_dead = text.find("?t <missing> ?x").unwrap();
        assert!(pos_joined < pos_dead);
    }
}
