//! Encoded query evaluation over a [`StoreSnapshot`].
//!
//! The engine never joins over decoded [`Term`]s. A query is *compiled*
//! once against the store — every constant node is resolved to its
//! dictionary [`TermId`] up front (a constant the store has never interned
//! short-circuits its whole BGP to empty) — and evaluation then runs
//! binding-at-a-time nested-loop joins where a binding is a
//! `Vec<Option<TermId>>`: four-byte slots, integer comparisons, no decoding.
//!
//! Terms are materialised only at the solution-modifier boundary
//! ([`crate::project`]) and, lazily per referenced variable, inside FILTER
//! expressions. Join ordering is cardinality-based: each candidate pattern
//! is costed with [`StoreSnapshot::estimate_pattern`], which answers from the
//! store's B-tree range bounds. Large intermediate binding sets are joined
//! in parallel chunks via [`lids_exec::parallel_map`].
//!
//! The naive decoded engine survives as [`crate::reference`]; the
//! `encoded_vs_reference` property tests hold this engine to its semantics.

use std::cell::Cell;
use std::collections::HashSet;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicU8, AtomicUsize, Ordering::Relaxed};
use std::time::{Duration, Instant};

use lids_exec::{parallel_map, QueryGovernor, QueryLimits};
use lids_rdf::{EncodedPattern, GraphName, StoreSnapshot, Term, TermId, Triple};

use crate::ast::*;
use crate::explain::{ExplainReport, PatternPlan};
use crate::project::{project, used_variables};
use crate::results::{Solutions, SparqlError};

pub use crate::expr::simple_regex;

/// Evaluate a parsed query against the store.
pub fn evaluate(store: &StoreSnapshot, query: &Query) -> Result<Solutions, SparqlError> {
    evaluate_with(store, query, EvalOptions::default())
}

/// Evaluation knobs (benchmarking/ablation).
#[derive(Debug, Clone, Copy)]
pub struct EvalOptions {
    /// Cardinality-based join ordering. Disabling it evaluates patterns in
    /// textual order — the ablation arm of the `sparql/join_ordering`
    /// bench, and the mode whose row order matches [`crate::reference`]
    /// exactly.
    pub reorder_joins: bool,
    /// Intermediate binding sets at least this large are joined in
    /// parallel chunks. `usize::MAX` disables parallelism.
    pub parallel_threshold: usize,
    /// Vectorized execution: batched columnar joins over sorted index
    /// runs (sort-merge, leapfrog star intersection) where the BGP shape
    /// allows, with the row-at-a-time nested loop as the fallback.
    /// Disabling it forces the PR 1 row engine everywhere — the ablation
    /// arm of the `sparql` bench, and the mode whose row order matches
    /// [`crate::reference`] exactly.
    pub vectorize: bool,
    /// Wall-clock ceiling for one evaluation. When set (and no external
    /// governor is supplied) a local [`QueryGovernor`] is armed; past
    /// the deadline the query returns [`SparqlError::Governed`] with
    /// [`TripReason::Timeout`](lids_exec::TripReason::Timeout).
    pub deadline: Option<Duration>,
    /// Ceiling on cumulative binding-table / decode allocations in
    /// logical bytes. Exceeding it returns [`SparqlError::Governed`]
    /// instead of allocating without bound.
    pub memory_budget: Option<u64>,
    /// Graceful-degradation row cap: intermediate binding sets larger
    /// than this are truncated (and the result marked
    /// [`Solutions::truncated`]) rather than failed. `None` = exact.
    pub row_cap: Option<usize>,
}

impl Default for EvalOptions {
    fn default() -> Self {
        EvalOptions {
            reorder_joins: true,
            parallel_threshold: 1024,
            vectorize: true,
            deadline: None,
            memory_budget: None,
            row_cap: None,
        }
    }
}

impl EvalOptions {
    /// Fluent construction; the struct-literal form keeps working.
    pub fn builder() -> EvalOptionsBuilder {
        EvalOptionsBuilder { inner: EvalOptions::default() }
    }

    /// The [`QueryLimits`] these options imply (deadline and memory
    /// budget; cancellation comes only from an external governor).
    pub fn limits(&self) -> QueryLimits {
        QueryLimits {
            deadline: self.deadline,
            memory_budget_bytes: self.memory_budget,
            ..QueryLimits::default()
        }
    }
}

/// Builder for [`EvalOptions`] (`EvalOptions::builder()`).
#[derive(Debug, Clone, Copy)]
pub struct EvalOptionsBuilder {
    inner: EvalOptions,
}

impl EvalOptionsBuilder {
    /// Enable/disable cardinality-based join reordering.
    pub fn reorder_joins(mut self, on: bool) -> Self {
        self.inner.reorder_joins = on;
        self
    }

    /// Minimum intermediate binding-set size for parallel join/decode.
    pub fn parallel_threshold(mut self, threshold: usize) -> Self {
        self.inner.parallel_threshold = threshold;
        self
    }

    /// Enable/disable vectorized (batched columnar) join execution.
    pub fn vectorize(mut self, on: bool) -> Self {
        self.inner.vectorize = on;
        self
    }

    /// Wall-clock ceiling for the evaluation.
    pub fn deadline(mut self, limit: Duration) -> Self {
        self.inner.deadline = Some(limit);
        self
    }

    /// Ceiling on cumulative binding-table / decode allocation bytes.
    pub fn memory_budget(mut self, bytes: u64) -> Self {
        self.inner.memory_budget = Some(bytes);
        self
    }

    /// Truncate intermediate binding sets to this many rows, marking
    /// the result [`Solutions::truncated`] when the cap bites.
    pub fn row_cap(mut self, rows: usize) -> Self {
        self.inner.row_cap = Some(rows);
        self
    }

    pub fn build(self) -> EvalOptions {
        self.inner
    }
}

/// A partial solution: one optional term *id* per query variable.
pub(crate) type IdBinding = Vec<Option<TermId>>;

/// Always-on per-evaluation operator counters (relaxed atomics, added
/// once per operator execution — never per row). [`evaluate_with_stats`]
/// and the prepared-query path fill one in so callers (the platform's
/// obs registry) can attribute work to merge / probe / leapfrog
/// operators without paying for full explain instrumentation.
#[derive(Debug, Default)]
pub struct ExecStats {
    merge_joins: AtomicU64,
    probe_joins: AtomicU64,
    leapfrog_joins: AtomicU64,
}

impl ExecStats {
    /// Sort-merge join executions.
    pub fn merge_joins(&self) -> u64 {
        self.merge_joins.load(Relaxed)
    }

    /// Per-row probe join executions.
    pub fn probe_joins(&self) -> u64 {
        self.probe_joins.load(Relaxed)
    }

    /// Leapfrog star-intersection executions.
    pub fn leapfrog_joins(&self) -> u64 {
        self.leapfrog_joins.load(Relaxed)
    }

    pub(crate) fn count(&self, op: Operator) {
        match op {
            // the row engine is visible through explain's per-pattern
            // operator labels; these counters track vectorized ops only
            Operator::NestedLoop => return,
            Operator::Probe => &self.probe_joins,
            Operator::Merge => &self.merge_joins,
            Operator::Leapfrog => &self.leapfrog_joins,
        }
        .fetch_add(1, Relaxed);
    }
}

/// Which join operator executed a pattern. `NestedLoop` is the row
/// engine; the rest are the vectorized operators in [`crate::batch`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Operator {
    NestedLoop,
    Probe,
    Merge,
    Leapfrog,
}

impl Operator {
    pub(crate) fn label(self) -> &'static str {
        match self {
            Operator::NestedLoop => "nested-loop",
            Operator::Probe => "probe",
            Operator::Merge => "merge",
            Operator::Leapfrog => "leapfrog",
        }
    }

    fn code(self) -> u8 {
        match self {
            Operator::NestedLoop => 1,
            Operator::Probe => 2,
            Operator::Merge => 3,
            Operator::Leapfrog => 4,
        }
    }

    fn from_code(code: u8) -> Option<Operator> {
        match code {
            1 => Some(Operator::NestedLoop),
            2 => Some(Operator::Probe),
            3 => Some(Operator::Merge),
            4 => Some(Operator::Leapfrog),
            _ => None,
        }
    }
}

/// Evaluate with explicit options.
pub fn evaluate_with(
    store: &StoreSnapshot,
    query: &Query,
    options: EvalOptions,
) -> Result<Solutions, SparqlError> {
    evaluate_governed(store, query, options, None)
}

/// Evaluate under an externally armed [`QueryGovernor`] (shared
/// cancellation, cross-engine budgets). With `governor: None`, a local
/// governor is armed from the options' deadline/budget fields when set.
pub fn evaluate_governed(
    store: &StoreSnapshot,
    query: &Query,
    options: EvalOptions,
    governor: Option<&QueryGovernor>,
) -> Result<Solutions, SparqlError> {
    let mut compiler = Compiler::new(store, &query.variables, false);
    let compiled = compiler.compile_query(query);
    eval_compiled(store, query, options, &compiled, None, None, governor)
}

/// Evaluate with explicit options, filling `stats` with per-operator
/// execution counts.
pub fn evaluate_with_stats(
    store: &StoreSnapshot,
    query: &Query,
    options: EvalOptions,
    stats: &ExecStats,
) -> Result<Solutions, SparqlError> {
    let mut compiler = Compiler::new(store, &query.variables, false);
    let compiled = compiler.compile_query(query);
    eval_compiled(store, query, options, &compiled, None, Some(stats), None)
}

/// Evaluate with per-pattern instrumentation, returning the solutions
/// plus an [`ExplainReport`] of the executed plan.
pub fn evaluate_explained(
    store: &StoreSnapshot,
    query: &Query,
    options: EvalOptions,
) -> Result<(Solutions, ExplainReport), SparqlError> {
    let start = Instant::now();
    let mut compiler = Compiler::new(store, &query.variables, true);
    let compiled = compiler.compile_query(query);
    let metas = compiler.metas;
    let instr = Instr::new(metas.len());
    let stats = ExecStats::default();
    let solutions =
        eval_compiled(store, query, options, &compiled, Some(&instr), Some(&stats), None)?;
    let wall_secs = start.elapsed().as_secs_f64();
    let patterns = metas
        .into_iter()
        .enumerate()
        .map(|(i, meta)| {
            let cell = &instr.cells[i];
            let order = cell.order.load(Relaxed);
            PatternPlan {
                pattern: meta.text,
                estimated_rows: meta.estimated,
                actual_rows: cell.actual.load(Relaxed),
                scans: cell.scans.load(Relaxed),
                order: (order != usize::MAX).then_some(order),
                satisfiable: meta.satisfiable,
                operator: Operator::from_code(cell.operator.load(Relaxed)).map(Operator::label),
            }
        })
        .collect();
    let report = ExplainReport {
        reorder_joins: options.reorder_joins,
        rows: solutions.len(),
        wall_secs,
        patterns,
        decoded_terms: instr.decoded.load(Relaxed),
        parallel_joins: instr.parallel_joins.load(Relaxed),
        serial_joins: instr.serial_joins.load(Relaxed),
        merge_joins: stats.merge_joins(),
        probe_joins: stats.probe_joins(),
        leapfrog_joins: stats.leapfrog_joins(),
        truncated: solutions.truncated,
    };
    Ok((solutions, report))
}

pub(crate) fn eval_compiled(
    store: &StoreSnapshot,
    query: &Query,
    options: EvalOptions,
    compiled: &EncGroup,
    instr: Option<&Instr>,
    stats: Option<&ExecStats>,
    governor: Option<&QueryGovernor>,
) -> Result<Solutions, SparqlError> {
    // With no external governor, arm a local one from the options'
    // deadline/budget. All-`None` limits arm nothing: the ungoverned
    // fast path pays a single never-taken branch per checkpoint site.
    let local = match governor {
        Some(_) => None,
        None => options.limits().arm(),
    };
    let governor = governor.or(local.as_ref());
    let ev = Evaluator { store, options, instr, stats, governor, truncated: AtomicBool::new(false) };
    let nvars = query.variables.len();
    let root = vec![vec![None; nvars]];
    match &query.form {
        QueryForm::Ask(_) => {
            let bindings = ev.eval_group(compiled, root, GraphCtx::Default)?;
            Ok(Solutions {
                columns: Vec::new(),
                rows: Vec::new(),
                ask: Some(!bindings.is_empty()),
                truncated: ev.truncated.load(Relaxed),
            })
        }
        QueryForm::Select(select) => {
            let bindings = ev.eval_group(compiled, root, GraphCtx::Default)?;
            let decoded = ev.decode_bindings(query, select, bindings)?;
            let mut solutions = project(query, select, decoded)?;
            solutions.truncated = ev.truncated.load(Relaxed);
            Ok(solutions)
        }
    }
}

// -------------------------------------------------------- instrumentation

/// Per-pattern atomic counters, written on the evaluator's hot path
/// with relaxed ordering: one add per `match_rows` *call* (never per
/// row), so instrumented evaluation stays within a few percent of
/// uninstrumented.
pub(crate) struct Instr {
    cells: Vec<InstrCell>,
    decoded: AtomicU64,
    parallel_joins: AtomicU64,
    serial_joins: AtomicU64,
}

struct InstrCell {
    /// Position in the executed join order; `usize::MAX` = never
    /// joined. First recording wins — nested re-evaluations (OPTIONAL
    /// per-row seeding) keep the plan of their first execution.
    order: AtomicUsize,
    actual: AtomicU64,
    scans: AtomicU64,
    /// [`Operator::code`] of the operator that joined this pattern
    /// (first execution wins); 0 = never executed.
    operator: AtomicU8,
}

impl Instr {
    fn new(n: usize) -> Self {
        Instr {
            cells: (0..n)
                .map(|_| InstrCell {
                    order: AtomicUsize::new(usize::MAX),
                    actual: AtomicU64::new(0),
                    scans: AtomicU64::new(0),
                    operator: AtomicU8::new(0),
                })
                .collect(),
            decoded: AtomicU64::new(0),
            parallel_joins: AtomicU64::new(0),
            serial_joins: AtomicU64::new(0),
        }
    }

    pub(crate) fn record_order(&self, pid: u32, position: usize) {
        if let Some(cell) = self.cells.get(pid as usize) {
            let _ = cell.order.compare_exchange(usize::MAX, position, Relaxed, Relaxed);
        }
    }

    pub(crate) fn record_match(&self, pid: u32, produced: usize) {
        if let Some(cell) = self.cells.get(pid as usize) {
            cell.scans.fetch_add(1, Relaxed);
            cell.actual.fetch_add(produced as u64, Relaxed);
        }
    }

    pub(crate) fn record_operator(&self, pid: u32, op: Operator) {
        if let Some(cell) = self.cells.get(pid as usize) {
            let _ = cell.operator.compare_exchange(0, op.code(), Relaxed, Relaxed);
        }
    }
}

/// Pattern id inside a compiled query, indexing [`Instr::cells`].
/// Nested quoted-triple patterns are not scanned on their own and get
/// [`NO_PID`].
const NO_PID: u32 = u32::MAX;

/// Compile-time record of one triple pattern, kept only in explain
/// mode.
struct PatternMeta {
    text: String,
    estimated: usize,
    satisfiable: bool,
}

// ------------------------------------------------------------ compiled form

/// A node pattern with constants already resolved to ids.
pub(crate) enum EncNode {
    Const(TermId),
    Var(VarId),
    /// Quoted pattern containing at least one variable (ground quoted
    /// patterns compile to `Const`).
    Quoted(Box<EncTriple>),
}

pub(crate) struct EncTriple {
    /// Index into the explain-mode pattern table ([`NO_PID`] for
    /// nested quoted patterns, which are never scanned directly).
    pub(crate) pid: u32,
    pub(crate) subject: EncNode,
    pub(crate) predicate: EncNode,
    pub(crate) object: EncNode,
}

pub(crate) enum GraphSpec {
    Fixed(TermId),
    Var(VarId),
}

pub(crate) enum EncElement {
    Triples(Vec<EncTriple>),
    /// A pattern that cannot match anything in this store (it references a
    /// constant the dictionary has never interned).
    Empty,
    Filter(Expr),
    Optional(EncGroup),
    Graph(GraphSpec, EncGroup),
    Union(Vec<EncGroup>),
}

pub(crate) struct EncGroup {
    pub(crate) elements: Vec<EncElement>,
}

/// Graph scope during evaluation. The default scope spans all graphs;
/// `GRAPH` narrows it to one fixed graph id or a variable ranging over
/// named graphs.
#[derive(Clone, Copy)]
pub(crate) enum GraphCtx {
    Default,
    Fixed(TermId),
    Var(VarId),
}

/// Outcome of resolving a node under a binding before a scan.
enum Resolved {
    Bound(TermId),
    Unbound,
    /// The node denotes a term the store cannot contain — no quad matches.
    Dead,
}

impl Resolved {
    fn id(&self) -> Option<TermId> {
        match self {
            Resolved::Bound(id) => Some(*id),
            _ => None,
        }
    }
}

// --------------------------------------------------------------- compile

/// Compiles a query's patterns against the store, assigning each triple
/// pattern a dense pattern id. In explain mode it additionally records
/// per-pattern text and the constants-only `estimate_pattern` guess —
/// the same number join ordering starts from.
pub(crate) struct Compiler<'a> {
    store: &'a StoreSnapshot,
    vars: &'a [String],
    collect: bool,
    metas: Vec<PatternMeta>,
    next_pid: u32,
}

impl<'a> Compiler<'a> {
    pub(crate) fn new(store: &'a StoreSnapshot, vars: &'a [String], collect: bool) -> Self {
        Compiler { store, vars, collect, metas: Vec::new(), next_pid: 0 }
    }

    pub(crate) fn compile_query(&mut self, query: &Query) -> EncGroup {
        match &query.form {
            QueryForm::Ask(pattern) => self.compile_group(pattern),
            QueryForm::Select(select) => self.compile_group(&select.pattern),
        }
    }

    fn compile_group(&mut self, group: &GroupPattern) -> EncGroup {
        let elements = group
            .elements
            .iter()
            .map(|element| match element {
                PatternElement::Triples(patterns) => {
                    let compiled: Option<Vec<EncTriple>> =
                        patterns.iter().map(|p| self.compile_triple(p)).collect();
                    match compiled {
                        Some(triples) => EncElement::Triples(triples),
                        None => EncElement::Empty,
                    }
                }
                PatternElement::Filter(expr) => EncElement::Filter(expr.clone()),
                PatternElement::Optional(inner) => {
                    EncElement::Optional(self.compile_group(inner))
                }
                PatternElement::Graph(node, inner) => match node {
                    NodePattern::Var(v) => {
                        EncElement::Graph(GraphSpec::Var(*v), self.compile_group(inner))
                    }
                    NodePattern::Term(Term::Iri(iri)) => {
                        match self.store.graph_id(&GraphName::named(iri.clone())) {
                            Some(id) => {
                                EncElement::Graph(GraphSpec::Fixed(id), self.compile_group(inner))
                            }
                            None => EncElement::Empty,
                        }
                    }
                    // non-IRI graph names match nothing
                    _ => EncElement::Empty,
                },
                PatternElement::Union(branches) => {
                    EncElement::Union(branches.iter().map(|b| self.compile_group(b)).collect())
                }
            })
            .collect();
        EncGroup { elements }
    }

    fn compile_triple(&mut self, pattern: &TriplePattern) -> Option<EncTriple> {
        let pid = self.next_pid;
        self.next_pid += 1;
        if self.collect {
            self.metas.push(PatternMeta {
                text: triple_text(pattern, self.vars),
                estimated: 0,
                satisfiable: true,
            });
        }
        let compiled = self.compile_node(&pattern.subject).and_then(|subject| {
            let predicate = self.compile_node(&pattern.predicate)?;
            let object = self.compile_node(&pattern.object)?;
            Some(EncTriple { pid, subject, predicate, object })
        });
        if self.collect {
            match &compiled {
                Some(t) => {
                    let enc = EncodedPattern {
                        subject: const_of(&t.subject),
                        predicate: const_of(&t.predicate),
                        object: const_of(&t.object),
                        graph: None,
                    };
                    self.metas[pid as usize].estimated = self.store.estimate_pattern(&enc);
                }
                None => self.metas[pid as usize].satisfiable = false,
            }
        }
        compiled
    }

    /// Like [`Compiler::compile_triple`] for a pattern nested inside a
    /// quoted triple: it is matched by unification, never scanned, so
    /// it gets no pattern id or plan line of its own.
    fn compile_quoted(&mut self, pattern: &TriplePattern) -> Option<EncTriple> {
        Some(EncTriple {
            pid: NO_PID,
            subject: self.compile_node(&pattern.subject)?,
            predicate: self.compile_node(&pattern.predicate)?,
            object: self.compile_node(&pattern.object)?,
        })
    }

    /// `None` means the node requires a term the dictionary does not hold,
    /// so the enclosing BGP can never match. (For constants inside quoted
    /// patterns this relies on the dictionary interning quoted
    /// constituents recursively.)
    fn compile_node(&mut self, node: &NodePattern) -> Option<EncNode> {
        match node {
            NodePattern::Term(t) => self.store.id_of(t).map(EncNode::Const),
            NodePattern::Var(v) => Some(EncNode::Var(*v)),
            NodePattern::Quoted(q) => match ground_term(node) {
                Some(term) => self.store.id_of(&term).map(EncNode::Const),
                None => Some(EncNode::Quoted(Box::new(self.compile_quoted(q)?))),
            },
        }
    }
}

/// Plan text of a node pattern: `?name` for variables, N-Triples
/// rendering for constants.
fn node_text(node: &NodePattern, vars: &[String]) -> String {
    match node {
        NodePattern::Var(v) => match vars.get(v.0 as usize) {
            Some(name) => format!("?{name}"),
            None => format!("?_{}", v.0),
        },
        NodePattern::Term(t) => t.to_string(),
        NodePattern::Quoted(q) => format!("<< {} >>", triple_text(q, vars)),
    }
}

fn triple_text(pattern: &TriplePattern, vars: &[String]) -> String {
    format!(
        "{} {} {}",
        node_text(&pattern.subject, vars),
        node_text(&pattern.predicate, vars),
        node_text(&pattern.object, vars),
    )
}

pub(crate) struct Evaluator<'a> {
    pub(crate) store: &'a StoreSnapshot,
    pub(crate) options: EvalOptions,
    /// Present only under [`evaluate_explained`]; `None` costs one
    /// predictable branch per counter site.
    pub(crate) instr: Option<&'a Instr>,
    /// Per-operator execution counters, when the caller asked for them.
    pub(crate) stats: Option<&'a ExecStats>,
    /// Resource governor for this evaluation; `None` skips every
    /// checkpoint with one predictable branch.
    pub(crate) governor: Option<&'a QueryGovernor>,
    /// Latched when a row cap truncated an intermediate binding set.
    pub(crate) truncated: AtomicBool,
}

/// Logical bytes of an encoded binding row: one `Option<TermId>` slot
/// per variable (8 bytes with niche-free accounting).
const ID_SLOT_BYTES: u64 = 8;

/// Governed row loops run a boundary check every this many input rows,
/// bounding the window between a trip and the loop observing it without
/// paying an atomic read per row.
pub(crate) const GOVERNOR_ROW_INTERVAL: usize = 1024;

impl<'a> Evaluator<'a> {
    // ----------------------------------------------------------- governance

    /// Batch-boundary checkpoint; no-op when ungoverned.
    pub(crate) fn guard(&self) -> Result<(), SparqlError> {
        match self.governor {
            Some(gov) => gov.check().map_err(SparqlError::Governed),
            None => Ok(()),
        }
    }

    /// Charge binding-table bytes against the budget; no-op when
    /// ungoverned.
    pub(crate) fn charge(&self, bytes: u64) -> Result<(), SparqlError> {
        match self.governor {
            Some(gov) => gov.charge(bytes).map_err(SparqlError::Governed),
            None => Ok(()),
        }
    }

    fn charge_rows(&self, rows: &[IdBinding]) -> Result<(), SparqlError> {
        if self.governor.is_some() && !rows.is_empty() {
            self.charge(rows.len() as u64 * rows[0].len() as u64 * ID_SLOT_BYTES)?;
        }
        Ok(())
    }

    /// Apply the graceful-degradation row cap, latching the truncated
    /// flag when it bites.
    pub(crate) fn cap_rows(&self, rows: &mut Vec<IdBinding>) {
        if let Some(cap) = self.options.row_cap {
            if rows.len() > cap {
                rows.truncate(cap);
                self.truncated.store(true, Relaxed);
            }
        }
    }

    // ------------------------------------------------------------- evaluate

    fn eval_group(
        &self,
        group: &EncGroup,
        mut bindings: Vec<IdBinding>,
        ctx: GraphCtx,
    ) -> Result<Vec<IdBinding>, SparqlError> {
        for element in &group.elements {
            if bindings.is_empty() {
                return Ok(bindings);
            }
            self.guard()?;
            bindings = self.apply_element(element, bindings, ctx)?;
            self.cap_rows(&mut bindings);
        }
        Ok(bindings)
    }

    fn apply_element(
        &self,
        element: &EncElement,
        bindings: Vec<IdBinding>,
        ctx: GraphCtx,
    ) -> Result<Vec<IdBinding>, SparqlError> {
        Ok(match element {
            EncElement::Triples(patterns) => self.eval_triples(patterns, bindings, ctx)?,
            EncElement::Empty => Vec::new(),
            EncElement::Filter(expr) => {
                let mut bindings = bindings;
                bindings.retain(|b| self.filter_passes(b, expr));
                bindings
            }
            EncElement::Optional(inner) => {
                if self.options.vectorize {
                    if let Some(done) = crate::batch::try_vectorized_optional(
                        self, inner, &bindings, ctx,
                    )? {
                        return Ok(done);
                    }
                }
                let mut next = Vec::new();
                for binding in bindings {
                    self.guard()?;
                    let extended = self.eval_group_seeded(inner, &binding, ctx)?;
                    if extended.is_empty() {
                        // inner group matched nothing: the row survives
                        // unchanged, moved rather than cloned
                        next.push(binding);
                    } else {
                        next.extend(extended);
                    }
                }
                next
            }
            EncElement::Graph(spec, inner) => {
                let inner_ctx = match spec {
                    GraphSpec::Fixed(id) => GraphCtx::Fixed(*id),
                    GraphSpec::Var(v) => GraphCtx::Var(*v),
                };
                self.eval_group(inner, bindings, inner_ctx)?
            }
            EncElement::Union(branches) => {
                let mut next = Vec::new();
                if let Some((last, init)) = branches.split_last() {
                    for branch in init {
                        next.extend(self.eval_group(branch, bindings.clone(), ctx)?);
                    }
                    next.extend(self.eval_group(last, bindings, ctx)?);
                }
                next
            }
        })
    }

    /// Evaluate a group for a single input row without cloning it up
    /// front: the first element matches `seed` by reference, so OPTIONAL
    /// only pays for rows its inner group actually produces.
    fn eval_group_seeded(
        &self,
        group: &EncGroup,
        seed: &IdBinding,
        ctx: GraphCtx,
    ) -> Result<Vec<IdBinding>, SparqlError> {
        let Some((first, rest)) = group.elements.split_first() else {
            return Ok(vec![seed.clone()]);
        };
        let mut bindings = match first {
            EncElement::Triples(patterns) => self.eval_triples_seeded(patterns, seed, ctx)?,
            EncElement::Empty => Vec::new(),
            EncElement::Filter(expr) => {
                if self.filter_passes(seed, expr) {
                    vec![seed.clone()]
                } else {
                    Vec::new()
                }
            }
            EncElement::Optional(inner) => {
                let extended = self.eval_group_seeded(inner, seed, ctx)?;
                if extended.is_empty() {
                    vec![seed.clone()]
                } else {
                    extended
                }
            }
            EncElement::Graph(spec, inner) => {
                let inner_ctx = match spec {
                    GraphSpec::Fixed(id) => GraphCtx::Fixed(*id),
                    GraphSpec::Var(v) => GraphCtx::Var(*v),
                };
                self.eval_group_seeded(inner, seed, inner_ctx)?
            }
            EncElement::Union(branches) => {
                let mut out = Vec::new();
                for branch in branches {
                    out.extend(self.eval_group_seeded(branch, seed, ctx)?);
                }
                out
            }
        };
        for element in rest {
            if bindings.is_empty() {
                break;
            }
            bindings = self.apply_element(element, bindings, ctx)?;
        }
        Ok(bindings)
    }

    fn eval_triples(
        &self,
        patterns: &[EncTriple],
        bindings: Vec<IdBinding>,
        ctx: GraphCtx,
    ) -> Result<Vec<IdBinding>, SparqlError> {
        if self.options.vectorize {
            if let Some(result) = crate::batch::try_vectorized(self, patterns, &bindings, ctx)? {
                return Ok(result);
            }
        }
        let order = self.join_order(patterns, bindings.first(), ctx);
        let mut current = bindings;
        for &idx in &order {
            current = self.join_step(&patterns[idx], current, ctx)?;
            self.cap_rows(&mut current);
            if current.is_empty() {
                break;
            }
        }
        Ok(current)
    }

    /// Like [`Evaluator::eval_triples`] for a single borrowed input row.
    fn eval_triples_seeded(
        &self,
        patterns: &[EncTriple],
        seed: &IdBinding,
        ctx: GraphCtx,
    ) -> Result<Vec<IdBinding>, SparqlError> {
        let order = self.join_order(patterns, Some(seed), ctx);
        let Some((&head, tail)) = order.split_first() else {
            return Ok(vec![seed.clone()]);
        };
        let mut current = Vec::new();
        self.match_rows(&patterns[head], seed, ctx, &mut current);
        for &idx in tail {
            if current.is_empty() {
                break;
            }
            current = self.join_step(&patterns[idx], current, ctx)?;
            self.cap_rows(&mut current);
        }
        Ok(current)
    }

    /// Extend every binding in `current` with matches of `pattern`,
    /// parallelising over rows when the set is large enough. Governed:
    /// one checkpoint at entry, binding-table bytes charged on exit.
    fn join_step(
        &self,
        pattern: &EncTriple,
        current: Vec<IdBinding>,
        ctx: GraphCtx,
    ) -> Result<Vec<IdBinding>, SparqlError> {
        self.guard()?;
        let next = if current.len() >= self.options.parallel_threshold {
            if let Some(instr) = self.instr {
                instr.parallel_joins.fetch_add(1, Relaxed);
            }
            parallel_map(&current, |b| {
                let mut out = Vec::new();
                self.match_rows(pattern, b, ctx, &mut out);
                out
            })
            .into_iter()
            .flatten()
            .collect()
        } else {
            if let Some(instr) = self.instr {
                instr.serial_joins.fetch_add(1, Relaxed);
            }
            let mut next = Vec::new();
            for (i, b) in current.iter().enumerate() {
                if self.governor.is_some() && i % GOVERNOR_ROW_INTERVAL == GOVERNOR_ROW_INTERVAL - 1
                {
                    self.guard()?;
                }
                self.match_rows(pattern, b, ctx, &mut next);
            }
            next
        };
        self.charge_rows(&next)?;
        Ok(next)
    }

    // --------------------------------------------------------- join ordering

    /// Decide the order in which a BGP's patterns are joined.
    ///
    /// Greedy cardinality-based ordering: at each step pick the cheapest
    /// remaining pattern, where cost is the store's index-range estimate of
    /// the pattern's constants, discounted for positions whose variables
    /// are already bound (they act as extra constraints once joined) and
    /// heavily penalised when the pattern shares no variable with the
    /// bound set (a cartesian product).
    fn join_order(
        &self,
        patterns: &[EncTriple],
        first: Option<&IdBinding>,
        ctx: GraphCtx,
    ) -> Vec<usize> {
        if !self.options.reorder_joins || patterns.len() <= 1 {
            let order: Vec<usize> = (0..patterns.len()).collect();
            self.record_order(patterns, &order);
            return order;
        }
        let mut bound: HashSet<VarId> = HashSet::new();
        if let Some(b) = first {
            for (i, slot) in b.iter().enumerate() {
                if slot.is_some() {
                    bound.insert(VarId(i as u16));
                }
            }
        }
        let graph_slot = match ctx {
            GraphCtx::Fixed(id) => Some(id),
            _ => None,
        };
        let mut remaining: Vec<usize> = (0..patterns.len()).collect();
        let mut order = Vec::with_capacity(patterns.len());
        while remaining.len() > 1 {
            let mut best_pos = 0;
            let mut best_cost = f64::INFINITY;
            for (pos, &idx) in remaining.iter().enumerate() {
                let cost = self.pattern_cost(&patterns[idx], &bound, graph_slot);
                // strict `<`: ties go to the textually earlier pattern
                if cost < best_cost {
                    best_cost = cost;
                    best_pos = pos;
                }
            }
            let idx = remaining.remove(best_pos);
            collect_triple_vars(&patterns[idx], &mut bound);
            order.push(idx);
        }
        order.push(remaining[0]);
        self.record_order(patterns, &order);
        order
    }

    /// Record each pattern's executed join position (first execution of
    /// its BGP wins). Row-engine call sites; also marks the operator.
    fn record_order(&self, patterns: &[EncTriple], order: &[usize]) {
        if let Some(instr) = self.instr {
            for (position, &idx) in order.iter().enumerate() {
                instr.record_order(patterns[idx].pid, position);
                instr.record_operator(patterns[idx].pid, Operator::NestedLoop);
            }
        }
    }

    pub(crate) fn pattern_cost(
        &self,
        pattern: &EncTriple,
        bound: &HashSet<VarId>,
        graph_slot: Option<TermId>,
    ) -> f64 {
        let enc = EncodedPattern {
            subject: const_of(&pattern.subject),
            predicate: const_of(&pattern.predicate),
            object: const_of(&pattern.object),
            graph: graph_slot,
        };
        let base = self.store.estimate_pattern(&enc) as f64;
        let mut bound_positions = 0i32;
        let mut vars: HashSet<VarId> = HashSet::new();
        for node in [&pattern.subject, &pattern.predicate, &pattern.object] {
            let mut node_vars = HashSet::new();
            collect_node_vars(node, &mut node_vars);
            if !node_vars.is_empty() && node_vars.iter().all(|v| bound.contains(v)) {
                bound_positions += 1;
            }
            vars.extend(node_vars);
        }
        // each position fully determined by already-bound variables acts
        // like one more index constraint on top of the constant estimate
        let mut cost = base / 8f64.powi(bound_positions);
        if !bound.is_empty() && !vars.is_empty() && vars.is_disjoint(bound) {
            cost *= 1e3;
        }
        cost
    }

    // --------------------------------------------------------------- matching

    /// Extend `binding` with every quad matching `pattern` under the graph
    /// context. Runs entirely in the id domain: the scan pattern is built
    /// from ids, candidates come back as `[u32; 4]`, and unification
    /// compares/binds ids.
    fn match_rows(
        &self,
        pattern: &EncTriple,
        binding: &IdBinding,
        ctx: GraphCtx,
        out: &mut Vec<IdBinding>,
    ) {
        let s = self.resolve_node(&pattern.subject, binding);
        let p = self.resolve_node(&pattern.predicate, binding);
        let o = self.resolve_node(&pattern.object, binding);
        if matches!(s, Resolved::Dead) || matches!(p, Resolved::Dead) || matches!(o, Resolved::Dead)
        {
            return;
        }

        // Graph scoping
        let mut graph_var: Option<VarId> = None;
        let graph = match ctx {
            GraphCtx::Default => None,
            GraphCtx::Fixed(id) => Some(id),
            GraphCtx::Var(v) => match binding[v.0 as usize] {
                Some(id) => {
                    if !matches!(self.store.term(id), Term::Iri(_)) {
                        return;
                    }
                    Some(id)
                }
                None => {
                    graph_var = Some(v);
                    None
                }
            },
        };

        let produced_before = out.len();
        let scan = EncodedPattern { subject: s.id(), predicate: p.id(), object: o.id(), graph };
        let default_graph = self.store.default_graph_id();
        for [qs, qp, qo, qg] in self.store.match_ids(&scan) {
            let mut candidate = binding.clone();
            if !self.unify_node(&pattern.subject, TermId(qs), &mut candidate) {
                continue;
            }
            if !self.unify_node(&pattern.predicate, TermId(qp), &mut candidate) {
                continue;
            }
            if !self.unify_node(&pattern.object, TermId(qo), &mut candidate) {
                continue;
            }
            if let Some(v) = graph_var {
                // GRAPH ?g ranges over named graphs only
                if Some(TermId(qg)) == default_graph {
                    continue;
                }
                candidate[v.0 as usize] = Some(TermId(qg));
            }
            out.push(candidate);
        }
        if let Some(instr) = self.instr {
            instr.record_match(pattern.pid, out.len() - produced_before);
        }
    }

    fn resolve_node(&self, node: &EncNode, binding: &IdBinding) -> Resolved {
        match node {
            EncNode::Const(id) => Resolved::Bound(*id),
            EncNode::Var(v) => match binding[v.0 as usize] {
                Some(id) => Resolved::Bound(id),
                None => Resolved::Unbound,
            },
            EncNode::Quoted(q) => {
                let s = self.resolve_node(&q.subject, binding);
                let p = self.resolve_node(&q.predicate, binding);
                let o = self.resolve_node(&q.object, binding);
                match (s, p, o) {
                    (Resolved::Dead, _, _)
                    | (_, Resolved::Dead, _)
                    | (_, _, Resolved::Dead) => Resolved::Dead,
                    (Resolved::Bound(s), Resolved::Bound(p), Resolved::Bound(o)) => {
                        // every constituent is known: the quoted term
                        // matches iff it is itself interned
                        let term = Term::quoted(
                            self.store.term(s).clone(),
                            self.store.term(p).clone(),
                            self.store.term(o).clone(),
                        );
                        match self.store.id_of(&term) {
                            Some(id) => Resolved::Bound(id),
                            None => Resolved::Dead,
                        }
                    }
                    _ => Resolved::Unbound,
                }
            }
        }
    }

    /// Unify a compiled node with a candidate quad position, purely by id.
    fn unify_node(&self, node: &EncNode, id: TermId, binding: &mut IdBinding) -> bool {
        match node {
            EncNode::Const(c) => *c == id,
            EncNode::Var(v) => {
                let slot = &mut binding[v.0 as usize];
                match slot {
                    Some(existing) => *existing == id,
                    None => {
                        *slot = Some(id);
                        true
                    }
                }
            }
            EncNode::Quoted(q) => match self.store.term(id) {
                Term::Quoted(t) => self.unify_quoted(q, t, binding),
                _ => false,
            },
        }
    }

    fn unify_quoted(&self, pattern: &EncTriple, triple: &Triple, binding: &mut IdBinding) -> bool {
        self.unify_term(&pattern.subject, &triple.subject, binding)
            && self.unify_term(&pattern.predicate, &triple.predicate, binding)
            && self.unify_term(&pattern.object, &triple.object, binding)
    }

    /// Unify an encoded node against a decoded term (the inside of a
    /// stored quoted triple). The dictionary interns quoted constituents,
    /// so variable bindings still land in the id domain.
    fn unify_term(&self, node: &EncNode, term: &Term, binding: &mut IdBinding) -> bool {
        match node {
            EncNode::Const(c) => self.store.term(*c) == term,
            EncNode::Var(v) => {
                let Some(id) = self.store.id_of(term) else {
                    return false;
                };
                let slot = &mut binding[v.0 as usize];
                match slot {
                    Some(existing) => *existing == id,
                    None => {
                        *slot = Some(id);
                        true
                    }
                }
            }
            EncNode::Quoted(q) => match term {
                Term::Quoted(t) => self.unify_quoted(q, t, binding),
                _ => false,
            },
        }
    }

    // -------------------------------------------------------------- boundary

    /// Lazy per-variable decoding for FILTER: only variables the
    /// expression actually references are materialised.
    fn filter_passes(&self, binding: &IdBinding, expr: &Expr) -> bool {
        match self.instr {
            None => crate::expr::filter_passes(
                &|v: VarId| binding[v.0 as usize].map(|id| self.store.term(id).clone()),
                expr,
            ),
            Some(instr) => {
                let decoded = Cell::new(0u64);
                let passes = crate::expr::filter_passes(
                    &|v: VarId| {
                        binding[v.0 as usize].map(|id| {
                            decoded.set(decoded.get() + 1);
                            self.store.term(id).clone()
                        })
                    },
                    expr,
                );
                instr.decoded.fetch_add(decoded.get(), Relaxed);
                passes
            }
        }
    }

    /// Decode id bindings into term rows for the solution modifiers. Only
    /// variables the modifiers can observe are materialised; the rest stay
    /// `None`. Governed: decoded terms are charged against the memory
    /// budget (48 logical bytes per materialised term) before decoding.
    fn decode_bindings(
        &self,
        query: &Query,
        select: &SelectQuery,
        bindings: Vec<IdBinding>,
    ) -> Result<Vec<Vec<Option<Term>>>, SparqlError> {
        let used = used_variables(query, select);
        if self.governor.is_some() {
            self.guard()?;
            let used_count = used.iter().filter(|&&u| u).count() as u64;
            self.charge(bindings.len() as u64 * used_count * 48)?;
        }
        let decode_row = |b: &IdBinding| -> Vec<Option<Term>> {
            b.iter()
                .zip(&used)
                .map(|(slot, &u)| {
                    if u {
                        slot.map(|id| self.store.term(id).clone())
                    } else {
                        None
                    }
                })
                .collect()
        };
        let decoded = if bindings.len() >= self.options.parallel_threshold {
            parallel_map(&bindings, decode_row)
        } else {
            bindings.iter().map(decode_row).collect()
        };
        if let Some(instr) = self.instr {
            let terms: u64 = decoded
                .iter()
                .map(|row| row.iter().filter(|slot| slot.is_some()).count() as u64)
                .sum();
            instr.decoded.fetch_add(terms, Relaxed);
        }
        Ok(decoded)
    }
}

pub(crate) fn const_of(node: &EncNode) -> Option<TermId> {
    match node {
        EncNode::Const(id) => Some(*id),
        _ => None,
    }
}

pub(crate) fn collect_triple_vars(t: &EncTriple, out: &mut HashSet<VarId>) {
    for n in [&t.subject, &t.predicate, &t.object] {
        collect_node_vars(n, out);
    }
}

fn collect_node_vars(n: &EncNode, out: &mut HashSet<VarId>) {
    match n {
        EncNode::Var(v) => {
            out.insert(*v);
        }
        EncNode::Quoted(q) => collect_triple_vars(q, out),
        EncNode::Const(_) => {}
    }
}

/// The concrete term a ground node pattern denotes, or `None` if it
/// contains a variable.
fn ground_term(node: &NodePattern) -> Option<Term> {
    match node {
        NodePattern::Term(t) => Some(t.clone()),
        NodePattern::Var(_) => None,
        NodePattern::Quoted(q) => Some(Term::quoted(
            ground_term(&q.subject)?,
            ground_term(&q.predicate)?,
            ground_term(&q.object)?,
        )),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_query;
    use lids_rdf::Quad;

    fn store() -> lids_rdf::QuadStore {
        let mut s = lids_rdf::QuadStore::new();
        let tr = |a: &str, p: &str, b: &str| Quad::new(Term::iri(a), Term::iri(p), Term::iri(b));
        s.insert(&tr("t1", "type", "Table"));
        s.insert(&tr("t2", "type", "Table"));
        s.insert(&tr("c1", "type", "Column"));
        s.insert(&Quad::new(Term::iri("t1"), Term::iri("name"), Term::string("titanic")));
        s.insert(&Quad::new(Term::iri("t2"), Term::iri("name"), Term::string("heart_failure")));
        s.insert(&Quad::new(Term::iri("t1"), Term::iri("rows"), Term::integer(891)));
        s.insert(&Quad::new(Term::iri("t2"), Term::iri("rows"), Term::integer(300)));
        s.insert(&tr("t1", "hasColumn", "c1"));
        // RDF-star similarity edge
        s.insert(&Quad::new(
            Term::quoted(Term::iri("c1"), Term::iri("sim"), Term::iri("c2")),
            Term::iri("score"),
            Term::double(0.91),
        ));
        // named graph content
        s.insert(&Quad::in_graph(
            Term::iri("p1s1"),
            Term::iri("calls"),
            Term::iri("pandas.read_csv"),
            GraphName::named("http://pipeline/1"),
        ));
        s.insert(&Quad::in_graph(
            Term::iri("p2s1"),
            Term::iri("calls"),
            Term::iri("pandas.read_csv"),
            GraphName::named("http://pipeline/2"),
        ));
        s
    }

    fn run(q: &str) -> Solutions {
        let store = store();
        evaluate(&store, &parse_query(q).unwrap()).unwrap()
    }

    #[test]
    fn bgp_join() {
        let s = run("SELECT ?t ?n WHERE { ?t <type> <Table> . ?t <name> ?n . }");
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn filter_numeric() {
        let s = run("SELECT ?t WHERE { ?t <rows> ?r . FILTER(?r > 500) }");
        assert_eq!(s.len(), 1);
        assert_eq!(s.get_str(0, "t").as_deref(), Some("t1"));
    }

    #[test]
    fn filter_string_functions() {
        let s = run(
            r#"SELECT ?t WHERE { ?t <name> ?n . FILTER(CONTAINS(?n, "heart") || STRSTARTS(?n, "tit")) }"#,
        );
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn filter_regex() {
        let s = run(r#"SELECT ?t WHERE { ?t <name> ?n . FILTER(REGEX(?n, "^tit.*c$")) }"#);
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn optional_keeps_unmatched() {
        let s = run(
            "SELECT ?t ?c WHERE { ?t <type> <Table> . OPTIONAL { ?t <hasColumn> ?c . } } ORDER BY ?t",
        );
        assert_eq!(s.len(), 2);
        assert!(s.get(0, "c").is_some()); // t1 has a column
        assert!(s.get(1, "c").is_none()); // t2 does not
    }

    #[test]
    fn union_concatenates() {
        let s = run("SELECT ?x WHERE { { ?x <type> <Table> . } UNION { ?x <type> <Column> . } }");
        assert_eq!(s.len(), 3);
    }

    #[test]
    fn graph_variable_binds_named_graphs_only() {
        let s = run("SELECT DISTINCT ?g WHERE { GRAPH ?g { ?s <calls> ?lib . } }");
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn graph_fixed() {
        let s = run("SELECT ?s WHERE { GRAPH <http://pipeline/1> { ?s <calls> ?lib . } }");
        assert_eq!(s.len(), 1);
        assert_eq!(s.get_str(0, "s").as_deref(), Some("p1s1"));
    }

    #[test]
    fn default_scope_spans_all_graphs() {
        let s = run("SELECT ?s WHERE { ?s <calls> <pandas.read_csv> . }");
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn quoted_pattern_matching() {
        let s = run("SELECT ?a ?b ?v WHERE { << ?a <sim> ?b >> <score> ?v . }");
        assert_eq!(s.len(), 1);
        assert_eq!(s.get_str(0, "a").as_deref(), Some("c1"));
        assert_eq!(s.get_f64(0, "v"), Some(0.91));
    }

    #[test]
    fn count_group_order_limit() {
        let s = run(
            "SELECT ?lib (COUNT(?s) AS ?n) WHERE { ?s <calls> ?lib . } \
             GROUP BY ?lib ORDER BY DESC(?n) LIMIT 5",
        );
        assert_eq!(s.len(), 1);
        assert_eq!(s.get_f64(0, "n"), Some(2.0));
    }

    #[test]
    fn count_star_without_group() {
        let s = run("SELECT (COUNT(*) AS ?n) WHERE { ?t <type> <Table> . }");
        assert_eq!(s.get_f64(0, "n"), Some(2.0));
    }

    #[test]
    fn count_empty_is_zero() {
        let s = run("SELECT (COUNT(*) AS ?n) WHERE { ?t <type> <Nonexistent> . }");
        assert_eq!(s.get_f64(0, "n"), Some(0.0));
    }

    #[test]
    fn sum_avg_min_max() {
        let s = run(
            "SELECT (SUM(?r) AS ?s) (AVG(?r) AS ?a) (MIN(?r) AS ?mn) (MAX(?r) AS ?mx) \
             WHERE { ?t <rows> ?r . }",
        );
        assert_eq!(s.get_f64(0, "s"), Some(1191.0));
        assert_eq!(s.get_f64(0, "a"), Some(595.5));
        assert_eq!(s.get_f64(0, "mn"), Some(300.0));
        assert_eq!(s.get_f64(0, "mx"), Some(891.0));
    }

    #[test]
    fn ask_true_false() {
        let store = store();
        let yes = evaluate(&store, &parse_query("ASK { <t1> <type> <Table> . }").unwrap()).unwrap();
        assert_eq!(yes.ask, Some(true));
        let no = evaluate(&store, &parse_query("ASK { <t9> <type> <Table> . }").unwrap()).unwrap();
        assert_eq!(no.ask, Some(false));
    }

    #[test]
    fn distinct_dedups() {
        let s = run("SELECT DISTINCT ?lib WHERE { ?s <calls> ?lib . }");
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn order_by_ascending_variable() {
        let s = run("SELECT ?t ?r WHERE { ?t <rows> ?r . } ORDER BY ?r");
        assert_eq!(s.get_f64(0, "r"), Some(300.0));
        assert_eq!(s.get_f64(1, "r"), Some(891.0));
    }

    #[test]
    fn offset_skips() {
        let s = run("SELECT ?t WHERE { ?t <type> <Table> . } ORDER BY ?t LIMIT 1 OFFSET 1");
        assert_eq!(s.len(), 1);
        assert_eq!(s.get_str(0, "t").as_deref(), Some("t2"));
    }

    #[test]
    fn arithmetic_in_filter() {
        let s = run("SELECT ?t WHERE { ?t <rows> ?r . FILTER(?r * 2 - 100 > 1000) }");
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn bound_function() {
        let s = run(
            "SELECT ?t WHERE { ?t <type> <Table> . OPTIONAL { ?t <hasColumn> ?c . } FILTER(!BOUND(?c)) }",
        );
        assert_eq!(s.len(), 1);
        assert_eq!(s.get_str(0, "t").as_deref(), Some("t2"));
    }

    #[test]
    fn filter_error_is_false() {
        // comparing an unbound var: row dropped, not an error
        let s = run(
            "SELECT ?t WHERE { ?t <type> <Table> . OPTIONAL { ?t <hasColumn> ?c . } FILTER(?c = <c1>) }",
        );
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn unknown_constant_short_circuits() {
        // <never-seen> is not in the dictionary: the BGP compiles to Empty
        let s = run("SELECT ?x WHERE { ?x <type> <Table> . ?x <never-seen> ?y . }");
        assert_eq!(s.len(), 0);
    }

    #[test]
    fn parallel_join_matches_sequential() {
        let store = store();
        let query = parse_query(
            "SELECT ?t ?n ?r WHERE { ?t <type> <Table> . ?t <name> ?n . ?t <rows> ?r . }",
        )
        .unwrap();
        let sequential = evaluate_with(
            &store,
            &query,
            EvalOptions {
                reorder_joins: true,
                parallel_threshold: usize::MAX,
                vectorize: false,
                ..EvalOptions::default()
            },
        )
        .unwrap();
        // threshold 1: every join step takes the parallel path
        let parallel = evaluate_with(
            &store,
            &query,
            EvalOptions {
                reorder_joins: true,
                parallel_threshold: 1,
                vectorize: false,
                ..EvalOptions::default()
            },
        )
        .unwrap();
        assert_eq!(sequential.rows, parallel.rows);
    }

    #[test]
    fn options_builder_matches_literal() {
        let built = EvalOptions::builder().reorder_joins(false).parallel_threshold(7).build();
        assert!(!built.reorder_joins);
        assert_eq!(built.parallel_threshold, 7);
        // defaults flow through untouched knobs
        let default_built = EvalOptions::builder().build();
        assert!(default_built.reorder_joins);
        assert_eq!(default_built.parallel_threshold, EvalOptions::default().parallel_threshold);
    }

    #[test]
    fn explain_reports_est_and_actual_per_pattern() {
        let store = store();
        let query = parse_query(
            "SELECT ?t ?n ?r WHERE { ?t <type> <Table> . ?t <name> ?n . ?t <rows> ?r . }",
        )
        .unwrap();
        // row engine: the parallel/serial join counters below only move
        // on the per-row path
        let options = EvalOptions { vectorize: false, ..EvalOptions::default() };
        let (sols, report) = evaluate_explained(&store, &query, options).unwrap();
        assert_eq!(sols.len(), 2);
        assert_eq!(report.rows, 2);
        assert_eq!(report.patterns.len(), 3);
        for p in &report.patterns {
            assert!(p.satisfiable, "{}", p.pattern);
            assert!(p.order.is_some(), "{} was never joined", p.pattern);
            assert!(p.estimated_rows > 0, "{} has no estimate", p.pattern);
            assert!(p.actual_rows > 0, "{} matched nothing", p.pattern);
            assert!(p.scans > 0, "{} was never scanned", p.pattern);
        }
        // every join-order position 0..n assigned exactly once
        let mut positions: Vec<usize> = report.patterns.iter().filter_map(|p| p.order).collect();
        positions.sort_unstable();
        assert_eq!(positions, vec![0, 1, 2]);
        assert!(report.decoded_terms > 0);
        assert_eq!(report.parallel_joins + report.serial_joins, 3);
        // instrumentation must not change the answer
        let plain = evaluate(&store, &query).unwrap();
        assert_eq!(sols.rows, plain.rows);
    }

    #[test]
    fn explain_labels_vectorized_operators() {
        let store = store();
        let query = parse_query(
            "SELECT ?t ?n ?r WHERE { ?t <type> <Table> . ?t <name> ?n . ?t <rows> ?r . }",
        )
        .unwrap();
        let (sols, report) = evaluate_explained(&store, &query, EvalOptions::default()).unwrap();
        assert_eq!(sols.len(), 2);
        // a root star over ?t with constant predicates runs leapfrog
        assert_eq!(report.leapfrog_joins, 1);
        for p in &report.patterns {
            assert_eq!(p.operator, Some("leapfrog"), "{}", p.pattern);
            assert!(p.actual_rows > 0, "{} matched nothing", p.pattern);
        }
        // same answer as the row engine
        let row = evaluate_with(
            &store,
            &query,
            EvalOptions { vectorize: false, ..EvalOptions::default() },
        )
        .unwrap();
        let norm = |s: &Solutions| {
            let mut rows: Vec<String> = s.rows.iter().map(|r| format!("{r:?}")).collect();
            rows.sort();
            rows
        };
        assert_eq!(norm(&sols), norm(&row));
    }

    #[test]
    fn explain_marks_unsatisfiable_patterns() {
        let store = store();
        let query =
            parse_query("SELECT ?x WHERE { ?x <type> <Table> . ?x <never-seen> ?y . }").unwrap();
        let (sols, report) = evaluate_explained(&store, &query, EvalOptions::default()).unwrap();
        assert_eq!(sols.len(), 0);
        assert_eq!(report.patterns.len(), 2);
        let dead: Vec<_> = report.patterns.iter().filter(|p| !p.satisfiable).collect();
        assert_eq!(dead.len(), 1);
        assert!(dead[0].pattern.contains("never-seen"));
        assert_eq!(dead[0].order, None);
        let text = report.to_string();
        assert!(text.contains("unsatisfiable"));
    }

    #[test]
    fn explain_counts_optional_and_filter_decodes() {
        let store = store();
        let query = parse_query(
            "SELECT ?t WHERE { ?t <type> <Table> . OPTIONAL { ?t <hasColumn> ?c . } \
             FILTER(BOUND(?c)) }",
        )
        .unwrap();
        let (sols, report) = evaluate_explained(&store, &query, EvalOptions::default()).unwrap();
        assert_eq!(sols.len(), 1);
        // both the outer and the OPTIONAL pattern appear in the plan
        assert_eq!(report.patterns.len(), 2);
        assert!(report.patterns.iter().all(|p| p.order.is_some()));
    }

    #[test]
    fn matches_reference_on_fixture_queries() {
        let store = store();
        for q in [
            "SELECT ?t ?n WHERE { ?t <type> <Table> . ?t <name> ?n . }",
            "SELECT ?t ?c WHERE { ?t <type> <Table> . OPTIONAL { ?t <hasColumn> ?c . } }",
            "SELECT ?a ?b ?v WHERE { << ?a <sim> ?b >> <score> ?v . }",
            "SELECT ?g ?s WHERE { GRAPH ?g { ?s <calls> ?lib . } }",
        ] {
            let query = parse_query(q).unwrap();
            let encoded = evaluate_with(
                &store,
                &query,
                EvalOptions {
                    reorder_joins: false,
                    parallel_threshold: usize::MAX,
                    vectorize: false,
                    ..EvalOptions::default()
                },
            )
            .unwrap();
            let reference = crate::reference::evaluate(&store, &query).unwrap();
            assert_eq!(encoded.rows, reference.rows, "query: {q}");
        }
    }

    // ----------------------------------------------------- governance

    use lids_exec::{CancelToken, ErrorKind, LidsError, QueryLimits, TestClock, TripReason};
    use std::sync::Arc as StdArc;

    fn trip_of(err: SparqlError) -> TripReason {
        match err {
            SparqlError::Governed(trip) => trip.reason,
            other => panic!("expected governed error, got {other}"),
        }
    }

    const JOIN_Q: &str = "SELECT ?t ?n WHERE { ?t <type> <Table> . ?t <name> ?n . }";

    #[test]
    fn expired_deadline_trips_timeout() {
        let store = store();
        let query = parse_query(JOIN_Q).unwrap();
        let clock = TestClock::new();
        let limits = QueryLimits {
            deadline: Some(Duration::from_millis(50)),
            clock: Some(StdArc::clone(&clock) as StdArc<dyn lids_exec::Clock>),
            ..QueryLimits::default()
        };
        let governor = limits.arm().unwrap();
        clock.advance(Duration::from_millis(51));
        for vectorize in [false, true] {
            let opts = EvalOptions { vectorize, ..EvalOptions::default() };
            let err = evaluate_governed(&store, &query, opts, Some(&governor)).unwrap_err();
            assert_eq!(trip_of(err), TripReason::Timeout);
        }
    }

    #[test]
    fn tiny_memory_budget_trips_budget_exceeded() {
        let store = store();
        let query = parse_query(JOIN_Q).unwrap();
        for vectorize in [false, true] {
            let opts = EvalOptions::builder().memory_budget(8).vectorize(vectorize).build();
            let err = evaluate_with(&store, &query, opts).unwrap_err();
            assert_eq!(trip_of(err), TripReason::BudgetExceeded);
        }
    }

    #[test]
    fn cancelled_token_trips_cancelled() {
        let store = store();
        let query = parse_query(JOIN_Q).unwrap();
        let token = CancelToken::new();
        token.cancel();
        let limits = QueryLimits { cancel: Some(token), ..QueryLimits::default() };
        let governor = limits.arm().unwrap();
        let err = evaluate_governed(&store, &query, EvalOptions::default(), Some(&governor))
            .unwrap_err();
        assert_eq!(trip_of(err), TripReason::Cancelled);
    }

    #[test]
    fn governed_error_converts_to_typed_lids_error() {
        let store = store();
        let query = parse_query(JOIN_Q).unwrap();
        let opts = EvalOptions::builder().memory_budget(8).build();
        let err: LidsError = evaluate_with(&store, &query, opts).unwrap_err().into();
        assert_eq!(err.kind(), ErrorKind::QueryBudgetExceeded);
    }

    #[test]
    fn row_cap_truncates_and_flags() {
        let store = store();
        let query = parse_query(JOIN_Q).unwrap();
        for vectorize in [false, true] {
            let opts = EvalOptions::builder().row_cap(1).vectorize(vectorize).build();
            let sols = evaluate_with(&store, &query, opts).unwrap();
            assert!(sols.truncated, "cap must latch the truncated flag");
            assert!(sols.len() <= 1, "capped run must not exceed the cap");
        }
        // uncapped control: exact result, flag clear
        let sols = evaluate_with(&store, &query, EvalOptions::default()).unwrap();
        assert!(!sols.truncated);
        assert_eq!(sols.len(), 2);
    }

    #[test]
    fn cancel_after_checks_fault_injection_trips() {
        let store = store();
        let query = parse_query(JOIN_Q).unwrap();
        let limits =
            QueryLimits { cancel_after_checks: Some(1), ..QueryLimits::default() };
        let governor = limits.arm().unwrap();
        let err = evaluate_governed(&store, &query, EvalOptions::default(), Some(&governor))
            .unwrap_err();
        assert_eq!(trip_of(err), TripReason::Cancelled);
    }

    #[test]
    fn generous_limits_leave_results_exact() {
        let store = store();
        let query = parse_query(JOIN_Q).unwrap();
        let opts = EvalOptions::builder()
            .deadline(Duration::from_secs(60))
            .memory_budget(64 << 20)
            .build();
        let governed = evaluate_with(&store, &query, opts).unwrap();
        let plain = evaluate(&store, &query).unwrap();
        assert_eq!(governed.rows, plain.rows);
        assert!(!governed.truncated);
    }
}

