//! Query evaluation over a [`QuadStore`].
//!
//! Evaluation is binding-at-a-time nested-loop join with greedy pattern
//! ordering (most-bound-first), which together with the store's prefix
//! indexes reproduces the "leverage the built-in indices of RDF engines"
//! behaviour the paper relies on for fast discovery queries.

use std::cmp::Ordering;
use std::collections::HashSet;

use lids_rdf::{GraphName, QuadPattern, QuadStore, Term};

use crate::ast::*;
use crate::results::{term_text, Solutions, SparqlError};

/// A partial solution: one optional term per query variable.
type Binding = Vec<Option<Term>>;

/// Evaluate a parsed query against the store.
pub fn evaluate(store: &QuadStore, query: &Query) -> Result<Solutions, SparqlError> {
    evaluate_with(store, query, EvalOptions::default())
}

/// Evaluation knobs (benchmarking/ablation).
#[derive(Debug, Clone, Copy)]
pub struct EvalOptions {
    /// Greedy most-bound-first join ordering. Disabling it evaluates
    /// patterns in textual order — the ablation arm of the
    /// `sparql/join_ordering` bench.
    pub reorder_joins: bool,
}

impl Default for EvalOptions {
    fn default() -> Self {
        EvalOptions { reorder_joins: true }
    }
}

thread_local! {
    static REORDER: std::cell::Cell<bool> = const { std::cell::Cell::new(true) };
}

/// Evaluate with explicit options.
pub fn evaluate_with(
    store: &QuadStore,
    query: &Query,
    options: EvalOptions,
) -> Result<Solutions, SparqlError> {
    REORDER.with(|r| r.set(options.reorder_joins));
    let result = (|| {
        let nvars = query.variables.len();
        match &query.form {
            QueryForm::Ask(pattern) => {
                let bindings = eval_group(store, pattern, vec![vec![None; nvars]], None)?;
                Ok(Solutions {
                    columns: Vec::new(),
                    rows: Vec::new(),
                    ask: Some(!bindings.is_empty()),
                })
            }
            QueryForm::Select(select) => {
                let bindings = eval_group(store, &select.pattern, vec![vec![None; nvars]], None)?;
                project(query, select, bindings)
            }
        }
    })();
    REORDER.with(|r| r.set(true));
    result
}

// ---------------------------------------------------------------- patterns

fn eval_group(
    store: &QuadStore,
    group: &GroupPattern,
    mut bindings: Vec<Binding>,
    graph_ctx: Option<&NodePattern>,
) -> Result<Vec<Binding>, SparqlError> {
    for element in &group.elements {
        if bindings.is_empty() {
            return Ok(bindings);
        }
        bindings = match element {
            PatternElement::Triples(patterns) => {
                eval_triples(store, patterns, bindings, graph_ctx)
            }
            PatternElement::Filter(expr) => bindings
                .into_iter()
                .filter(|b| effective_bool(eval_expr(b, expr).ok().as_ref()).unwrap_or(false))
                .collect(),
            PatternElement::Optional(inner) => {
                let mut next = Vec::new();
                for binding in bindings {
                    let extended =
                        eval_group(store, inner, vec![binding.clone()], graph_ctx)?;
                    if extended.is_empty() {
                        next.push(binding);
                    } else {
                        next.extend(extended);
                    }
                }
                next
            }
            PatternElement::Graph(node, inner) => {
                eval_group(store, inner, bindings, Some(node))?
            }
            PatternElement::Union(branches) => {
                let mut next = Vec::new();
                for branch in branches {
                    next.extend(eval_group(store, branch, bindings.clone(), graph_ctx)?);
                }
                next
            }
        };
    }
    Ok(bindings)
}

fn eval_triples(
    store: &QuadStore,
    patterns: &[TriplePattern],
    bindings: Vec<Binding>,
    graph_ctx: Option<&NodePattern>,
) -> Vec<Binding> {
    let order = if REORDER.with(|r| r.get()) {
        order_patterns(patterns, &bindings)
    } else {
        (0..patterns.len()).collect()
    };
    let mut current = bindings;
    for &idx in &order {
        let pattern = &patterns[idx];
        let mut next = Vec::new();
        for binding in &current {
            match_one(store, pattern, binding, graph_ctx, &mut next);
        }
        current = next;
        if current.is_empty() {
            break;
        }
    }
    current
}

/// Greedy join ordering: repeatedly pick the pattern with the most positions
/// bound (constants or already-bound variables).
fn order_patterns(patterns: &[TriplePattern], bindings: &[Binding]) -> Vec<usize> {
    let mut bound: HashSet<VarId> = HashSet::new();
    if let Some(first) = bindings.first() {
        for (i, slot) in first.iter().enumerate() {
            if slot.is_some() {
                bound.insert(VarId(i as u16));
            }
        }
    }
    let score = |p: &TriplePattern, bound: &HashSet<VarId>| -> usize {
        [&p.subject, &p.predicate, &p.object]
            .iter()
            .map(|n| match n {
                NodePattern::Term(_) => 2,
                NodePattern::Var(v) => usize::from(bound.contains(v)) * 2,
                NodePattern::Quoted(_) => 1,
            })
            .sum()
    };
    let mut remaining: Vec<usize> = (0..patterns.len()).collect();
    let mut order = Vec::with_capacity(patterns.len());
    while !remaining.is_empty() {
        let (pos, &best) = remaining
            .iter()
            .enumerate()
            .max_by_key(|(_, &i)| score(&patterns[i], &bound))
            .unwrap();
        remaining.remove(pos);
        order.push(best);
        collect_vars(&patterns[best], &mut bound);
    }
    order
}

fn collect_vars(p: &TriplePattern, out: &mut HashSet<VarId>) {
    for n in [&p.subject, &p.predicate, &p.object] {
        collect_node_vars(n, out);
    }
}

fn collect_node_vars(n: &NodePattern, out: &mut HashSet<VarId>) {
    match n {
        NodePattern::Var(v) => {
            out.insert(*v);
        }
        NodePattern::Quoted(q) => collect_vars(q, out),
        NodePattern::Term(_) => {}
    }
}

/// Resolve a node pattern against a binding: a concrete term, or None (free).
fn resolve(node: &NodePattern, binding: &Binding) -> Option<Term> {
    match node {
        NodePattern::Term(t) => Some(t.clone()),
        NodePattern::Var(v) => binding[v.0 as usize].clone(),
        NodePattern::Quoted(q) => {
            let s = resolve(&q.subject, binding)?;
            let p = resolve(&q.predicate, binding)?;
            let o = resolve(&q.object, binding)?;
            Some(Term::quoted(s, p, o))
        }
    }
}

fn match_one(
    store: &QuadStore,
    pattern: &TriplePattern,
    binding: &Binding,
    graph_ctx: Option<&NodePattern>,
    out: &mut Vec<Binding>,
) {
    let s = resolve(&pattern.subject, binding);
    let p = resolve(&pattern.predicate, binding);
    let o = resolve(&pattern.object, binding);

    let mut qp = QuadPattern::any();
    if let Some(t) = &s {
        qp = qp.with_subject(t.clone());
    }
    if let Some(t) = &p {
        qp = qp.with_predicate(t.clone());
    }
    if let Some(t) = &o {
        qp = qp.with_object(t.clone());
    }

    // Graph scoping
    let mut graph_var: Option<VarId> = None;
    match graph_ctx {
        None => {}
        Some(NodePattern::Term(Term::Iri(iri))) => {
            qp = qp.with_graph(GraphName::named(iri.clone()));
        }
        Some(NodePattern::Var(v)) => match &binding[v.0 as usize] {
            Some(Term::Iri(iri)) => qp = qp.with_graph(GraphName::named(iri.clone())),
            Some(_) => return,
            None => graph_var = Some(*v),
        },
        Some(_) => return,
    }

    for quad in store.match_pattern(&qp) {
        let mut candidate = binding.clone();
        if !unify(&pattern.subject, &quad.subject, &mut candidate) {
            continue;
        }
        if !unify(&pattern.predicate, &quad.predicate, &mut candidate) {
            continue;
        }
        if !unify(&pattern.object, &quad.object, &mut candidate) {
            continue;
        }
        if let Some(v) = graph_var {
            match &quad.graph {
                GraphName::Named(iri) => candidate[v.0 as usize] = Some(Term::iri(iri.clone())),
                // GRAPH ?g ranges over named graphs only
                GraphName::Default => continue,
            }
        }
        out.push(candidate);
    }
}

/// Unify a node pattern with a concrete term under a binding.
fn unify(node: &NodePattern, term: &Term, binding: &mut Binding) -> bool {
    match node {
        NodePattern::Term(t) => t == term,
        NodePattern::Var(v) => {
            let slot = &mut binding[v.0 as usize];
            match slot {
                Some(existing) => existing == term,
                None => {
                    *slot = Some(term.clone());
                    true
                }
            }
        }
        NodePattern::Quoted(q) => match term {
            Term::Quoted(t) => {
                unify(&q.subject, &t.subject, binding)
                    && unify(&q.predicate, &t.predicate, binding)
                    && unify(&q.object, &t.object, binding)
            }
            _ => false,
        },
    }
}

// ------------------------------------------------------------- projection

fn project(
    query: &Query,
    select: &SelectQuery,
    bindings: Vec<Binding>,
) -> Result<Solutions, SparqlError> {
    let items: Vec<SelectItem> = match &select.projection {
        Projection::Star => (0..query.variables.len())
            .map(|i| SelectItem::Var(VarId(i as u16)))
            .collect(),
        Projection::Items(items) => items.clone(),
    };
    let has_aggregate = items
        .iter()
        .any(|i| matches!(i, SelectItem::Aggregate { .. }));

    let columns: Vec<String> = items
        .iter()
        .map(|i| match i {
            SelectItem::Var(v) | SelectItem::Aggregate { alias: v, .. } => {
                query.variables[v.0 as usize].clone()
            }
        })
        .collect();

    let mut rows: Vec<Vec<Option<Term>>> = if has_aggregate || !select.group_by.is_empty() {
        aggregate_rows(select, &items, bindings)?
    } else {
        bindings
            .iter()
            .map(|b| {
                items
                    .iter()
                    .map(|item| match item {
                        SelectItem::Var(v) => b[v.0 as usize].clone(),
                        SelectItem::Aggregate { .. } => unreachable!(),
                    })
                    .collect()
            })
            .collect()
    };

    // ORDER BY applies to projected rows; sort keys may reference any
    // variable, so for the non-aggregate path we sort bindings first.
    if !select.order_by.is_empty() {
        let col_of_var: Vec<Option<usize>> = (0..query.variables.len())
            .map(|vi| {
                items.iter().position(|it| match it {
                    SelectItem::Var(v) | SelectItem::Aggregate { alias: v, .. } => {
                        v.0 as usize == vi
                    }
                })
            })
            .collect();
        rows.sort_by(|a, b| {
            for key in &select.order_by {
                // Build a pseudo-binding view over the projected row.
                let va = eval_expr_with(a, &col_of_var, &key.expr);
                let vb = eval_expr_with(b, &col_of_var, &key.expr);
                let ord = compare_terms(va.as_ref().ok(), vb.as_ref().ok());
                let ord = if key.descending { ord.reverse() } else { ord };
                if ord != Ordering::Equal {
                    return ord;
                }
            }
            Ordering::Equal
        });
    }

    if select.distinct {
        let mut seen = HashSet::new();
        rows.retain(|r| seen.insert(format!("{r:?}")));
    }

    let offset = select.offset.unwrap_or(0);
    if offset > 0 {
        rows.drain(..offset.min(rows.len()));
    }
    if let Some(limit) = select.limit {
        rows.truncate(limit);
    }

    Ok(Solutions { columns, rows, ask: None })
}

fn aggregate_rows(
    select: &SelectQuery,
    items: &[SelectItem],
    bindings: Vec<Binding>,
) -> Result<Vec<Vec<Option<Term>>>, SparqlError> {
    use std::collections::BTreeMap;
    // Group key: rendered group-by values (terms compare via Debug ordering;
    // BTreeMap keeps output deterministic).
    let mut groups: BTreeMap<String, (Binding, Vec<Binding>)> = BTreeMap::new();
    for b in bindings {
        let key: String = select
            .group_by
            .iter()
            .map(|v| format!("{:?}|", b[v.0 as usize]))
            .collect();
        groups
            .entry(key)
            .or_insert_with(|| (b.clone(), Vec::new()))
            .1
            .push(b);
    }
    // With no GROUP BY but an aggregate: a single group over everything.
    if groups.is_empty() {
        // no solutions: aggregates over the empty group (COUNT = 0)
        let row = items
            .iter()
            .map(|item| match item {
                SelectItem::Aggregate { agg: Aggregate::Count { .. }, .. } => {
                    Some(Term::integer(0))
                }
                _ => None,
            })
            .collect();
        return Ok(vec![row]);
    }

    let mut rows = Vec::with_capacity(groups.len());
    for (_, (representative, members)) in groups {
        let row = items
            .iter()
            .map(|item| match item {
                SelectItem::Var(v) => representative[v.0 as usize].clone(),
                SelectItem::Aggregate { agg, .. } => eval_aggregate(agg, &members),
            })
            .collect();
        rows.push(row);
    }
    Ok(rows)
}

fn eval_aggregate(agg: &Aggregate, members: &[Binding]) -> Option<Term> {
    match agg {
        Aggregate::Count { distinct, var } => {
            let n = match var {
                None => members.len(),
                Some(v) => {
                    let iter = members.iter().filter_map(|b| b[v.0 as usize].as_ref());
                    if *distinct {
                        iter.collect::<HashSet<_>>().len()
                    } else {
                        iter.count()
                    }
                }
            };
            Some(Term::integer(n as i64))
        }
        Aggregate::Sum(v) | Aggregate::Avg(v) => {
            let values: Vec<f64> = members
                .iter()
                .filter_map(|b| b[v.0 as usize].as_ref())
                .filter_map(|t| t.as_literal().and_then(|l| l.as_f64()))
                .collect();
            if values.is_empty() {
                return Some(Term::double(0.0));
            }
            let sum: f64 = values.iter().sum();
            Some(Term::double(if matches!(agg, Aggregate::Avg(_)) {
                sum / values.len() as f64
            } else {
                sum
            }))
        }
        Aggregate::Min(v) | Aggregate::Max(v) => {
            let mut best: Option<&Term> = None;
            for b in members {
                if let Some(t) = b[v.0 as usize].as_ref() {
                    best = Some(match best {
                        None => t,
                        Some(cur) => {
                            let ord = compare_terms(Some(&t.clone()), Some(&cur.clone()));
                            let take = if matches!(agg, Aggregate::Min(_)) {
                                ord == Ordering::Less
                            } else {
                                ord == Ordering::Greater
                            };
                            if take {
                                t
                            } else {
                                cur
                            }
                        }
                    });
                }
            }
            best.cloned()
        }
    }
}

// ------------------------------------------------------------ expressions

/// Evaluate an expression against a binding. `Err(())` models SPARQL's
/// expression errors (unbound variables, type mismatches), which FILTER
/// treats as false.
fn eval_expr(binding: &Binding, expr: &Expr) -> Result<Term, ()> {
    match expr {
        Expr::Var(v) => binding[v.0 as usize].clone().ok_or(()),
        Expr::Const(t) => Ok(t.clone()),
        Expr::Not(e) => {
            let b = effective_bool(Some(&eval_expr(binding, e)?)).ok_or(())?;
            Ok(Term::boolean(!b))
        }
        Expr::Neg(e) => {
            let v = numeric(&eval_expr(binding, e)?).ok_or(())?;
            Ok(Term::double(-v))
        }
        Expr::Binary(op, l, r) => eval_binary(binding, *op, l, r),
        Expr::Call(func, args) => eval_call(binding, *func, args),
    }
}

/// Variant used for ORDER BY over projected rows: variables resolve through
/// the projection's column mapping.
fn eval_expr_with(
    row: &[Option<Term>],
    col_of_var: &[Option<usize>],
    expr: &Expr,
) -> Result<Term, ()> {
    match expr {
        Expr::Var(v) => col_of_var
            .get(v.0 as usize)
            .copied()
            .flatten()
            .and_then(|c| row[c].clone())
            .ok_or(()),
        Expr::Const(t) => Ok(t.clone()),
        Expr::Not(e) => {
            let b = effective_bool(Some(&eval_expr_with(row, col_of_var, e)?)).ok_or(())?;
            Ok(Term::boolean(!b))
        }
        Expr::Neg(e) => {
            let v = numeric(&eval_expr_with(row, col_of_var, e)?).ok_or(())?;
            Ok(Term::double(-v))
        }
        Expr::Binary(op, l, r) => {
            let lv = eval_expr_with(row, col_of_var, l);
            let rv = eval_expr_with(row, col_of_var, r);
            combine_binary(*op, lv, rv)
        }
        Expr::Call(..) => Err(()),
    }
}

fn eval_binary(binding: &Binding, op: BinOp, l: &Expr, r: &Expr) -> Result<Term, ()> {
    match op {
        BinOp::And => {
            let lv = effective_bool(eval_expr(binding, l).as_ref().ok()).ok_or(())?;
            if !lv {
                return Ok(Term::boolean(false));
            }
            let rv = effective_bool(eval_expr(binding, r).as_ref().ok()).ok_or(())?;
            Ok(Term::boolean(rv))
        }
        BinOp::Or => {
            let lv = effective_bool(eval_expr(binding, l).as_ref().ok());
            if lv == Some(true) {
                return Ok(Term::boolean(true));
            }
            let rv = effective_bool(eval_expr(binding, r).as_ref().ok());
            match (lv, rv) {
                (_, Some(true)) => Ok(Term::boolean(true)),
                (Some(false), Some(false)) => Ok(Term::boolean(false)),
                _ => Err(()),
            }
        }
        _ => {
            let lv = eval_expr(binding, l);
            let rv = eval_expr(binding, r);
            combine_binary(op, lv, rv)
        }
    }
}

fn combine_binary(op: BinOp, lv: Result<Term, ()>, rv: Result<Term, ()>) -> Result<Term, ()> {
    let lv = lv?;
    let rv = rv?;
    match op {
        BinOp::Add | BinOp::Sub | BinOp::Mul | BinOp::Div => {
            let a = numeric(&lv).ok_or(())?;
            let b = numeric(&rv).ok_or(())?;
            let out = match op {
                BinOp::Add => a + b,
                BinOp::Sub => a - b,
                BinOp::Mul => a * b,
                BinOp::Div => {
                    if b == 0.0 {
                        return Err(());
                    }
                    a / b
                }
                _ => unreachable!(),
            };
            Ok(Term::double(out))
        }
        BinOp::Eq => Ok(Term::boolean(terms_equal(&lv, &rv))),
        BinOp::Ne => Ok(Term::boolean(!terms_equal(&lv, &rv))),
        BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge => {
            let ord = compare_terms(Some(&lv), Some(&rv));
            Ok(Term::boolean(match op {
                BinOp::Lt => ord == Ordering::Less,
                BinOp::Le => ord != Ordering::Greater,
                BinOp::Gt => ord == Ordering::Greater,
                BinOp::Ge => ord != Ordering::Less,
                _ => unreachable!(),
            }))
        }
        BinOp::And | BinOp::Or => unreachable!("handled by eval_binary"),
    }
}

fn eval_call(binding: &Binding, func: Func, args: &[Expr]) -> Result<Term, ()> {
    match func {
        Func::Bound => match args.first() {
            Some(Expr::Var(v)) => Ok(Term::boolean(binding[v.0 as usize].is_some())),
            _ => Err(()),
        },
        Func::Str => {
            let t = eval_expr(binding, args.first().ok_or(())?)?;
            Ok(Term::string(term_text(&t)))
        }
        Func::LCase | Func::UCase => {
            let t = eval_expr(binding, args.first().ok_or(())?)?;
            let s = string_of(&t).ok_or(())?;
            Ok(Term::string(if func == Func::LCase {
                s.to_lowercase()
            } else {
                s.to_uppercase()
            }))
        }
        Func::Contains | Func::StrStarts => {
            if args.len() != 2 {
                return Err(());
            }
            let hay = string_of(&eval_expr(binding, &args[0])?).ok_or(())?;
            let needle = string_of(&eval_expr(binding, &args[1])?).ok_or(())?;
            Ok(Term::boolean(if func == Func::Contains {
                hay.contains(&needle)
            } else {
                hay.starts_with(&needle)
            }))
        }
        Func::Regex => {
            if args.len() != 2 {
                return Err(());
            }
            let hay = string_of(&eval_expr(binding, &args[0])?).ok_or(())?;
            let pat = string_of(&eval_expr(binding, &args[1])?).ok_or(())?;
            Ok(Term::boolean(simple_regex(&hay, &pat)))
        }
    }
}

fn string_of(t: &Term) -> Option<String> {
    match t {
        Term::Literal(l) => Some(l.lexical.clone()),
        Term::Iri(i) => Some(i.clone()),
        _ => None,
    }
}

fn numeric(t: &Term) -> Option<f64> {
    t.as_literal().and_then(|l| l.as_f64())
}

fn terms_equal(a: &Term, b: &Term) -> bool {
    if let (Some(x), Some(y)) = (numeric(a), numeric(b)) {
        return x == y;
    }
    a == b
}

/// SPARQL-ish ordering: unbound < numbers < strings < IRIs < other.
fn compare_terms(a: Option<&Term>, b: Option<&Term>) -> Ordering {
    fn rank(t: Option<&Term>) -> u8 {
        match t {
            None => 0,
            Some(t) => match t {
                Term::Literal(l) if l.as_f64().is_some() => 1,
                Term::Literal(_) => 2,
                Term::Iri(_) => 3,
                _ => 4,
            },
        }
    }
    let (ra, rb) = (rank(a), rank(b));
    if ra != rb {
        return ra.cmp(&rb);
    }
    match (a, b) {
        (Some(x), Some(y)) => {
            if let (Some(nx), Some(ny)) = (numeric(x), numeric(y)) {
                nx.partial_cmp(&ny).unwrap_or(Ordering::Equal)
            } else {
                term_text(x).cmp(&term_text(y))
            }
        }
        _ => Ordering::Equal,
    }
}

/// SPARQL effective boolean value.
fn effective_bool(t: Option<&Term>) -> Option<bool> {
    match t? {
        Term::Literal(l) => {
            if let Some(b) = l.as_bool() {
                Some(b)
            } else if let Some(n) = l.as_f64() {
                Some(n != 0.0)
            } else {
                Some(!l.lexical.is_empty())
            }
        }
        _ => None,
    }
}

/// Tiny regex: supports `.`, `*`, `+`, `?` (postfix on single atoms), `^`,
/// `$`, and `\`-escaped literals. Enough for the label filters the KGLiDS
/// interfaces issue; unanchored by default.
pub fn simple_regex(text: &str, pattern: &str) -> bool {
    let pat: Vec<char> = pattern.chars().collect();
    let txt: Vec<char> = text.chars().collect();
    let anchored_start = pat.first() == Some(&'^');
    let p = if anchored_start { &pat[1..] } else { &pat[..] };
    if anchored_start {
        return match_here(p, &txt);
    }
    for start in 0..=txt.len() {
        if match_here(p, &txt[start..]) {
            return true;
        }
    }
    false
}

fn match_here(pat: &[char], txt: &[char]) -> bool {
    if pat.is_empty() {
        return true;
    }
    if pat == ['$'] {
        return txt.is_empty();
    }
    // atom (+ optional escape)
    let (atom, alen): (Option<char>, usize) = if pat[0] == '\\' && pat.len() > 1 {
        (Some(pat[1]), 2)
    } else if pat[0] == '.' {
        (None, 1)
    } else {
        (Some(pat[0]), 1)
    };
    let quant = pat.get(alen).copied();
    let matches_atom = |c: char| atom.is_none_or(|a| a == c);
    match quant {
        Some('*') => {
            let rest = &pat[alen + 1..];
            let mut i = 0;
            loop {
                if match_here(rest, &txt[i..]) {
                    return true;
                }
                if i < txt.len() && matches_atom(txt[i]) {
                    i += 1;
                } else {
                    return false;
                }
            }
        }
        Some('+') => {
            let rest = &pat[alen + 1..];
            if txt.is_empty() || !matches_atom(txt[0]) {
                return false;
            }
            let mut i = 1;
            loop {
                if match_here(rest, &txt[i..]) {
                    return true;
                }
                if i < txt.len() && matches_atom(txt[i]) {
                    i += 1;
                } else {
                    return false;
                }
            }
        }
        Some('?') => {
            let rest = &pat[alen + 1..];
            if !txt.is_empty() && matches_atom(txt[0]) && match_here(rest, &txt[1..]) {
                return true;
            }
            match_here(rest, txt)
        }
        _ => {
            if !txt.is_empty() && matches_atom(txt[0]) {
                match_here(&pat[alen..], &txt[1..])
            } else {
                false
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_query;
    use lids_rdf::Quad;

    fn store() -> QuadStore {
        let mut s = QuadStore::new();
        let tr = |a: &str, p: &str, b: &str| Quad::new(Term::iri(a), Term::iri(p), Term::iri(b));
        s.insert(&tr("t1", "type", "Table"));
        s.insert(&tr("t2", "type", "Table"));
        s.insert(&tr("c1", "type", "Column"));
        s.insert(&Quad::new(Term::iri("t1"), Term::iri("name"), Term::string("titanic")));
        s.insert(&Quad::new(Term::iri("t2"), Term::iri("name"), Term::string("heart_failure")));
        s.insert(&Quad::new(Term::iri("t1"), Term::iri("rows"), Term::integer(891)));
        s.insert(&Quad::new(Term::iri("t2"), Term::iri("rows"), Term::integer(300)));
        s.insert(&tr("t1", "hasColumn", "c1"));
        // RDF-star similarity edge
        s.insert(&Quad::new(
            Term::quoted(Term::iri("c1"), Term::iri("sim"), Term::iri("c2")),
            Term::iri("score"),
            Term::double(0.91),
        ));
        // named graph content
        s.insert(&Quad::in_graph(
            Term::iri("p1s1"),
            Term::iri("calls"),
            Term::iri("pandas.read_csv"),
            GraphName::named("http://pipeline/1"),
        ));
        s.insert(&Quad::in_graph(
            Term::iri("p2s1"),
            Term::iri("calls"),
            Term::iri("pandas.read_csv"),
            GraphName::named("http://pipeline/2"),
        ));
        s
    }

    fn run(q: &str) -> Solutions {
        let store = store();
        evaluate(&store, &parse_query(q).unwrap()).unwrap()
    }

    #[test]
    fn bgp_join() {
        let s = run("SELECT ?t ?n WHERE { ?t <type> <Table> . ?t <name> ?n . }");
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn filter_numeric() {
        let s = run("SELECT ?t WHERE { ?t <rows> ?r . FILTER(?r > 500) }");
        assert_eq!(s.len(), 1);
        assert_eq!(s.get_str(0, "t").as_deref(), Some("t1"));
    }

    #[test]
    fn filter_string_functions() {
        let s = run(
            r#"SELECT ?t WHERE { ?t <name> ?n . FILTER(CONTAINS(?n, "heart") || STRSTARTS(?n, "tit")) }"#,
        );
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn filter_regex() {
        let s = run(r#"SELECT ?t WHERE { ?t <name> ?n . FILTER(REGEX(?n, "^tit.*c$")) }"#);
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn optional_keeps_unmatched() {
        let s = run(
            "SELECT ?t ?c WHERE { ?t <type> <Table> . OPTIONAL { ?t <hasColumn> ?c . } } ORDER BY ?t",
        );
        assert_eq!(s.len(), 2);
        assert!(s.get(0, "c").is_some()); // t1 has a column
        assert!(s.get(1, "c").is_none()); // t2 does not
    }

    #[test]
    fn union_concatenates() {
        let s = run("SELECT ?x WHERE { { ?x <type> <Table> . } UNION { ?x <type> <Column> . } }");
        assert_eq!(s.len(), 3);
    }

    #[test]
    fn graph_variable_binds_named_graphs_only() {
        let s = run("SELECT DISTINCT ?g WHERE { GRAPH ?g { ?s <calls> ?lib . } }");
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn graph_fixed() {
        let s = run("SELECT ?s WHERE { GRAPH <http://pipeline/1> { ?s <calls> ?lib . } }");
        assert_eq!(s.len(), 1);
        assert_eq!(s.get_str(0, "s").as_deref(), Some("p1s1"));
    }

    #[test]
    fn default_scope_spans_all_graphs() {
        let s = run("SELECT ?s WHERE { ?s <calls> <pandas.read_csv> . }");
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn quoted_pattern_matching() {
        let s = run("SELECT ?a ?b ?v WHERE { << ?a <sim> ?b >> <score> ?v . }");
        assert_eq!(s.len(), 1);
        assert_eq!(s.get_str(0, "a").as_deref(), Some("c1"));
        assert_eq!(s.get_f64(0, "v"), Some(0.91));
    }

    #[test]
    fn count_group_order_limit() {
        let s = run(
            "SELECT ?lib (COUNT(?s) AS ?n) WHERE { ?s <calls> ?lib . } \
             GROUP BY ?lib ORDER BY DESC(?n) LIMIT 5",
        );
        assert_eq!(s.len(), 1);
        assert_eq!(s.get_f64(0, "n"), Some(2.0));
    }

    #[test]
    fn count_star_without_group() {
        let s = run("SELECT (COUNT(*) AS ?n) WHERE { ?t <type> <Table> . }");
        assert_eq!(s.get_f64(0, "n"), Some(2.0));
    }

    #[test]
    fn count_empty_is_zero() {
        let s = run("SELECT (COUNT(*) AS ?n) WHERE { ?t <type> <Nonexistent> . }");
        assert_eq!(s.get_f64(0, "n"), Some(0.0));
    }

    #[test]
    fn sum_avg_min_max() {
        let s = run(
            "SELECT (SUM(?r) AS ?s) (AVG(?r) AS ?a) (MIN(?r) AS ?mn) (MAX(?r) AS ?mx) \
             WHERE { ?t <rows> ?r . }",
        );
        assert_eq!(s.get_f64(0, "s"), Some(1191.0));
        assert_eq!(s.get_f64(0, "a"), Some(595.5));
        assert_eq!(s.get_f64(0, "mn"), Some(300.0));
        assert_eq!(s.get_f64(0, "mx"), Some(891.0));
    }

    #[test]
    fn ask_true_false() {
        let store = store();
        let yes = evaluate(&store, &parse_query("ASK { <t1> <type> <Table> . }").unwrap()).unwrap();
        assert_eq!(yes.ask, Some(true));
        let no = evaluate(&store, &parse_query("ASK { <t9> <type> <Table> . }").unwrap()).unwrap();
        assert_eq!(no.ask, Some(false));
    }

    #[test]
    fn distinct_dedups() {
        let s = run("SELECT DISTINCT ?lib WHERE { ?s <calls> ?lib . }");
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn order_by_ascending_variable() {
        let s = run("SELECT ?t ?r WHERE { ?t <rows> ?r . } ORDER BY ?r");
        assert_eq!(s.get_f64(0, "r"), Some(300.0));
        assert_eq!(s.get_f64(1, "r"), Some(891.0));
    }

    #[test]
    fn offset_skips() {
        let s = run("SELECT ?t WHERE { ?t <type> <Table> . } ORDER BY ?t LIMIT 1 OFFSET 1");
        assert_eq!(s.len(), 1);
        assert_eq!(s.get_str(0, "t").as_deref(), Some("t2"));
    }

    #[test]
    fn arithmetic_in_filter() {
        let s = run("SELECT ?t WHERE { ?t <rows> ?r . FILTER(?r * 2 - 100 > 1000) }");
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn bound_function() {
        let s = run(
            "SELECT ?t WHERE { ?t <type> <Table> . OPTIONAL { ?t <hasColumn> ?c . } FILTER(!BOUND(?c)) }",
        );
        assert_eq!(s.len(), 1);
        assert_eq!(s.get_str(0, "t").as_deref(), Some("t2"));
    }

    #[test]
    fn simple_regex_features() {
        assert!(simple_regex("hello", "ell"));
        assert!(simple_regex("hello", "^hel"));
        assert!(simple_regex("hello", "o$"));
        assert!(!simple_regex("hello", "^ello"));
        assert!(simple_regex("aaab", "a+b"));
        assert!(simple_regex("ab", "a.*b"));
        assert!(simple_regex("ab", "ax?b"));
        assert!(simple_regex("a.b", "a\\.b"));
        assert!(!simple_regex("axb", "a\\.b"));
    }

    #[test]
    fn filter_error_is_false() {
        // comparing an unbound var: row dropped, not an error
        let s = run(
            "SELECT ?t WHERE { ?t <type> <Table> . OPTIONAL { ?t <hasColumn> ?c . } FILTER(?c = <c1>) }",
        );
        assert_eq!(s.len(), 1);
    }
}
