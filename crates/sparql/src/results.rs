//! Query results and error types.

use lids_exec::GovernorTrip;
use lids_rdf::Term;

/// Errors from parsing or evaluating a query.
#[derive(Debug, Clone, PartialEq)]
pub enum SparqlError {
    /// Syntax error at a byte offset.
    Parse { offset: usize, message: String },
    /// Semantic error during evaluation.
    Eval(String),
    /// The resource governor stopped the query (deadline, cancellation,
    /// or memory budget) before it completed.
    Governed(GovernorTrip),
}

impl SparqlError {
    /// The governor trip behind this error, if it is a governed stop.
    pub fn governor_trip(&self) -> Option<&GovernorTrip> {
        match self {
            SparqlError::Governed(trip) => Some(trip),
            _ => None,
        }
    }
}

impl std::fmt::Display for SparqlError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SparqlError::Parse { offset, message } => {
                write!(f, "parse error at byte {offset}: {message}")
            }
            SparqlError::Eval(m) => write!(f, "evaluation error: {m}"),
            SparqlError::Governed(trip) => write!(f, "{trip}"),
        }
    }
}

impl std::error::Error for SparqlError {}

/// Fold a query failure into the platform-wide error taxonomy, so
/// `KgLids::query`/`ask` can speak [`lids_exec::LidsResult`] like every
/// other public entry point. Governed stops keep their typed kind
/// (`QueryTimeout` / `QueryCancelled` / `QueryBudgetExceeded`); parse and
/// evaluation failures stay `SparqlError`.
impl From<SparqlError> for lids_exec::LidsError {
    fn from(e: SparqlError) -> Self {
        match e {
            SparqlError::Governed(trip) => trip.into(),
            other => {
                lids_exec::LidsError::new(lids_exec::ErrorKind::SparqlError, other.to_string())
            }
        }
    }
}

/// A solution sequence: named columns plus rows of optional terms
/// (`None` = unbound, e.g. from OPTIONAL).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Solutions {
    /// Projected variable names, in projection order.
    pub columns: Vec<String>,
    /// One row per solution; row length equals `columns.len()`.
    pub rows: Vec<Vec<Option<Term>>>,
    /// For ASK queries: the boolean result. SELECTs leave this `None`.
    pub ask: Option<bool>,
    /// True when a row cap truncated the intermediate binding sets: the
    /// rows present are valid solutions, but more may exist. Set only by
    /// governed evaluation running in degraded (row-capped) mode.
    pub truncated: bool,
}

impl Solutions {
    /// Number of solutions.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when there are no solutions.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Index of a column by name.
    pub fn column_index(&self, name: &str) -> Option<usize> {
        self.columns.iter().position(|c| c == name)
    }

    /// Iterate the terms bound to `column` across all rows (skipping unbound).
    pub fn column<'a>(&'a self, name: &str) -> Box<dyn Iterator<Item = &'a Term> + 'a> {
        match self.column_index(name) {
            Some(i) => Box::new(self.rows.iter().filter_map(move |r| r[i].as_ref())),
            None => Box::new(std::iter::empty()),
        }
    }

    /// Get the term at `(row, column-name)`.
    pub fn get(&self, row: usize, name: &str) -> Option<&Term> {
        let i = self.column_index(name)?;
        self.rows.get(row)?.get(i)?.as_ref()
    }

    /// Convenience: string form of the term at `(row, column)` — IRI text or
    /// literal lexical form.
    pub fn get_str(&self, row: usize, name: &str) -> Option<String> {
        self.get(row, name).map(term_text)
    }

    /// Convenience: numeric value at `(row, column)`.
    pub fn get_f64(&self, row: usize, name: &str) -> Option<f64> {
        match self.get(row, name)? {
            Term::Literal(l) => l.as_f64(),
            _ => None,
        }
    }
}

/// Human-facing text of a term: IRI string, bnode label, or lexical form.
pub fn term_text(t: &Term) -> String {
    match t {
        Term::Iri(i) => i.clone(),
        Term::BNode(b) => format!("_:{b}"),
        Term::Literal(l) => l.lexical.clone(),
        Term::Quoted(q) => format!(
            "<< {} {} {} >>",
            term_text(&q.subject),
            term_text(&q.predicate),
            term_text(&q.object)
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accessors() {
        let s = Solutions {
            columns: vec!["x".into(), "n".into()],
            rows: vec![
                vec![Some(Term::iri("a")), Some(Term::integer(3))],
                vec![Some(Term::iri("b")), None],
            ],
            ask: None,
            truncated: false,
        };
        assert_eq!(s.len(), 2);
        assert_eq!(s.get_str(0, "x").as_deref(), Some("a"));
        assert_eq!(s.get_f64(0, "n"), Some(3.0));
        assert_eq!(s.get(1, "n"), None);
        assert_eq!(s.column("x").count(), 2);
        assert_eq!(s.column("n").count(), 1);
        assert_eq!(s.column("missing").count(), 0);
    }

    #[test]
    fn term_text_forms() {
        assert_eq!(term_text(&Term::iri("http://x")), "http://x");
        assert_eq!(term_text(&Term::string("v")), "v");
        assert_eq!(term_text(&Term::BNode("b".into())), "_:b");
    }
}
