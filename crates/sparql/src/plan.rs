//! Prepared queries and the plan cache.
//!
//! The discovery interfaces in `lids-core` issue the same handful of
//! SPARQL texts over and over (`SEARCH_TABLES_QUERY` and friends), and
//! until now every call re-lexed, re-parsed, and re-compiled the query
//! against the store dictionary. [`PlanCache`] memoizes that work in
//! two tiers:
//!
//! 1. **text tier** — exact query string → [`PreparedQuery`]. A repeat
//!    call with byte-identical text does zero lexing, parsing, or
//!    planning.
//! 2. **shape tier** — on a text miss, the query is lexed once and
//!    normalized to a *shape*: the token stream with every constant
//!    (IRI, prefixed name, string, number) parameterized to a slot,
//!    plus the vector of slot values. Texts that differ only in
//!    whitespace, comments, or formatting share a shape and value
//!    vector and reuse the cached parse; texts that differ in constants
//!    share the shape but parse once per distinct value vector.
//!
//! A [`PreparedQuery`] additionally caches its *compiled* form (the
//! dictionary-encoded pattern tree) keyed on the store's
//! `(store_id, generation)` pair, so repeat executions against an
//! unchanged store skip term interning and join-estimate lookups too.
//! Any store mutation bumps the generation and transparently triggers
//! a recompile on next use.
//!
//! Cache-effectiveness counters ([`PlanCacheStats`]) are exported
//! through the `lids-obs` registry by `lids-core`, and back the
//! "second execution of an identical query does zero parse/plan work"
//! regression tests.

use std::collections::HashMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering::Relaxed};
use std::sync::{Arc, Mutex};

use lids_rdf::QuadStore;

use crate::ast::Query;
use crate::eval::{eval_compiled, Compiler, EncGroup, EvalOptions, ExecStats};
use crate::lexer::{tokenize, TokenKind};
use crate::parser::parse_query;
use crate::results::{Solutions, SparqlError};

/// Maximum distinct query texts remembered before the cache is cleared.
const MAX_TEXTS: usize = 512;
/// Maximum distinct shapes remembered before the cache is cleared.
const MAX_SHAPES: usize = 256;
/// Maximum constant-vector variants kept per shape.
const MAX_VARIANTS: usize = 8;

// --------------------------------------------------------------- prepared

/// Plan compiled against one store snapshot.
struct CachedPlan {
    store_id: u64,
    generation: u64,
    group: Arc<EncGroup>,
}

struct PreparedInner {
    query: Query,
    plan: Mutex<Option<CachedPlan>>,
    /// Shared with the owning [`PlanCache`] so compiles are observable.
    compiles: Arc<AtomicU64>,
}

/// A parsed query whose compiled plan is cached per store snapshot.
///
/// Cheap to clone (shared behind an `Arc`); safe to hold across store
/// mutations — the plan recompiles automatically when the store's
/// generation moves.
#[derive(Clone)]
pub struct PreparedQuery {
    inner: Arc<PreparedInner>,
}

impl PreparedQuery {
    /// Parse `text` into a standalone prepared query (not cached — use
    /// [`PlanCache::prepare`] to share parses across calls).
    pub fn parse(text: &str) -> Result<PreparedQuery, SparqlError> {
        Ok(PreparedQuery::from_query(parse_query(text)?, Arc::new(AtomicU64::new(0))))
    }

    fn from_query(query: Query, compiles: Arc<AtomicU64>) -> PreparedQuery {
        PreparedQuery {
            inner: Arc::new(PreparedInner { query, plan: Mutex::new(None), compiles }),
        }
    }

    /// The parsed form.
    pub fn query(&self) -> &Query {
        &self.inner.query
    }

    /// Execute against `store` with default options.
    pub fn execute(&self, store: &QuadStore) -> Result<Solutions, SparqlError> {
        self.execute_with(store, EvalOptions::default())
    }

    /// Execute against `store` with explicit options.
    pub fn execute_with(
        &self,
        store: &QuadStore,
        options: EvalOptions,
    ) -> Result<Solutions, SparqlError> {
        let group = self.plan_for(store);
        eval_compiled(store, &self.inner.query, options, &group, None, None)
    }

    /// Execute, filling `stats` with per-operator execution counts.
    pub fn execute_with_stats(
        &self,
        store: &QuadStore,
        options: EvalOptions,
        stats: &ExecStats,
    ) -> Result<Solutions, SparqlError> {
        let group = self.plan_for(store);
        eval_compiled(store, &self.inner.query, options, &group, None, Some(stats))
    }

    /// Compiled plan for this store snapshot, reusing the cached one
    /// when `(store_id, generation)` still matches.
    fn plan_for(&self, store: &QuadStore) -> Arc<EncGroup> {
        let mut slot = self.inner.plan.lock().unwrap();
        if let Some(plan) = slot.as_ref() {
            if plan.store_id == store.store_id() && plan.generation == store.generation() {
                return Arc::clone(&plan.group);
            }
        }
        let mut compiler = Compiler::new(store, &self.inner.query.variables, false);
        let group = Arc::new(compiler.compile_query(&self.inner.query));
        self.inner.compiles.fetch_add(1, Relaxed);
        *slot = Some(CachedPlan {
            store_id: store.store_id(),
            generation: store.generation(),
            group: Arc::clone(&group),
        });
        group
    }
}

// ------------------------------------------------------------ shape keys

/// Normalized token-stream shape plus the constants it parameterized
/// out, in token order.
struct Shape {
    key: String,
    values: Vec<String>,
}

/// Lex `text` and split it into a constant-free shape string and the
/// slot-value vector. Errors propagate (the caller would fail the same
/// way parsing).
fn shape_of(text: &str) -> Result<Shape, SparqlError> {
    let tokens = tokenize(text)?;
    let mut key = String::with_capacity(text.len() / 2);
    let mut values = Vec::new();
    for token in &tokens {
        match &token.kind {
            // constants → slots (the value participates in the variant
            // key, so any classification here is correctness-neutral)
            TokenKind::Iri(iri) => {
                key.push_str("<>·");
                values.push(format!("<{iri}>"));
            }
            TokenKind::PName(prefix, local) => {
                key.push_str("pn·");
                values.push(format!("{prefix}:{local}"));
            }
            TokenKind::String(s) => {
                key.push_str("\"\"·");
                values.push(s.clone());
            }
            TokenKind::Number(n) => {
                key.push_str("#·");
                values.push(n.clone());
            }
            // structure → verbatim
            TokenKind::Var(v) => {
                let _ = write!(key, "?{v}·");
            }
            TokenKind::Word(w) => {
                // keywords are case-insensitive; normalize
                let _ = write!(key, "{}·", w.to_ascii_lowercase());
            }
            TokenKind::LangTag(l) => {
                let _ = write!(key, "@{l}·");
            }
            TokenKind::BNode(b) => {
                let _ = write!(key, "_:{b}·");
            }
            other => {
                let _ = write!(key, "{other:?}·");
            }
        }
    }
    Ok(Shape { key, values })
}

// ------------------------------------------------------------- the cache

#[derive(Default)]
struct CacheMaps {
    by_text: HashMap<String, PreparedQuery>,
    by_shape: HashMap<String, Vec<(Vec<String>, PreparedQuery)>>,
}

/// Cache-effectiveness counters, snapshot by [`PlanCache::stats`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PlanCacheStats {
    /// Exact-text hits (no lexing at all).
    pub hits_text: u64,
    /// Shape-tier hits (lexed once, parse reused).
    pub hits_shape: u64,
    /// Full misses.
    pub misses: u64,
    /// Queries actually parsed.
    pub parses: u64,
    /// Plans compiled against a store snapshot.
    pub compiles: u64,
}

impl PlanCacheStats {
    /// Total cache hits across both tiers.
    pub fn hits(&self) -> u64 {
        self.hits_text + self.hits_shape
    }
}

/// Two-tier prepared-query cache. Thread-safe; share one per platform.
pub struct PlanCache {
    maps: Mutex<CacheMaps>,
    hits_text: AtomicU64,
    hits_shape: AtomicU64,
    misses: AtomicU64,
    parses: AtomicU64,
    compiles: Arc<AtomicU64>,
}

impl Default for PlanCache {
    fn default() -> Self {
        PlanCache {
            maps: Mutex::new(CacheMaps::default()),
            hits_text: AtomicU64::new(0),
            hits_shape: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            parses: AtomicU64::new(0),
            compiles: Arc::new(AtomicU64::new(0)),
        }
    }
}

impl PlanCache {
    pub fn new() -> PlanCache {
        PlanCache::default()
    }

    /// Prepared query for `text`, parsing at most once per distinct
    /// normalized shape + constant vector.
    pub fn prepare(&self, text: &str) -> Result<PreparedQuery, SparqlError> {
        let mut maps = self.maps.lock().unwrap();
        if let Some(prepared) = maps.by_text.get(text) {
            self.hits_text.fetch_add(1, Relaxed);
            return Ok(prepared.clone());
        }
        let shape = shape_of(text)?;
        if let Some(variants) = maps.by_shape.get(&shape.key) {
            if let Some((_, prepared)) = variants.iter().find(|(vals, _)| *vals == shape.values) {
                self.hits_shape.fetch_add(1, Relaxed);
                let prepared = prepared.clone();
                Self::remember_text(&mut maps, text, &prepared);
                return Ok(prepared);
            }
        }
        // full miss: parse once and remember under both tiers
        self.misses.fetch_add(1, Relaxed);
        let query = parse_query(text)?;
        self.parses.fetch_add(1, Relaxed);
        let prepared = PreparedQuery::from_query(query, Arc::clone(&self.compiles));
        if maps.by_shape.len() >= MAX_SHAPES {
            maps.by_shape.clear();
            maps.by_text.clear();
        }
        let variants = maps.by_shape.entry(shape.key).or_default();
        if variants.len() >= MAX_VARIANTS {
            variants.remove(0);
        }
        variants.push((shape.values, prepared.clone()));
        Self::remember_text(&mut maps, text, &prepared);
        Ok(prepared)
    }

    fn remember_text(maps: &mut CacheMaps, text: &str, prepared: &PreparedQuery) {
        if maps.by_text.len() >= MAX_TEXTS {
            maps.by_text.clear();
        }
        maps.by_text.insert(text.to_string(), prepared.clone());
    }

    /// Prepare and execute in one call (the drop-in replacement for
    /// [`crate::query`]).
    pub fn query(&self, store: &QuadStore, text: &str) -> Result<Solutions, SparqlError> {
        self.prepare(text)?.execute(store)
    }

    /// Current counter snapshot.
    pub fn stats(&self) -> PlanCacheStats {
        PlanCacheStats {
            hits_text: self.hits_text.load(Relaxed),
            hits_shape: self.hits_shape.load(Relaxed),
            misses: self.misses.load(Relaxed),
            parses: self.parses.load(Relaxed),
            compiles: self.compiles.load(Relaxed),
        }
    }

    /// Number of distinct prepared shapes currently cached.
    pub fn len(&self) -> usize {
        self.maps.lock().unwrap().by_shape.len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drop all cached entries (counters are preserved).
    pub fn clear(&self) {
        let mut maps = self.maps.lock().unwrap();
        maps.by_text.clear();
        maps.by_shape.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lids_rdf::{Quad, Term};

    fn store() -> QuadStore {
        let mut store = QuadStore::default();
        for i in 0..5 {
            store.insert(&Quad::new(
                Term::iri(format!("urn:t{i}")),
                Term::iri("urn:type"),
                Term::iri("urn:Table"),
            ));
            store.insert(&Quad::new(
                Term::iri(format!("urn:t{i}")),
                Term::iri("urn:name"),
                Term::string(format!("table-{i}")),
            ));
        }
        store
    }

    const Q: &str = "SELECT ?t ?n WHERE { ?t <urn:type> <urn:Table> . ?t <urn:name> ?n }";

    #[test]
    fn identical_text_parses_once() {
        let cache = PlanCache::new();
        let store = store();
        let a = cache.query(&store, Q).unwrap();
        let b = cache.query(&store, Q).unwrap();
        assert_eq!(a.rows.len(), 5);
        assert_eq!(a.rows.len(), b.rows.len());
        let stats = cache.stats();
        assert_eq!(stats.parses, 1);
        assert_eq!(stats.hits_text, 1);
        assert_eq!(stats.misses, 1);
    }

    #[test]
    fn whitespace_and_case_variants_share_a_shape() {
        let cache = PlanCache::new();
        let variant = "select ?t ?n\nwhere {\n  ?t <urn:type> <urn:Table> .\n  # lookup\n  ?t <urn:name> ?n\n}";
        cache.prepare(Q).unwrap();
        cache.prepare(variant).unwrap();
        let stats = cache.stats();
        assert_eq!(stats.parses, 1, "formatting variant must not re-parse");
        assert_eq!(stats.hits_shape, 1);
    }

    #[test]
    fn different_constants_parse_separately_then_hit() {
        let cache = PlanCache::new();
        let other = Q.replace("urn:Table", "urn:Column");
        cache.prepare(Q).unwrap();
        cache.prepare(&other).unwrap();
        cache.prepare(&other).unwrap();
        let stats = cache.stats();
        assert_eq!(stats.parses, 2);
        assert_eq!(stats.hits_text, 1);
    }

    #[test]
    fn compiled_plan_survives_until_store_mutates() {
        let cache = PlanCache::new();
        let mut store = store();
        let prepared = cache.prepare(Q).unwrap();
        prepared.execute(&store).unwrap();
        prepared.execute(&store).unwrap();
        assert_eq!(cache.stats().compiles, 1, "unchanged store must reuse the plan");
        store.insert(&Quad::new(
            Term::iri("urn:t9"),
            Term::iri("urn:type"),
            Term::iri("urn:Table"),
        ));
        let rows = prepared.execute(&store).unwrap();
        assert_eq!(cache.stats().compiles, 2, "generation bump must recompile");
        // the new row is only visible with a fresh compile
        assert!(rows.rows.len() >= 5);
    }

    #[test]
    fn prepared_results_match_direct_query() {
        let cache = PlanCache::new();
        let store = store();
        let direct = crate::query(&store, Q).unwrap();
        let prepared = cache.query(&store, Q).unwrap();
        let norm = |s: &Solutions| {
            let mut rows: Vec<String> = s.rows.iter().map(|r| format!("{r:?}")).collect();
            rows.sort();
            rows
        };
        assert_eq!(norm(&direct), norm(&prepared));
    }

    #[test]
    fn standalone_prepared_query_works() {
        let store = store();
        let prepared = PreparedQuery::parse(Q).unwrap();
        assert_eq!(prepared.execute(&store).unwrap().rows.len(), 5);
    }
}
