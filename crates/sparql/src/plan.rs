//! Prepared queries and the plan cache.
//!
//! The discovery interfaces in `lids-core` issue the same handful of
//! SPARQL texts over and over (`SEARCH_TABLES_QUERY` and friends), and
//! until now every call re-lexed, re-parsed, and re-compiled the query
//! against the store dictionary. [`PlanCache`] memoizes that work in
//! two tiers:
//!
//! 1. **text tier** — exact query string → [`PreparedQuery`]. A repeat
//!    call with byte-identical text does zero lexing, parsing, or
//!    planning.
//! 2. **shape tier** — on a text miss, the query is lexed once and
//!    normalized to a *shape*: the token stream with every constant
//!    (IRI, prefixed name, string, number) parameterized to a slot,
//!    plus the vector of slot values. Texts that differ only in
//!    whitespace, comments, or formatting share a shape and value
//!    vector and reuse the cached parse; texts that differ in constants
//!    share the shape but parse once per distinct value vector.
//!
//! A [`PreparedQuery`] additionally caches its *compiled* form (the
//! dictionary-encoded pattern tree) keyed on the store's
//! `(store_id, generation)` pair, so repeat executions against an
//! unchanged store skip term interning and join-estimate lookups too.
//! Any store mutation bumps the generation and transparently triggers
//! a recompile on next use.
//!
//! Cache-effectiveness counters ([`PlanCacheStats`]) are exported
//! through the `lids-obs` registry by `lids-core`, and back the
//! "second execution of an identical query does zero parse/plan work"
//! regression tests.

use std::collections::HashMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering::Relaxed};
use std::sync::{Arc, Mutex, MutexGuard};
use std::time::{Duration, Instant};

use lids_exec::{Clock, QueryGovernor, SystemClock};
use lids_rdf::StoreSnapshot;

use crate::ast::Query;
use crate::eval::{eval_compiled, Compiler, EncGroup, EvalOptions, ExecStats};
use crate::lexer::{tokenize, TokenKind};
use crate::parser::parse_query;
use crate::results::{Solutions, SparqlError};

/// Default maximum distinct query texts kept (LRU-evicted beyond this).
const MAX_TEXTS: usize = 512;
/// Default maximum distinct shapes kept (LRU-evicted beyond this).
const MAX_SHAPES: usize = 256;
/// Maximum constant-vector variants kept per shape.
const MAX_VARIANTS: usize = 8;

/// Recover a mutex guard even if a panicking holder poisoned it — the
/// caches hold plain data, so the worst a mid-panic writer leaves behind
/// is a stale-but-consistent entry.
fn relock<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    mutex.lock().unwrap_or_else(|e| e.into_inner())
}

// --------------------------------------------------------------- prepared

/// Plan compiled against one store snapshot.
struct CachedPlan {
    store_id: u64,
    generation: u64,
    group: Arc<EncGroup>,
}

struct PreparedInner {
    query: Query,
    plan: Mutex<Option<CachedPlan>>,
    /// Shared with the owning [`PlanCache`] so compiles are observable.
    compiles: Arc<AtomicU64>,
}

/// A parsed query whose compiled plan is cached per store snapshot.
///
/// Cheap to clone (shared behind an `Arc`); safe to hold across store
/// mutations — the plan recompiles automatically when the store's
/// generation moves.
#[derive(Clone)]
pub struct PreparedQuery {
    inner: Arc<PreparedInner>,
}

impl PreparedQuery {
    /// Parse `text` into a standalone prepared query (not cached — use
    /// [`PlanCache::prepare`] to share parses across calls).
    pub fn parse(text: &str) -> Result<PreparedQuery, SparqlError> {
        Ok(PreparedQuery::from_query(parse_query(text)?, Arc::new(AtomicU64::new(0))))
    }

    fn from_query(query: Query, compiles: Arc<AtomicU64>) -> PreparedQuery {
        PreparedQuery {
            inner: Arc::new(PreparedInner { query, plan: Mutex::new(None), compiles }),
        }
    }

    /// The parsed form.
    pub fn query(&self) -> &Query {
        &self.inner.query
    }

    /// Execute against `store` with default options.
    pub fn execute(&self, store: &StoreSnapshot) -> Result<Solutions, SparqlError> {
        self.execute_with(store, EvalOptions::default())
    }

    /// Execute against `store` with explicit options.
    pub fn execute_with(
        &self,
        store: &StoreSnapshot,
        options: EvalOptions,
    ) -> Result<Solutions, SparqlError> {
        let group = self.plan_for(store);
        eval_compiled(store, &self.inner.query, options, &group, None, None, None)
    }

    /// Execute, filling `stats` with per-operator execution counts.
    pub fn execute_with_stats(
        &self,
        store: &StoreSnapshot,
        options: EvalOptions,
        stats: &ExecStats,
    ) -> Result<Solutions, SparqlError> {
        let group = self.plan_for(store);
        eval_compiled(store, &self.inner.query, options, &group, None, Some(stats), None)
    }

    /// Execute under an externally armed [`QueryGovernor`]: deadline,
    /// cancellation, and memory budget are enforced at batch/row
    /// boundaries, sharing the governor's accounting with any other
    /// work charged against it.
    pub fn execute_governed(
        &self,
        store: &StoreSnapshot,
        options: EvalOptions,
        governor: Option<&QueryGovernor>,
        stats: Option<&ExecStats>,
    ) -> Result<Solutions, SparqlError> {
        let group = self.plan_for(store);
        eval_compiled(store, &self.inner.query, options, &group, None, stats, governor)
    }

    /// Compiled plan for this store snapshot, reusing the cached one
    /// when `(store_id, generation)` still matches.
    fn plan_for(&self, store: &StoreSnapshot) -> Arc<EncGroup> {
        let mut slot = relock(&self.inner.plan);
        if let Some(plan) = slot.as_ref() {
            if plan.store_id == store.store_id() && plan.generation == store.generation() {
                return Arc::clone(&plan.group);
            }
        }
        let mut compiler = Compiler::new(store, &self.inner.query.variables, false);
        let group = Arc::new(compiler.compile_query(&self.inner.query));
        self.inner.compiles.fetch_add(1, Relaxed);
        *slot = Some(CachedPlan {
            store_id: store.store_id(),
            generation: store.generation(),
            group: Arc::clone(&group),
        });
        group
    }
}

// ------------------------------------------------------------ shape keys

/// Normalized token-stream shape plus the constants it parameterized
/// out, in token order.
struct Shape {
    key: String,
    values: Vec<String>,
}

/// Lex `text` and split it into a constant-free shape string and the
/// slot-value vector. Errors propagate (the caller would fail the same
/// way parsing).
fn shape_of(text: &str) -> Result<Shape, SparqlError> {
    let tokens = tokenize(text)?;
    let mut key = String::with_capacity(text.len() / 2);
    let mut values = Vec::new();
    for token in &tokens {
        match &token.kind {
            // constants → slots (the value participates in the variant
            // key, so any classification here is correctness-neutral)
            TokenKind::Iri(iri) => {
                key.push_str("<>·");
                values.push(format!("<{iri}>"));
            }
            TokenKind::PName(prefix, local) => {
                key.push_str("pn·");
                values.push(format!("{prefix}:{local}"));
            }
            TokenKind::String(s) => {
                key.push_str("\"\"·");
                values.push(s.clone());
            }
            TokenKind::Number(n) => {
                key.push_str("#·");
                values.push(n.clone());
            }
            // structure → verbatim
            TokenKind::Var(v) => {
                let _ = write!(key, "?{v}·");
            }
            TokenKind::Word(w) => {
                // keywords are case-insensitive; normalize
                let _ = write!(key, "{}·", w.to_ascii_lowercase());
            }
            TokenKind::LangTag(l) => {
                let _ = write!(key, "@{l}·");
            }
            TokenKind::BNode(b) => {
                let _ = write!(key, "_:{b}·");
            }
            other => {
                let _ = write!(key, "{other:?}·");
            }
        }
    }
    Ok(Shape { key, values })
}

// ------------------------------------------------------------- the cache

/// One cached entry plus its last-touch tick for LRU eviction.
struct Stamped<T> {
    tick: u64,
    value: T,
}

/// Constant-vector variants cached under one shape key.
type ShapeVariants = Vec<(Vec<String>, PreparedQuery)>;

#[derive(Default)]
struct CacheMaps {
    by_text: HashMap<String, Stamped<PreparedQuery>>,
    by_shape: HashMap<String, Stamped<ShapeVariants>>,
    /// Monotonic touch counter; bumped on every hit or insert.
    tick: u64,
}

impl CacheMaps {
    fn next_tick(&mut self) -> u64 {
        self.tick += 1;
        self.tick
    }
}

/// Evict the least-recently-touched entry from `map` if it is at or
/// over `capacity`. O(len) scan — capacities are small (hundreds) and
/// eviction only runs on insert past capacity.
fn evict_lru<T>(map: &mut HashMap<String, Stamped<T>>, capacity: usize, evictions: &AtomicU64) {
    while map.len() >= capacity.max(1) {
        let oldest = map
            .iter()
            .min_by_key(|(_, stamped)| stamped.tick)
            .map(|(key, _)| key.clone());
        match oldest {
            Some(key) => {
                map.remove(&key);
                evictions.fetch_add(1, Relaxed);
            }
            None => break,
        }
    }
}

/// A query shape with a bad resource-governance record. Shapes whose
/// queries repeatedly trip the governor get quarantined: the platform
/// can fail them fast instead of burning a full deadline every time.
struct PoisonEntry {
    offenses: u32,
    poisoned_until: Option<Instant>,
}

/// Cache-effectiveness counters, snapshot by [`PlanCache::stats`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PlanCacheStats {
    /// Exact-text hits (no lexing at all).
    pub hits_text: u64,
    /// Shape-tier hits (lexed once, parse reused).
    pub hits_shape: u64,
    /// Full misses.
    pub misses: u64,
    /// Queries actually parsed.
    pub parses: u64,
    /// Plans compiled against a store snapshot.
    pub compiles: u64,
    /// Entries dropped by LRU eviction (text + shape tiers combined).
    pub evictions: u64,
    /// Distinct query texts currently cached.
    pub texts_len: usize,
    /// Distinct query shapes currently cached.
    pub shapes_len: usize,
}

impl PlanCacheStats {
    /// Total cache hits across both tiers.
    pub fn hits(&self) -> u64 {
        self.hits_text + self.hits_shape
    }
}

/// Two-tier prepared-query cache. Thread-safe; share one per platform.
///
/// Both tiers are bounded: inserts past capacity evict the
/// least-recently-used entry (exact LRU via per-entry touch ticks), and
/// the eviction count is exported through [`PlanCacheStats`]. The cache
/// also tracks *poisoned shapes* — query shapes whose executions keep
/// tripping the resource governor — so callers can fail repeat
/// offenders fast instead of re-burning a deadline on every arrival.
pub struct PlanCache {
    maps: Mutex<CacheMaps>,
    max_texts: usize,
    max_shapes: usize,
    poisoned: Mutex<HashMap<String, PoisonEntry>>,
    clock: Arc<dyn Clock>,
    hits_text: AtomicU64,
    hits_shape: AtomicU64,
    misses: AtomicU64,
    parses: AtomicU64,
    compiles: Arc<AtomicU64>,
    evictions: AtomicU64,
}

impl std::fmt::Debug for PlanCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PlanCache")
            .field("max_texts", &self.max_texts)
            .field("max_shapes", &self.max_shapes)
            .field("stats", &self.stats())
            .finish_non_exhaustive()
    }
}

impl Default for PlanCache {
    fn default() -> Self {
        PlanCache::with_capacity(MAX_TEXTS, MAX_SHAPES)
    }
}

impl PlanCache {
    pub fn new() -> PlanCache {
        PlanCache::default()
    }

    /// Cache bounded to `max_texts` exact-text entries and `max_shapes`
    /// shape entries (each clamped to at least 1).
    pub fn with_capacity(max_texts: usize, max_shapes: usize) -> PlanCache {
        PlanCache {
            maps: Mutex::new(CacheMaps::default()),
            max_texts: max_texts.max(1),
            max_shapes: max_shapes.max(1),
            poisoned: Mutex::new(HashMap::new()),
            clock: Arc::new(SystemClock),
            hits_text: AtomicU64::new(0),
            hits_shape: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            parses: AtomicU64::new(0),
            compiles: Arc::new(AtomicU64::new(0)),
            evictions: AtomicU64::new(0),
        }
    }

    /// Replace the clock used for poison TTLs (tests inject a virtual
    /// clock so quarantine expiry is deterministic).
    pub fn with_clock(mut self, clock: Arc<dyn Clock>) -> PlanCache {
        self.clock = clock;
        self
    }

    /// Prepared query for `text`, parsing at most once per distinct
    /// normalized shape + constant vector.
    pub fn prepare(&self, text: &str) -> Result<PreparedQuery, SparqlError> {
        let mut maps = relock(&self.maps);
        let tick = maps.next_tick();
        if let Some(entry) = maps.by_text.get_mut(text) {
            entry.tick = tick;
            self.hits_text.fetch_add(1, Relaxed);
            return Ok(entry.value.clone());
        }
        let shape = shape_of(text)?;
        if let Some(entry) = maps.by_shape.get_mut(&shape.key) {
            entry.tick = tick;
            if let Some((_, prepared)) =
                entry.value.iter().find(|(vals, _)| *vals == shape.values)
            {
                self.hits_shape.fetch_add(1, Relaxed);
                let prepared = prepared.clone();
                self.remember_text(&mut maps, tick, text, &prepared);
                return Ok(prepared);
            }
        }
        // full miss: parse once and remember under both tiers
        self.misses.fetch_add(1, Relaxed);
        let query = parse_query(text)?;
        self.parses.fetch_add(1, Relaxed);
        let prepared = PreparedQuery::from_query(query, Arc::clone(&self.compiles));
        if !maps.by_shape.contains_key(&shape.key) {
            evict_lru(&mut maps.by_shape, self.max_shapes, &self.evictions);
        }
        let entry = maps
            .by_shape
            .entry(shape.key)
            .or_insert_with(|| Stamped { tick, value: Vec::new() });
        entry.tick = tick;
        if entry.value.len() >= MAX_VARIANTS {
            entry.value.remove(0);
        }
        entry.value.push((shape.values, prepared.clone()));
        self.remember_text(&mut maps, tick, text, &prepared);
        Ok(prepared)
    }

    fn remember_text(&self, maps: &mut CacheMaps, tick: u64, text: &str, prepared: &PreparedQuery) {
        if !maps.by_text.contains_key(text) {
            evict_lru(&mut maps.by_text, self.max_texts, &self.evictions);
        }
        maps.by_text
            .insert(text.to_string(), Stamped { tick, value: prepared.clone() });
    }

    /// Prepare and execute in one call (the drop-in replacement for
    /// [`crate::query`]).
    pub fn query(&self, store: &StoreSnapshot, text: &str) -> Result<Solutions, SparqlError> {
        self.prepare(text)?.execute(store)
    }

    /// Current counter snapshot.
    pub fn stats(&self) -> PlanCacheStats {
        let (texts_len, shapes_len) = {
            let maps = relock(&self.maps);
            (maps.by_text.len(), maps.by_shape.len())
        };
        PlanCacheStats {
            hits_text: self.hits_text.load(Relaxed),
            hits_shape: self.hits_shape.load(Relaxed),
            misses: self.misses.load(Relaxed),
            parses: self.parses.load(Relaxed),
            compiles: self.compiles.load(Relaxed),
            evictions: self.evictions.load(Relaxed),
            texts_len,
            shapes_len,
        }
    }

    /// Number of distinct prepared shapes currently cached.
    pub fn len(&self) -> usize {
        relock(&self.maps).by_shape.len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drop all cached entries and quarantine records (counters are
    /// preserved).
    pub fn clear(&self) {
        let mut maps = relock(&self.maps);
        maps.by_text.clear();
        maps.by_shape.clear();
        relock(&self.poisoned).clear();
    }

    // ------------------------------------------------- shape quarantine

    /// Record that a query of this text's shape tripped the resource
    /// governor. After `threshold` offenses the shape is quarantined for
    /// `ttl`; returns `true` when this call crossed the threshold.
    /// Unlexable texts are never quarantined (they fail at parse anyway).
    pub fn record_offense(&self, text: &str, threshold: u32, ttl: Duration) -> bool {
        let Ok(shape) = shape_of(text) else { return false };
        let mut poisoned = relock(&self.poisoned);
        let entry = poisoned
            .entry(shape.key)
            .or_insert(PoisonEntry { offenses: 0, poisoned_until: None });
        entry.offenses = entry.offenses.saturating_add(1);
        if entry.offenses >= threshold.max(1) {
            entry.poisoned_until = Some(self.clock.now() + ttl);
            true
        } else {
            false
        }
    }

    /// Is this text's shape currently quarantined? Expired quarantines
    /// are cleared on observation (offense count resets — the shape gets
    /// a clean slate after serving its TTL).
    pub fn is_poisoned(&self, text: &str) -> bool {
        let Ok(shape) = shape_of(text) else { return false };
        let mut poisoned = relock(&self.poisoned);
        match poisoned.get(&shape.key).and_then(|e| e.poisoned_until) {
            Some(until) if self.clock.now() < until => true,
            Some(_) => {
                poisoned.remove(&shape.key);
                false
            }
            None => false,
        }
    }

    /// Number of shapes with at least one recorded offense.
    pub fn poisoned_len(&self) -> usize {
        relock(&self.poisoned).len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lids_rdf::{Quad, Term};

    fn store() -> lids_rdf::QuadStore {
        let mut store = lids_rdf::QuadStore::default();
        for i in 0..5 {
            store.insert(&Quad::new(
                Term::iri(format!("urn:t{i}")),
                Term::iri("urn:type"),
                Term::iri("urn:Table"),
            ));
            store.insert(&Quad::new(
                Term::iri(format!("urn:t{i}")),
                Term::iri("urn:name"),
                Term::string(format!("table-{i}")),
            ));
        }
        store
    }

    const Q: &str = "SELECT ?t ?n WHERE { ?t <urn:type> <urn:Table> . ?t <urn:name> ?n }";

    #[test]
    fn identical_text_parses_once() {
        let cache = PlanCache::new();
        let store = store();
        let a = cache.query(&store, Q).unwrap();
        let b = cache.query(&store, Q).unwrap();
        assert_eq!(a.rows.len(), 5);
        assert_eq!(a.rows.len(), b.rows.len());
        let stats = cache.stats();
        assert_eq!(stats.parses, 1);
        assert_eq!(stats.hits_text, 1);
        assert_eq!(stats.misses, 1);
    }

    #[test]
    fn whitespace_and_case_variants_share_a_shape() {
        let cache = PlanCache::new();
        let variant = "select ?t ?n\nwhere {\n  ?t <urn:type> <urn:Table> .\n  # lookup\n  ?t <urn:name> ?n\n}";
        cache.prepare(Q).unwrap();
        cache.prepare(variant).unwrap();
        let stats = cache.stats();
        assert_eq!(stats.parses, 1, "formatting variant must not re-parse");
        assert_eq!(stats.hits_shape, 1);
    }

    #[test]
    fn different_constants_parse_separately_then_hit() {
        let cache = PlanCache::new();
        let other = Q.replace("urn:Table", "urn:Column");
        cache.prepare(Q).unwrap();
        cache.prepare(&other).unwrap();
        cache.prepare(&other).unwrap();
        let stats = cache.stats();
        assert_eq!(stats.parses, 2);
        assert_eq!(stats.hits_text, 1);
    }

    #[test]
    fn compiled_plan_survives_until_store_mutates() {
        let cache = PlanCache::new();
        let mut store = store();
        let prepared = cache.prepare(Q).unwrap();
        prepared.execute(&store).unwrap();
        prepared.execute(&store).unwrap();
        assert_eq!(cache.stats().compiles, 1, "unchanged store must reuse the plan");
        store.insert(&Quad::new(
            Term::iri("urn:t9"),
            Term::iri("urn:type"),
            Term::iri("urn:Table"),
        ));
        let rows = prepared.execute(&store).unwrap();
        assert_eq!(cache.stats().compiles, 2, "generation bump must recompile");
        // the new row is only visible with a fresh compile
        assert!(rows.rows.len() >= 5);
    }

    #[test]
    fn prepared_results_match_direct_query() {
        let cache = PlanCache::new();
        let store = store();
        let direct = crate::query(&store, Q).unwrap();
        let prepared = cache.query(&store, Q).unwrap();
        let norm = |s: &Solutions| {
            let mut rows: Vec<String> = s.rows.iter().map(|r| format!("{r:?}")).collect();
            rows.sort();
            rows
        };
        assert_eq!(norm(&direct), norm(&prepared));
    }

    #[test]
    fn standalone_prepared_query_works() {
        let store = store();
        let prepared = PreparedQuery::parse(Q).unwrap();
        assert_eq!(prepared.execute(&store).unwrap().rows.len(), 5);
    }

    #[test]
    fn lru_evicts_least_recently_used_shape() {
        let cache = PlanCache::with_capacity(2, 2);
        let q = |n: usize| format!("SELECT ?s{n} WHERE {{ ?s{n} <urn:p{n}> ?o{n} }}");
        cache.prepare(&q(0)).unwrap();
        cache.prepare(&q(1)).unwrap();
        // touch q0 so q1 is now the LRU shape
        cache.prepare(&q(0)).unwrap();
        cache.prepare(&q(2)).unwrap();
        let stats = cache.stats();
        assert!(stats.evictions >= 1, "over-capacity insert must evict");
        assert_eq!(stats.shapes_len, 2);
        assert!(stats.texts_len <= 2);
        // q0 was kept: preparing it again is a hit, not a parse
        let parses_before = cache.stats().parses;
        cache.prepare(&q(0)).unwrap();
        assert_eq!(cache.stats().parses, parses_before, "retained entry must hit");
    }

    #[test]
    fn capacity_bound_holds_under_churn() {
        let cache = PlanCache::with_capacity(4, 4);
        for i in 0..64 {
            let text = format!("SELECT ?a WHERE {{ ?a <urn:churn{i}> ?b{i} }}");
            cache.prepare(&text).unwrap();
        }
        let stats = cache.stats();
        assert!(stats.texts_len <= 4);
        assert!(stats.shapes_len <= 4);
        assert!(stats.evictions >= 60);
    }

    #[test]
    fn repeat_offender_shape_is_quarantined_until_ttl() {
        use lids_exec::TestClock;
        let clock = TestClock::new();
        let cache =
            PlanCache::with_capacity(8, 8).with_clock(Arc::clone(&clock) as Arc<dyn Clock>);
        let ttl = Duration::from_secs(30);
        assert!(!cache.record_offense(Q, 3, ttl));
        assert!(!cache.is_poisoned(Q), "below threshold: not quarantined");
        assert!(!cache.record_offense(Q, 3, ttl));
        assert!(cache.record_offense(Q, 3, ttl), "third offense crosses threshold");
        assert!(cache.is_poisoned(Q));
        // formatting variant shares the shape, so it is quarantined too
        let variant = Q.to_lowercase().replace(' ', "  ");
        assert!(cache.is_poisoned(&variant));
        // a different shape is unaffected
        assert!(!cache.is_poisoned("SELECT ?x WHERE { ?x <urn:other> ?y }"));
        clock.advance(Duration::from_secs(31));
        assert!(!cache.is_poisoned(Q), "quarantine expires after TTL");
        assert!(!cache.is_poisoned(Q), "expiry clears the record");
    }
}
