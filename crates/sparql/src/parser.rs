//! Recursive-descent parser for the SPARQL subset.

use std::collections::HashMap;

use lids_rdf::term::xsd;
use lids_rdf::{Literal, Term};

use crate::ast::*;
use crate::lexer::{tokenize, Token, TokenKind};
use crate::results::SparqlError;

/// RDF namespace for the `a` keyword.
const RDF_TYPE: &str = "http://www.w3.org/1999/02/22-rdf-syntax-ns#type";

/// Parse a query string into a [`Query`].
pub fn parse_query(input: &str) -> Result<Query, SparqlError> {
    let tokens = tokenize(input)?;
    let mut parser = Parser {
        tokens,
        pos: 0,
        prefixes: HashMap::new(),
        variables: Vec::new(),
    };
    parser.parse()
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
    prefixes: HashMap<String, String>,
    variables: Vec<String>,
}

impl Parser {
    fn peek(&self) -> &TokenKind {
        &self.tokens[self.pos].kind
    }

    #[allow(dead_code)]
    fn peek2(&self) -> &TokenKind {
        &self.tokens[(self.pos + 1).min(self.tokens.len() - 1)].kind
    }

    fn advance(&mut self) -> TokenKind {
        let t = self.tokens[self.pos].kind.clone();
        if self.pos < self.tokens.len() - 1 {
            self.pos += 1;
        }
        t
    }

    fn err(&self, message: impl Into<String>) -> SparqlError {
        SparqlError::Parse {
            offset: self.tokens[self.pos].offset,
            message: message.into(),
        }
    }

    fn expect_keyword(&mut self, kw: &str) -> Result<(), SparqlError> {
        if self.peek().is_keyword(kw) {
            self.advance();
            Ok(())
        } else {
            Err(self.err(format!("expected keyword {kw}, found {:?}", self.peek())))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.peek().is_keyword(kw) {
            self.advance();
            true
        } else {
            false
        }
    }

    fn expect(&mut self, kind: TokenKind) -> Result<(), SparqlError> {
        if *self.peek() == kind {
            self.advance();
            Ok(())
        } else {
            Err(self.err(format!("expected {kind:?}, found {:?}", self.peek())))
        }
    }

    fn var(&mut self, name: &str) -> VarId {
        if let Some(i) = self.variables.iter().position(|v| v == name) {
            VarId(i as u16)
        } else {
            self.variables.push(name.to_string());
            VarId((self.variables.len() - 1) as u16)
        }
    }

    fn resolve_pname(&self, prefix: &str, local: &str) -> Result<String, SparqlError> {
        match self.prefixes.get(prefix) {
            Some(ns) => Ok(format!("{ns}{local}")),
            None => Err(self.err(format!("unknown prefix '{prefix}:'"))),
        }
    }

    fn parse(&mut self) -> Result<Query, SparqlError> {
        // Prologue
        while self.peek().is_keyword("PREFIX") {
            self.advance();
            let (prefix, local) = match self.advance() {
                TokenKind::PName(p, l) => (p, l),
                other => return Err(self.err(format!("expected prefix name, found {other:?}"))),
            };
            if !local.is_empty() {
                return Err(self.err("prefix declaration must end with ':'"));
            }
            let iri = match self.advance() {
                TokenKind::Iri(i) => i,
                other => return Err(self.err(format!("expected IRI, found {other:?}"))),
            };
            self.prefixes.insert(prefix, iri);
        }

        let form = if self.peek().is_keyword("SELECT") {
            self.advance();
            QueryForm::Select(self.parse_select()?)
        } else if self.peek().is_keyword("ASK") {
            self.advance();
            self.eat_keyword("WHERE");
            QueryForm::Ask(self.parse_group()?)
        } else {
            return Err(self.err("expected SELECT or ASK"));
        };

        if *self.peek() != TokenKind::Eof {
            return Err(self.err(format!("unexpected trailing token {:?}", self.peek())));
        }

        Ok(Query {
            variables: std::mem::take(&mut self.variables),
            form,
        })
    }

    fn parse_select(&mut self) -> Result<SelectQuery, SparqlError> {
        let distinct = self.eat_keyword("DISTINCT");
        let projection = if *self.peek() == TokenKind::Star {
            self.advance();
            Projection::Star
        } else {
            let mut items = Vec::new();
            loop {
                match self.peek().clone() {
                    TokenKind::Var(name) => {
                        self.advance();
                        let v = self.var(&name);
                        items.push(SelectItem::Var(v));
                    }
                    TokenKind::LParen => {
                        self.advance();
                        let agg = self.parse_aggregate()?;
                        self.expect_keyword("AS")?;
                        let alias = match self.advance() {
                            TokenKind::Var(n) => self.var(&n),
                            other => {
                                return Err(self.err(format!("expected variable, got {other:?}")))
                            }
                        };
                        self.expect(TokenKind::RParen)?;
                        items.push(SelectItem::Aggregate { agg, alias });
                    }
                    _ => break,
                }
            }
            if items.is_empty() {
                return Err(self.err("empty projection"));
            }
            Projection::Items(items)
        };

        self.eat_keyword("WHERE");
        let pattern = self.parse_group()?;

        let mut group_by = Vec::new();
        if self.eat_keyword("GROUP") {
            self.expect_keyword("BY")?;
            while let TokenKind::Var(name) = self.peek().clone() {
                self.advance();
                let v = self.var(&name);
                group_by.push(v);
            }
            if group_by.is_empty() {
                return Err(self.err("GROUP BY requires at least one variable"));
            }
        }

        let mut order_by = Vec::new();
        if self.eat_keyword("ORDER") {
            self.expect_keyword("BY")?;
            loop {
                match self.peek().clone() {
                    TokenKind::Var(name) => {
                        self.advance();
                        let v = self.var(&name);
                        order_by.push(OrderKey { expr: Expr::Var(v), descending: false });
                    }
                    TokenKind::Word(w)
                        if w.eq_ignore_ascii_case("ASC") || w.eq_ignore_ascii_case("DESC") =>
                    {
                        let descending = w.eq_ignore_ascii_case("DESC");
                        self.advance();
                        self.expect(TokenKind::LParen)?;
                        let expr = self.parse_expr()?;
                        self.expect(TokenKind::RParen)?;
                        order_by.push(OrderKey { expr, descending });
                    }
                    _ => break,
                }
            }
            if order_by.is_empty() {
                return Err(self.err("ORDER BY requires at least one key"));
            }
        }

        let mut limit = None;
        let mut offset = None;
        loop {
            if self.eat_keyword("LIMIT") {
                limit = Some(self.parse_usize()?);
            } else if self.eat_keyword("OFFSET") {
                offset = Some(self.parse_usize()?);
            } else {
                break;
            }
        }

        Ok(SelectQuery {
            distinct,
            projection,
            pattern,
            group_by,
            order_by,
            limit,
            offset,
        })
    }

    fn parse_usize(&mut self) -> Result<usize, SparqlError> {
        match self.advance() {
            TokenKind::Number(n) => n
                .parse()
                .map_err(|_| self.err(format!("invalid non-negative integer {n}"))),
            other => Err(self.err(format!("expected integer, found {other:?}"))),
        }
    }

    fn parse_aggregate(&mut self) -> Result<Aggregate, SparqlError> {
        let name = match self.advance() {
            TokenKind::Word(w) => w.to_ascii_uppercase(),
            other => return Err(self.err(format!("expected aggregate name, got {other:?}"))),
        };
        self.expect(TokenKind::LParen)?;
        let agg = match name.as_str() {
            "COUNT" => {
                if *self.peek() == TokenKind::Star {
                    self.advance();
                    Aggregate::Count { distinct: false, var: None }
                } else {
                    let distinct = self.eat_keyword("DISTINCT");
                    let var = match self.advance() {
                        TokenKind::Var(n) => self.var(&n),
                        other => return Err(self.err(format!("expected variable, got {other:?}"))),
                    };
                    Aggregate::Count { distinct, var: Some(var) }
                }
            }
            "SUM" | "AVG" | "MIN" | "MAX" => {
                let var = match self.advance() {
                    TokenKind::Var(n) => self.var(&n),
                    other => return Err(self.err(format!("expected variable, got {other:?}"))),
                };
                match name.as_str() {
                    "SUM" => Aggregate::Sum(var),
                    "AVG" => Aggregate::Avg(var),
                    "MIN" => Aggregate::Min(var),
                    _ => Aggregate::Max(var),
                }
            }
            other => return Err(self.err(format!("unsupported aggregate {other}"))),
        };
        self.expect(TokenKind::RParen)?;
        Ok(agg)
    }

    fn parse_group(&mut self) -> Result<GroupPattern, SparqlError> {
        self.expect(TokenKind::LBrace)?;
        let mut elements: Vec<PatternElement> = Vec::new();
        loop {
            match self.peek().clone() {
                TokenKind::RBrace => {
                    self.advance();
                    break;
                }
                TokenKind::Word(w) if w.eq_ignore_ascii_case("FILTER") => {
                    self.advance();
                    self.expect(TokenKind::LParen)?;
                    let expr = self.parse_expr()?;
                    self.expect(TokenKind::RParen)?;
                    elements.push(PatternElement::Filter(expr));
                }
                TokenKind::Word(w) if w.eq_ignore_ascii_case("OPTIONAL") => {
                    self.advance();
                    let inner = self.parse_group()?;
                    elements.push(PatternElement::Optional(inner));
                }
                TokenKind::Word(w) if w.eq_ignore_ascii_case("GRAPH") => {
                    self.advance();
                    let node = self.parse_node()?;
                    let inner = self.parse_group()?;
                    elements.push(PatternElement::Graph(node, inner));
                }
                TokenKind::LBrace => {
                    // sub-group, possibly a UNION chain
                    let first = self.parse_group()?;
                    if self.peek().is_keyword("UNION") {
                        let mut branches = vec![first];
                        while self.eat_keyword("UNION") {
                            branches.push(self.parse_group()?);
                        }
                        elements.push(PatternElement::Union(branches));
                    } else {
                        // plain group: splice
                        elements.extend(first.elements);
                    }
                }
                TokenKind::Dot => {
                    self.advance();
                }
                _ => {
                    let triples = self.parse_triples_block()?;
                    elements.push(PatternElement::Triples(triples));
                }
            }
        }
        Ok(GroupPattern { elements })
    }

    fn parse_triples_block(&mut self) -> Result<Vec<TriplePattern>, SparqlError> {
        let mut triples = Vec::new();
        loop {
            let subject = self.parse_node()?;
            // predicate-object list
            loop {
                let predicate = self.parse_predicate()?;
                loop {
                    let object = self.parse_node()?;
                    triples.push(TriplePattern {
                        subject: subject.clone(),
                        predicate: predicate.clone(),
                        object,
                    });
                    if *self.peek() == TokenKind::Comma {
                        self.advance();
                    } else {
                        break;
                    }
                }
                if *self.peek() == TokenKind::Semicolon {
                    self.advance();
                    // allow trailing ';' before '.' or '}'
                    if matches!(self.peek(), TokenKind::Dot | TokenKind::RBrace) {
                        break;
                    }
                } else {
                    break;
                }
            }
            if *self.peek() == TokenKind::Dot {
                self.advance();
                // end of block?
                if matches!(
                    self.peek(),
                    TokenKind::RBrace | TokenKind::Eof
                ) || self.peek().is_keyword("FILTER")
                    || self.peek().is_keyword("OPTIONAL")
                    || self.peek().is_keyword("GRAPH")
                    || *self.peek() == TokenKind::LBrace
                {
                    break;
                }
                // otherwise, next subject
            } else {
                break;
            }
        }
        Ok(triples)
    }

    fn parse_predicate(&mut self) -> Result<NodePattern, SparqlError> {
        if let TokenKind::Word(w) = self.peek() {
            if w == "a" {
                self.advance();
                return Ok(NodePattern::Term(Term::iri(RDF_TYPE)));
            }
        }
        self.parse_node()
    }

    fn parse_node(&mut self) -> Result<NodePattern, SparqlError> {
        match self.advance() {
            TokenKind::Iri(i) => Ok(NodePattern::Term(Term::Iri(i))),
            TokenKind::PName(p, l) => {
                let iri = self.resolve_pname(&p, &l)?;
                Ok(NodePattern::Term(Term::Iri(iri)))
            }
            TokenKind::Var(name) => Ok(NodePattern::Var(self.var(&name))),
            TokenKind::BNode(label) => Ok(NodePattern::Term(Term::BNode(label))),
            TokenKind::String(s) => Ok(NodePattern::Term(self.finish_literal(s)?)),
            TokenKind::Number(n) => Ok(NodePattern::Term(number_term(&n))),
            TokenKind::Word(w) if w.eq_ignore_ascii_case("true") => {
                Ok(NodePattern::Term(Term::boolean(true)))
            }
            TokenKind::Word(w) if w.eq_ignore_ascii_case("false") => {
                Ok(NodePattern::Term(Term::boolean(false)))
            }
            TokenKind::LQuote => {
                let s = self.parse_node()?;
                let p = self.parse_node()?;
                let o = self.parse_node()?;
                self.expect(TokenKind::RQuote)?;
                let tp = TriplePattern { subject: s, predicate: p, object: o };
                // fully ground quoted patterns collapse to a term
                if tp.subject.is_ground() && tp.predicate.is_ground() && tp.object.is_ground() {
                    Ok(NodePattern::Term(quoted_to_term(&tp)))
                } else {
                    Ok(NodePattern::Quoted(Box::new(tp)))
                }
            }
            other => Err(self.err(format!("expected RDF term, found {other:?}"))),
        }
    }

    fn finish_literal(&mut self, lexical: String) -> Result<Term, SparqlError> {
        match self.peek().clone() {
            TokenKind::DTypeSep => {
                self.advance();
                let datatype = match self.advance() {
                    TokenKind::Iri(i) => i,
                    TokenKind::PName(p, l) => self.resolve_pname(&p, &l)?,
                    other => return Err(self.err(format!("expected datatype IRI, got {other:?}"))),
                };
                Ok(Term::Literal(Literal { lexical, datatype, language: None }))
            }
            TokenKind::LangTag(lang) => {
                self.advance();
                Ok(Term::Literal(Literal {
                    lexical,
                    datatype: xsd::STRING.to_string(),
                    language: Some(lang),
                }))
            }
            _ => Ok(Term::string(lexical)),
        }
    }

    // ---- expressions (precedence climbing) ----

    fn parse_expr(&mut self) -> Result<Expr, SparqlError> {
        self.parse_or()
    }

    fn parse_or(&mut self) -> Result<Expr, SparqlError> {
        let mut left = self.parse_and()?;
        while *self.peek() == TokenKind::OrOr {
            self.advance();
            let right = self.parse_and()?;
            left = Expr::Binary(BinOp::Or, Box::new(left), Box::new(right));
        }
        Ok(left)
    }

    fn parse_and(&mut self) -> Result<Expr, SparqlError> {
        let mut left = self.parse_rel()?;
        while *self.peek() == TokenKind::AndAnd {
            self.advance();
            let right = self.parse_rel()?;
            left = Expr::Binary(BinOp::And, Box::new(left), Box::new(right));
        }
        Ok(left)
    }

    fn parse_rel(&mut self) -> Result<Expr, SparqlError> {
        let left = self.parse_add()?;
        let op = match self.peek() {
            TokenKind::Eq => BinOp::Eq,
            TokenKind::Ne => BinOp::Ne,
            TokenKind::Lt => BinOp::Lt,
            TokenKind::Le => BinOp::Le,
            TokenKind::Gt => BinOp::Gt,
            TokenKind::Ge => BinOp::Ge,
            _ => return Ok(left),
        };
        self.advance();
        let right = self.parse_add()?;
        Ok(Expr::Binary(op, Box::new(left), Box::new(right)))
    }

    fn parse_add(&mut self) -> Result<Expr, SparqlError> {
        let mut left = self.parse_mul()?;
        loop {
            let op = match self.peek() {
                TokenKind::Plus => BinOp::Add,
                TokenKind::Minus => BinOp::Sub,
                _ => break,
            };
            self.advance();
            let right = self.parse_mul()?;
            left = Expr::Binary(op, Box::new(left), Box::new(right));
        }
        Ok(left)
    }

    fn parse_mul(&mut self) -> Result<Expr, SparqlError> {
        let mut left = self.parse_unary()?;
        loop {
            let op = match self.peek() {
                TokenKind::Star => BinOp::Mul,
                TokenKind::Slash => BinOp::Div,
                _ => break,
            };
            self.advance();
            let right = self.parse_unary()?;
            left = Expr::Binary(op, Box::new(left), Box::new(right));
        }
        Ok(left)
    }

    fn parse_unary(&mut self) -> Result<Expr, SparqlError> {
        match self.peek() {
            TokenKind::Bang => {
                self.advance();
                Ok(Expr::Not(Box::new(self.parse_unary()?)))
            }
            TokenKind::Minus => {
                self.advance();
                Ok(Expr::Neg(Box::new(self.parse_unary()?)))
            }
            _ => self.parse_primary(),
        }
    }

    fn parse_primary(&mut self) -> Result<Expr, SparqlError> {
        match self.peek().clone() {
            TokenKind::LParen => {
                self.advance();
                let e = self.parse_expr()?;
                self.expect(TokenKind::RParen)?;
                Ok(e)
            }
            TokenKind::Var(name) => {
                self.advance();
                let v = self.var(&name);
                Ok(Expr::Var(v))
            }
            TokenKind::String(s) => {
                self.advance();
                Ok(Expr::Const(self.finish_literal(s)?))
            }
            TokenKind::Number(n) => {
                self.advance();
                Ok(Expr::Const(number_term(&n)))
            }
            TokenKind::Iri(i) => {
                self.advance();
                Ok(Expr::Const(Term::Iri(i)))
            }
            TokenKind::PName(p, l) => {
                self.advance();
                let iri = self.resolve_pname(&p, &l)?;
                Ok(Expr::Const(Term::Iri(iri)))
            }
            TokenKind::Word(w) => {
                let upper = w.to_ascii_uppercase();
                if upper == "TRUE" {
                    self.advance();
                    return Ok(Expr::Const(Term::boolean(true)));
                }
                if upper == "FALSE" {
                    self.advance();
                    return Ok(Expr::Const(Term::boolean(false)));
                }
                let func = match upper.as_str() {
                    "REGEX" => Func::Regex,
                    "CONTAINS" => Func::Contains,
                    "STRSTARTS" => Func::StrStarts,
                    "STR" => Func::Str,
                    "BOUND" => Func::Bound,
                    "LCASE" => Func::LCase,
                    "UCASE" => Func::UCase,
                    other => return Err(self.err(format!("unknown function {other}"))),
                };
                self.advance();
                self.expect(TokenKind::LParen)?;
                let mut args = Vec::new();
                if *self.peek() != TokenKind::RParen {
                    loop {
                        args.push(self.parse_expr()?);
                        if *self.peek() == TokenKind::Comma {
                            self.advance();
                        } else {
                            break;
                        }
                    }
                }
                self.expect(TokenKind::RParen)?;
                Ok(Expr::Call(func, args))
            }
            other => Err(self.err(format!("expected expression, found {other:?}"))),
        }
    }
}

fn number_term(lexical: &str) -> Term {
    if lexical.contains('.') || lexical.contains('e') || lexical.contains('E') {
        Term::Literal(Literal {
            lexical: lexical.to_string(),
            datatype: xsd::DOUBLE.to_string(),
            language: None,
        })
    } else {
        Term::Literal(Literal {
            lexical: lexical.to_string(),
            datatype: xsd::INTEGER.to_string(),
            language: None,
        })
    }
}

fn quoted_to_term(tp: &TriplePattern) -> Term {
    fn node_term(n: &NodePattern) -> Term {
        match n {
            NodePattern::Term(t) => t.clone(),
            NodePattern::Quoted(q) => quoted_to_term(q),
            NodePattern::Var(_) => unreachable!("caller checked groundness"),
        }
    }
    Term::quoted(
        node_term(&tp.subject),
        node_term(&tp.predicate),
        node_term(&tp.object),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_simple_select() {
        let q = parse_query("SELECT ?x WHERE { ?x a <http://C> . }").unwrap();
        assert_eq!(q.variables, vec!["x"]);
        let QueryForm::Select(s) = &q.form else { panic!() };
        assert!(!s.distinct);
        let PatternElement::Triples(t) = &s.pattern.elements[0] else { panic!() };
        assert_eq!(t.len(), 1);
        assert_eq!(t[0].predicate, NodePattern::Term(Term::iri(RDF_TYPE)));
    }

    #[test]
    fn prefixes_resolve() {
        let q = parse_query(
            "PREFIX k: <http://kglids.org/ontology/> SELECT ?t WHERE { ?t a k:Table . }",
        )
        .unwrap();
        let QueryForm::Select(s) = &q.form else { panic!() };
        let PatternElement::Triples(t) = &s.pattern.elements[0] else { panic!() };
        assert_eq!(
            t[0].object,
            NodePattern::Term(Term::iri("http://kglids.org/ontology/Table"))
        );
    }

    #[test]
    fn unknown_prefix_is_error() {
        assert!(parse_query("SELECT ?x WHERE { ?x a k:Table . }").is_err());
    }

    #[test]
    fn semicolon_and_comma_abbreviations() {
        let q = parse_query("SELECT ?s WHERE { ?s <p> <o1>, <o2> ; <q> <o3> . }").unwrap();
        let QueryForm::Select(s) = &q.form else { panic!() };
        let PatternElement::Triples(t) = &s.pattern.elements[0] else { panic!() };
        assert_eq!(t.len(), 3);
        assert_eq!(t[0].subject, t[2].subject);
    }

    #[test]
    fn filter_optional_graph_union() {
        let q = parse_query(
            r#"SELECT ?x ?y WHERE {
                ?x <p> ?y .
                FILTER(?y > 3 && CONTAINS(STR(?x), "col"))
                OPTIONAL { ?x <label> ?l . }
                GRAPH ?g { ?x <inpipe> ?st . }
                { ?x <k1> ?v . } UNION { ?x <k2> ?v . }
            }"#,
        )
        .unwrap();
        let QueryForm::Select(s) = &q.form else { panic!() };
        assert_eq!(s.pattern.elements.len(), 5);
        assert!(matches!(s.pattern.elements[1], PatternElement::Filter(_)));
        assert!(matches!(s.pattern.elements[2], PatternElement::Optional(_)));
        assert!(matches!(s.pattern.elements[3], PatternElement::Graph(_, _)));
        assert!(matches!(&s.pattern.elements[4], PatternElement::Union(b) if b.len() == 2));
    }

    #[test]
    fn aggregates_group_order_limit() {
        let q = parse_query(
            "SELECT ?lib (COUNT(DISTINCT ?p) AS ?n) WHERE { ?p <calls> ?lib . } \
             GROUP BY ?lib ORDER BY DESC(?n) LIMIT 10 OFFSET 5",
        )
        .unwrap();
        let QueryForm::Select(s) = &q.form else { panic!() };
        assert_eq!(s.group_by.len(), 1);
        assert_eq!(s.order_by.len(), 1);
        assert!(s.order_by[0].descending);
        assert_eq!(s.limit, Some(10));
        assert_eq!(s.offset, Some(5));
        let Projection::Items(items) = &s.projection else { panic!() };
        assert!(matches!(
            items[1],
            SelectItem::Aggregate { agg: Aggregate::Count { distinct: true, var: Some(_) }, .. }
        ));
    }

    #[test]
    fn quoted_triple_patterns() {
        let q = parse_query(
            "SELECT ?a ?b ?score WHERE { << ?a <sim> ?b >> <score> ?score . }",
        )
        .unwrap();
        let QueryForm::Select(s) = &q.form else { panic!() };
        let PatternElement::Triples(t) = &s.pattern.elements[0] else { panic!() };
        assert!(matches!(t[0].subject, NodePattern::Quoted(_)));
    }

    #[test]
    fn ground_quoted_collapses_to_term() {
        let q = parse_query("SELECT ?s WHERE { << <a> <p> <b> >> <score> ?s . }").unwrap();
        let QueryForm::Select(s) = &q.form else { panic!() };
        let PatternElement::Triples(t) = &s.pattern.elements[0] else { panic!() };
        assert!(matches!(&t[0].subject, NodePattern::Term(Term::Quoted(_))));
    }

    #[test]
    fn ask_form() {
        let q = parse_query("ASK { <a> <p> <b> . }").unwrap();
        assert!(matches!(q.form, QueryForm::Ask(_)));
    }

    #[test]
    fn typed_and_lang_literals() {
        let q = parse_query(
            r#"SELECT ?x WHERE { ?x <p> "0.5"^^<http://www.w3.org/2001/XMLSchema#double> ; <q> "hi"@en . }"#,
        )
        .unwrap();
        let QueryForm::Select(s) = &q.form else { panic!() };
        let PatternElement::Triples(t) = &s.pattern.elements[0] else { panic!() };
        let NodePattern::Term(Term::Literal(l)) = &t[0].object else { panic!() };
        assert_eq!(l.as_f64(), Some(0.5));
        let NodePattern::Term(Term::Literal(l2)) = &t[1].object else { panic!() };
        assert_eq!(l2.language.as_deref(), Some("en"));
    }

    #[test]
    fn rejects_trailing_tokens() {
        assert!(parse_query("SELECT ?x WHERE { ?x <p> <o> . } garbage").is_err());
    }

    #[test]
    fn numeric_literals_in_patterns() {
        let q = parse_query("SELECT ?x WHERE { ?x <p> 42 ; <q> 3.5 . }").unwrap();
        let QueryForm::Select(s) = &q.form else { panic!() };
        let PatternElement::Triples(t) = &s.pattern.elements[0] else { panic!() };
        let NodePattern::Term(Term::Literal(l)) = &t[0].object else { panic!() };
        assert_eq!(l.as_i64(), Some(42));
    }
}
