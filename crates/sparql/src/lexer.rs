//! SPARQL tokenizer.

use crate::results::SparqlError;

/// A lexed token with its starting byte offset (for error messages).
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    pub kind: TokenKind,
    pub offset: usize,
}

/// Token kinds for the supported SPARQL subset.
#[derive(Debug, Clone, PartialEq)]
pub enum TokenKind {
    /// `<http://...>`
    Iri(String),
    /// `prefix:local` — split into (prefix, local). Prefix may be empty.
    PName(String, String),
    /// `?name` or `$name`
    Var(String),
    /// String literal body (unescaped), before any `^^` / `@`.
    String(String),
    /// `@lang` following a string
    LangTag(String),
    /// Integer or decimal literal, kept lexical.
    Number(String),
    /// Bare word: keyword or `a`.
    Word(String),
    /// `_:label`
    BNode(String),
    LBrace,
    RBrace,
    LParen,
    RParen,
    Dot,
    Semicolon,
    Comma,
    Star,
    /// `<<`
    LQuote,
    /// `>>`
    RQuote,
    /// `^^`
    DTypeSep,
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
    AndAnd,
    OrOr,
    Bang,
    Plus,
    Minus,
    Slash,
    Eof,
}

impl TokenKind {
    /// True when this is the given case-insensitive keyword.
    pub fn is_keyword(&self, kw: &str) -> bool {
        matches!(self, TokenKind::Word(w) if w.eq_ignore_ascii_case(kw))
    }
}

/// Owned string from a byte range the scanner already verified to be
/// ASCII (alphanumerics plus `_`/`-`/`.`); lossy conversion can never
/// actually replace anything here, it just avoids an unreachable panic
/// path.
fn ascii_str(bytes: &[u8]) -> String {
    String::from_utf8_lossy(bytes).into_owned()
}

/// Tokenize a query string.
pub fn tokenize(input: &str) -> Result<Vec<Token>, SparqlError> {
    let bytes = input.as_bytes();
    let mut tokens = Vec::new();
    let mut pos = 0usize;

    let err = |pos: usize, msg: String| SparqlError::Parse {
        offset: pos,
        message: msg,
    };

    while pos < bytes.len() {
        let c = bytes[pos];
        match c {
            b' ' | b'\t' | b'\r' | b'\n' => {
                pos += 1;
            }
            b'#' => {
                while pos < bytes.len() && bytes[pos] != b'\n' {
                    pos += 1;
                }
            }
            b'{' => {
                tokens.push(Token { kind: TokenKind::LBrace, offset: pos });
                pos += 1;
            }
            b'}' => {
                tokens.push(Token { kind: TokenKind::RBrace, offset: pos });
                pos += 1;
            }
            b'(' => {
                tokens.push(Token { kind: TokenKind::LParen, offset: pos });
                pos += 1;
            }
            b')' => {
                tokens.push(Token { kind: TokenKind::RParen, offset: pos });
                pos += 1;
            }
            b';' => {
                tokens.push(Token { kind: TokenKind::Semicolon, offset: pos });
                pos += 1;
            }
            b',' => {
                tokens.push(Token { kind: TokenKind::Comma, offset: pos });
                pos += 1;
            }
            b'*' => {
                tokens.push(Token { kind: TokenKind::Star, offset: pos });
                pos += 1;
            }
            b'+' => {
                tokens.push(Token { kind: TokenKind::Plus, offset: pos });
                pos += 1;
            }
            b'/' => {
                tokens.push(Token { kind: TokenKind::Slash, offset: pos });
                pos += 1;
            }
            b'=' => {
                tokens.push(Token { kind: TokenKind::Eq, offset: pos });
                pos += 1;
            }
            b'!' => {
                if bytes.get(pos + 1) == Some(&b'=') {
                    tokens.push(Token { kind: TokenKind::Ne, offset: pos });
                    pos += 2;
                } else {
                    tokens.push(Token { kind: TokenKind::Bang, offset: pos });
                    pos += 1;
                }
            }
            b'&' => {
                if bytes.get(pos + 1) == Some(&b'&') {
                    tokens.push(Token { kind: TokenKind::AndAnd, offset: pos });
                    pos += 2;
                } else {
                    return Err(err(pos, "expected '&&'".into()));
                }
            }
            b'|' => {
                if bytes.get(pos + 1) == Some(&b'|') {
                    tokens.push(Token { kind: TokenKind::OrOr, offset: pos });
                    pos += 2;
                } else {
                    return Err(err(pos, "expected '||'".into()));
                }
            }
            b'^' => {
                if bytes.get(pos + 1) == Some(&b'^') {
                    tokens.push(Token { kind: TokenKind::DTypeSep, offset: pos });
                    pos += 2;
                } else {
                    return Err(err(pos, "expected '^^'".into()));
                }
            }
            b'<' => {
                // '<<', '<=', '<' or IRI
                if bytes.get(pos + 1) == Some(&b'<') {
                    tokens.push(Token { kind: TokenKind::LQuote, offset: pos });
                    pos += 2;
                } else if bytes.get(pos + 1) == Some(&b'=') {
                    tokens.push(Token { kind: TokenKind::Le, offset: pos });
                    pos += 2;
                } else {
                    // IRI if it closes with '>' before whitespace; else Lt
                    let mut end = pos + 1;
                    let mut is_iri = false;
                    while end < bytes.len() {
                        match bytes[end] {
                            b'>' => {
                                is_iri = true;
                                break;
                            }
                            b' ' | b'\t' | b'\n' | b'\r' | b'{' | b'"' => break,
                            _ => end += 1,
                        }
                    }
                    if is_iri {
                        let iri = std::str::from_utf8(&bytes[pos + 1..end])
                            .map_err(|_| err(pos, "invalid UTF-8 in IRI".into()))?;
                        tokens.push(Token {
                            kind: TokenKind::Iri(iri.to_string()),
                            offset: pos,
                        });
                        pos = end + 1;
                    } else {
                        tokens.push(Token { kind: TokenKind::Lt, offset: pos });
                        pos += 1;
                    }
                }
            }
            b'>' => {
                if bytes.get(pos + 1) == Some(&b'>') {
                    tokens.push(Token { kind: TokenKind::RQuote, offset: pos });
                    pos += 2;
                } else if bytes.get(pos + 1) == Some(&b'=') {
                    tokens.push(Token { kind: TokenKind::Ge, offset: pos });
                    pos += 2;
                } else {
                    tokens.push(Token { kind: TokenKind::Gt, offset: pos });
                    pos += 1;
                }
            }
            b'?' | b'$' => {
                let start = pos + 1;
                let mut end = start;
                while end < bytes.len() && (bytes[end].is_ascii_alphanumeric() || bytes[end] == b'_') {
                    end += 1;
                }
                if end == start {
                    return Err(err(pos, "empty variable name".into()));
                }
                tokens.push(Token {
                    kind: TokenKind::Var(ascii_str(&bytes[start..end])),
                    offset: pos,
                });
                pos = end;
            }
            b'"' | b'\'' => {
                let quote = c;
                let start = pos;
                pos += 1;
                let mut s = String::new();
                loop {
                    if pos >= bytes.len() {
                        return Err(err(start, "unterminated string".into()));
                    }
                    let b = bytes[pos];
                    if b == quote {
                        pos += 1;
                        break;
                    } else if b == b'\\' {
                        pos += 1;
                        let esc = *bytes
                            .get(pos)
                            .ok_or_else(|| err(start, "dangling escape".into()))?;
                        s.push(match esc {
                            b'"' => '"',
                            b'\'' => '\'',
                            b'\\' => '\\',
                            b'n' => '\n',
                            b'r' => '\r',
                            b't' => '\t',
                            c => return Err(err(pos, format!("unknown escape \\{}", c as char))),
                        });
                        pos += 1;
                    } else {
                        let rest = std::str::from_utf8(&bytes[pos..])
                            .map_err(|_| err(pos, "invalid UTF-8".into()))?;
                        let ch = rest
                            .chars()
                            .next()
                            .ok_or_else(|| err(start, "unterminated string".into()))?;
                        s.push(ch);
                        pos += ch.len_utf8();
                    }
                }
                tokens.push(Token { kind: TokenKind::String(s), offset: start });
            }
            b'@' => {
                let start = pos + 1;
                let mut end = start;
                while end < bytes.len() && (bytes[end].is_ascii_alphanumeric() || bytes[end] == b'-')
                {
                    end += 1;
                }
                if end == start {
                    return Err(err(pos, "empty language tag".into()));
                }
                tokens.push(Token {
                    kind: TokenKind::LangTag(ascii_str(&bytes[start..end])),
                    offset: pos,
                });
                pos = end;
            }
            b'_' if bytes.get(pos + 1) == Some(&b':') => {
                let start = pos + 2;
                let mut end = start;
                while end < bytes.len()
                    && (bytes[end].is_ascii_alphanumeric() || bytes[end] == b'_' || bytes[end] == b'-')
                {
                    end += 1;
                }
                tokens.push(Token {
                    kind: TokenKind::BNode(ascii_str(&bytes[start..end])),
                    offset: pos,
                });
                pos = end;
            }
            b'-' => {
                // negative number literal or minus operator
                if bytes.get(pos + 1).is_some_and(|b| b.is_ascii_digit()) {
                    let (num, end) = lex_number(bytes, pos + 1);
                    tokens.push(Token {
                        kind: TokenKind::Number(format!("-{num}")),
                        offset: pos,
                    });
                    pos = end;
                } else {
                    tokens.push(Token { kind: TokenKind::Minus, offset: pos });
                    pos += 1;
                }
            }
            b'0'..=b'9' => {
                let (num, end) = lex_number(bytes, pos);
                tokens.push(Token { kind: TokenKind::Number(num), offset: pos });
                pos = end;
            }
            b'.' => {
                tokens.push(Token { kind: TokenKind::Dot, offset: pos });
                pos += 1;
            }
            c if c.is_ascii_alphabetic() => {
                let start = pos;
                let mut end = pos;
                while end < bytes.len()
                    && (bytes[end].is_ascii_alphanumeric() || bytes[end] == b'_')
                {
                    end += 1;
                }
                // prefixed name?  word ':' local
                if bytes.get(end) == Some(&b':') {
                    let prefix = ascii_str(&bytes[start..end]);
                    let lstart = end + 1;
                    let mut lend = lstart;
                    while lend < bytes.len()
                        && (bytes[lend].is_ascii_alphanumeric()
                            || bytes[lend] == b'_'
                            || bytes[lend] == b'-'
                            || bytes[lend] == b'.')
                    {
                        lend += 1;
                    }
                    // trailing dots belong to punctuation, not the local name
                    while lend > lstart && bytes[lend - 1] == b'.' {
                        lend -= 1;
                    }
                    let local = ascii_str(&bytes[lstart..lend]);
                    tokens.push(Token {
                        kind: TokenKind::PName(prefix, local),
                        offset: start,
                    });
                    pos = lend;
                } else {
                    let word = ascii_str(&bytes[start..end]);
                    tokens.push(Token { kind: TokenKind::Word(word), offset: start });
                    pos = end;
                }
            }
            b':' => {
                // default-prefix name `:local`
                let lstart = pos + 1;
                let mut lend = lstart;
                while lend < bytes.len()
                    && (bytes[lend].is_ascii_alphanumeric()
                        || bytes[lend] == b'_'
                        || bytes[lend] == b'-'
                        || bytes[lend] == b'.')
                {
                    lend += 1;
                }
                while lend > lstart && bytes[lend - 1] == b'.' {
                    lend -= 1;
                }
                tokens.push(Token {
                    kind: TokenKind::PName(String::new(), ascii_str(&bytes[lstart..lend])),
                    offset: pos,
                });
                pos = lend;
            }
            other => {
                return Err(err(pos, format!("unexpected character {:?}", other as char)));
            }
        }
    }
    tokens.push(Token { kind: TokenKind::Eof, offset: bytes.len() });
    Ok(tokens)
}

fn lex_number(bytes: &[u8], start: usize) -> (String, usize) {
    let mut end = start;
    while end < bytes.len() && bytes[end].is_ascii_digit() {
        end += 1;
    }
    if end < bytes.len()
        && bytes[end] == b'.'
        && bytes.get(end + 1).is_some_and(|b| b.is_ascii_digit())
    {
        end += 1;
        while end < bytes.len() && bytes[end].is_ascii_digit() {
            end += 1;
        }
    }
    // exponent
    if end < bytes.len() && (bytes[end] == b'e' || bytes[end] == b'E') {
        let mut e = end + 1;
        if e < bytes.len() && (bytes[e] == b'+' || bytes[e] == b'-') {
            e += 1;
        }
        if e < bytes.len() && bytes[e].is_ascii_digit() {
            end = e;
            while end < bytes.len() && bytes[end].is_ascii_digit() {
                end += 1;
            }
        }
    }
    (ascii_str(&bytes[start..end]), end)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<TokenKind> {
        tokenize(src).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn basic_select_tokens() {
        let ts = kinds("SELECT ?x WHERE { ?x a <http://c> . }");
        assert!(matches!(&ts[0], TokenKind::Word(w) if w == "SELECT"));
        assert!(matches!(&ts[1], TokenKind::Var(v) if v == "x"));
        assert!(ts.contains(&TokenKind::Iri("http://c".into())));
        assert_eq!(*ts.last().unwrap(), TokenKind::Eof);
    }

    #[test]
    fn operators_and_quotes() {
        let ts = kinds("<< ?a ?b ?c >> != <= >= && || !");
        assert_eq!(ts[0], TokenKind::LQuote);
        assert_eq!(ts[4], TokenKind::RQuote);
        assert_eq!(ts[5], TokenKind::Ne);
        assert_eq!(ts[6], TokenKind::Le);
        assert_eq!(ts[7], TokenKind::Ge);
        assert_eq!(ts[8], TokenKind::AndAnd);
        assert_eq!(ts[9], TokenKind::OrOr);
        assert_eq!(ts[10], TokenKind::Bang);
    }

    #[test]
    fn prefixed_names() {
        let ts = kinds("kglids:Table :label pipeline:score");
        assert_eq!(ts[0], TokenKind::PName("kglids".into(), "Table".into()));
        assert_eq!(ts[1], TokenKind::PName("".into(), "label".into()));
        assert_eq!(ts[2], TokenKind::PName("pipeline".into(), "score".into()));
    }

    #[test]
    fn pname_trailing_dot_is_punctuation() {
        let ts = kinds("?x a ont:Column. }");
        assert_eq!(ts[2], TokenKind::PName("ont".into(), "Column".into()));
        assert_eq!(ts[3], TokenKind::Dot);
    }

    #[test]
    fn numbers() {
        let ts = kinds("42 3.14 -7 -0.5 1e6 2.5e-3");
        assert_eq!(ts[0], TokenKind::Number("42".into()));
        assert_eq!(ts[1], TokenKind::Number("3.14".into()));
        assert_eq!(ts[2], TokenKind::Number("-7".into()));
        assert_eq!(ts[3], TokenKind::Number("-0.5".into()));
        assert_eq!(ts[4], TokenKind::Number("1e6".into()));
        assert_eq!(ts[5], TokenKind::Number("2.5e-3".into()));
    }

    #[test]
    fn strings_with_escapes_and_lang() {
        let ts = kinds(r#""he said \"hi\""@en 'single'"#);
        assert_eq!(ts[0], TokenKind::String("he said \"hi\"".into()));
        assert_eq!(ts[1], TokenKind::LangTag("en".into()));
        assert_eq!(ts[2], TokenKind::String("single".into()));
    }

    #[test]
    fn typed_literal_tokens() {
        let ts = kinds(r#""0.9"^^<http://www.w3.org/2001/XMLSchema#double>"#);
        assert_eq!(ts[0], TokenKind::String("0.9".into()));
        assert_eq!(ts[1], TokenKind::DTypeSep);
        assert!(matches!(&ts[2], TokenKind::Iri(_)));
    }

    #[test]
    fn comments_are_skipped() {
        let ts = kinds("SELECT # comment here\n ?x");
        assert_eq!(ts.len(), 3); // SELECT, ?x, EOF
    }

    #[test]
    fn lt_vs_iri_disambiguation() {
        let ts = kinds("FILTER(?x < 5)");
        assert!(ts.contains(&TokenKind::Lt));
    }

    #[test]
    fn rejects_bad_chars() {
        assert!(tokenize("SELECT ~").is_err());
    }
}
