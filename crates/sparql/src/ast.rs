//! Abstract syntax for the supported SPARQL subset.

use lids_rdf::Term;

/// Identifier of a variable within a query (index into [`Query::variables`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct VarId(pub u16);

/// A parsed query: prefix table, variable table, and the query form.
#[derive(Debug, Clone)]
pub struct Query {
    /// Variable names in first-seen order; `VarId` indexes into this.
    pub variables: Vec<String>,
    pub form: QueryForm,
}

impl Query {
    /// Resolve a variable name to its id.
    pub fn var_id(&self, name: &str) -> Option<VarId> {
        self.variables
            .iter()
            .position(|v| v == name)
            .map(|i| VarId(i as u16))
    }
}

/// SELECT or ASK.
#[derive(Debug, Clone)]
pub enum QueryForm {
    Select(SelectQuery),
    Ask(GroupPattern),
}

/// The pieces of a SELECT query.
#[derive(Debug, Clone)]
pub struct SelectQuery {
    pub distinct: bool,
    pub projection: Projection,
    pub pattern: GroupPattern,
    pub group_by: Vec<VarId>,
    pub order_by: Vec<OrderKey>,
    pub limit: Option<usize>,
    pub offset: Option<usize>,
}

/// Projection list: `*` or explicit items.
#[derive(Debug, Clone)]
pub enum Projection {
    Star,
    Items(Vec<SelectItem>),
}

/// One projected column.
#[derive(Debug, Clone)]
pub enum SelectItem {
    /// Plain `?var`.
    Var(VarId),
    /// `(AGG(...) AS ?alias)`.
    Aggregate { agg: Aggregate, alias: VarId },
}

/// Supported aggregate functions.
#[derive(Debug, Clone)]
pub enum Aggregate {
    /// `COUNT(*)`, `COUNT(?v)`, `COUNT(DISTINCT ?v)`.
    Count { distinct: bool, var: Option<VarId> },
    Sum(VarId),
    Avg(VarId),
    Min(VarId),
    Max(VarId),
}

/// A sort key: expression plus direction.
#[derive(Debug, Clone)]
pub struct OrderKey {
    pub expr: Expr,
    pub descending: bool,
}

/// A group graph pattern: sequence of elements evaluated left to right.
#[derive(Debug, Clone, Default)]
pub struct GroupPattern {
    pub elements: Vec<PatternElement>,
}

/// One element inside `{ ... }`.
#[derive(Debug, Clone)]
pub enum PatternElement {
    /// A block of triple patterns (joined).
    Triples(Vec<TriplePattern>),
    /// `FILTER(expr)`.
    Filter(Expr),
    /// `OPTIONAL { ... }`.
    Optional(GroupPattern),
    /// `GRAPH term-or-var { ... }`.
    Graph(NodePattern, GroupPattern),
    /// `{ ... } UNION { ... }` (n-ary, left-assoc flattened).
    Union(Vec<GroupPattern>),
}

/// A triple pattern; positions are terms, variables, or quoted patterns.
#[derive(Debug, Clone, PartialEq)]
pub struct TriplePattern {
    pub subject: NodePattern,
    pub predicate: NodePattern,
    pub object: NodePattern,
}

/// One position of a triple pattern.
#[derive(Debug, Clone, PartialEq)]
pub enum NodePattern {
    Term(Term),
    Var(VarId),
    /// RDF-star quoted triple pattern, possibly containing variables.
    Quoted(Box<TriplePattern>),
}

impl NodePattern {
    /// True when the pattern contains no variables (fully ground).
    pub fn is_ground(&self) -> bool {
        match self {
            NodePattern::Term(_) => true,
            NodePattern::Var(_) => false,
            NodePattern::Quoted(t) => {
                t.subject.is_ground() && t.predicate.is_ground() && t.object.is_ground()
            }
        }
    }
}

/// Filter / order-by expression tree.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    Var(VarId),
    Const(Term),
    Binary(BinOp, Box<Expr>, Box<Expr>),
    Not(Box<Expr>),
    Neg(Box<Expr>),
    Call(Func, Vec<Expr>),
}

/// Binary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinOp {
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
    And,
    Or,
    Add,
    Sub,
    Mul,
    Div,
}

/// Built-in functions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Func {
    /// `REGEX(str, pattern)` — substring-style pattern with `.` and `.*`
    /// support (see `eval::simple_regex`).
    Regex,
    Contains,
    StrStarts,
    Str,
    Bound,
    LCase,
    UCase,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ground_detection() {
        let t = NodePattern::Quoted(Box::new(TriplePattern {
            subject: NodePattern::Term(Term::iri("a")),
            predicate: NodePattern::Term(Term::iri("p")),
            object: NodePattern::Var(VarId(0)),
        }));
        assert!(!t.is_ground());
        let g = NodePattern::Term(Term::iri("x"));
        assert!(g.is_ground());
    }

    #[test]
    fn var_id_lookup() {
        let q = Query {
            variables: vec!["x".into(), "y".into()],
            form: QueryForm::Ask(GroupPattern::default()),
        };
        assert_eq!(q.var_id("y"), Some(VarId(1)));
        assert_eq!(q.var_id("z"), None);
    }
}
