//! `lids-sparql` — a SPARQL engine for the LiDS graph.
//!
//! The paper implements most of the KGLiDS interfaces as SPARQL queries
//! against GraphDB and credits the engine's built-in indexes for its query
//! speed (Section 6.1.2). This crate implements the subset those interfaces
//! need, evaluated over [`lids_rdf::QuadStore`]:
//!
//! - `SELECT` / `ASK`, `DISTINCT`, projection, `PREFIX`
//! - basic graph patterns with `;`/`,` abbreviations and `a` for `rdf:type`
//! - RDF-star quoted triple patterns (`<< ?a :sim ?b >> :score ?s`)
//! - `FILTER` expressions (comparisons, boolean ops, arithmetic, `REGEX`,
//!   `CONTAINS`, `STRSTARTS`, `STR`, `BOUND`, `LCASE`/`UCASE`)
//! - `OPTIONAL`, `UNION`, `GRAPH` (named-graph scoping, variable graphs)
//! - `GROUP BY` with `COUNT`/`SUM`/`AVG`/`MIN`/`MAX`, `ORDER BY`,
//!   `LIMIT`/`OFFSET`
//!
//! Scoping note: patterns outside `GRAPH` match the union of the default and
//! all named graphs (the GraphDB-style dataset the paper queries, where each
//! pipeline lives in its own named graph but discovery queries span all of
//! them). `GRAPH ?g` ranges over named graphs only, per the SPARQL spec.

#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

pub mod ast;
mod batch;
pub mod eval;
pub mod explain;
pub mod expr;
pub mod lexer;
pub mod parser;
pub mod plan;
mod project;
pub mod reference;
pub mod results;

pub use ast::Query;
pub use eval::{
    evaluate, evaluate_explained, evaluate_governed, evaluate_with, evaluate_with_stats,
    EvalOptions, EvalOptionsBuilder, ExecStats,
};
pub use explain::{ExplainReport, PatternPlan};
pub use parser::parse_query;
pub use plan::{PlanCache, PlanCacheStats, PreparedQuery};
pub use results::{Solutions, SparqlError};

use lids_rdf::StoreSnapshot;

/// Parse and evaluate `query` against `store` in one call.
pub fn query(store: &StoreSnapshot, query: &str) -> Result<Solutions, SparqlError> {
    let parsed = parse_query(query)?;
    evaluate(store, &parsed)
}
