//! `lids-rdf` — an in-memory RDF-star quad store.
//!
//! This crate is the storage substrate the paper delegates to GraphDB: the
//! LiDS graph is an RDF-star knowledge graph where each abstracted pipeline
//! lives in its own *named graph* and similarity edges between column nodes
//! are annotated with scores via *quoted triples* (`<< s p o >> score v`).
//!
//! Layout follows the classic dictionary-encoded design: every [`Term`]
//! (IRI, literal, blank node, or quoted triple) is interned once in a
//! [`Dictionary`] and quads are stored as four-`u32` tuples in B-tree indexes
//! covering the access patterns SPARQL evaluation needs (`SPOG`, `POSG`,
//! `OSPG`, `GSPO`). Pattern scans pick the index with the longest bound
//! prefix, which is what makes the discovery queries in Section 5 cheap.

#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

pub mod dictionary;
pub mod nquads;
pub mod pattern;
pub mod store;
pub mod term;

pub use dictionary::{Dictionary, TermId};
pub use pattern::QuadPattern;
pub use store::{
    EncodedPattern, EncodedQuad, IndexOrder, IngestStats, QuadStore, RunCursor, ScanSpec,
    StoreReader, StoreSnapshot,
};
pub use term::{GraphName, Literal, Quad, Term, Triple};
