//! Quad patterns: the primitive match unit for store scans.

use crate::term::{GraphName, Term};

/// A quad pattern with optionally bound positions. `None` means wildcard.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct QuadPattern {
    pub subject: Option<Term>,
    pub predicate: Option<Term>,
    pub object: Option<Term>,
    pub graph: Option<GraphName>,
}

impl QuadPattern {
    /// The all-wildcard pattern.
    pub fn any() -> Self {
        Self::default()
    }

    /// Bind the subject position.
    pub fn with_subject(mut self, term: Term) -> Self {
        self.subject = Some(term);
        self
    }

    /// Bind the predicate position.
    pub fn with_predicate(mut self, term: Term) -> Self {
        self.predicate = Some(term);
        self
    }

    /// Bind the object position.
    pub fn with_object(mut self, term: Term) -> Self {
        self.object = Some(term);
        self
    }

    /// Restrict to a specific graph.
    pub fn with_graph(mut self, graph: GraphName) -> Self {
        self.graph = Some(graph);
        self
    }

    /// Number of bound positions (used by the planner to order joins).
    pub fn bound_count(&self) -> usize {
        [
            self.subject.is_some(),
            self.predicate.is_some(),
            self.object.is_some(),
            self.graph.is_some(),
        ]
        .iter()
        .filter(|b| **b)
        .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_binds_positions() {
        let p = QuadPattern::any()
            .with_subject(Term::iri("s"))
            .with_object(Term::iri("o"));
        assert_eq!(p.bound_count(), 2);
        assert!(p.predicate.is_none());
    }

    #[test]
    fn any_is_unbound() {
        assert_eq!(QuadPattern::any().bound_count(), 0);
    }
}
