//! N-Quads (with RDF-star quoted triples) serialization and parsing.
//!
//! The LiDS graph is published on the Web per the paper; this module gives
//! the store a standard interchange format and powers the round-trip
//! property tests.

use crate::term::{escape_literal, xsd, GraphName, Literal, Quad, Term, Triple};

/// Serialize one quad as an N-Quads line (without trailing newline).
pub fn write_quad(quad: &Quad) -> String {
    quad.to_string()
}

/// Serialize an iterator of quads as an N-Quads document.
pub fn write_document<'a>(quads: impl Iterator<Item = &'a Quad>) -> String {
    let mut out = String::new();
    for q in quads {
        out.push_str(&q.to_string());
        out.push('\n');
    }
    out
}

/// Error produced when parsing N-Quads input.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based line number.
    pub line: usize,
    /// Human-readable message.
    pub message: String,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseError {}

/// Parse an N-Quads document (comments with `#`, blank lines allowed).
pub fn parse_document(input: &str) -> Result<Vec<Quad>, ParseError> {
    let mut quads = Vec::new();
    for (idx, line) in input.lines().enumerate() {
        let line_no = idx + 1;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        quads.push(parse_line(trimmed, line_no)?);
    }
    Ok(quads)
}

fn parse_line(line: &str, line_no: usize) -> Result<Quad, ParseError> {
    let mut p = Cursor { input: line.as_bytes(), pos: 0, line: line_no };
    let subject = p.parse_term()?;
    p.skip_ws();
    let predicate = p.parse_term()?;
    p.skip_ws();
    let object = p.parse_term()?;
    p.skip_ws();
    let graph = if p.peek() == Some(b'<') {
        let g = p.parse_term()?;
        match g {
            Term::Iri(iri) => GraphName::Named(iri),
            other => return Err(p.err(format!("graph label must be an IRI, got {other}"))),
        }
    } else {
        GraphName::Default
    };
    p.skip_ws();
    if p.peek() != Some(b'.') {
        return Err(p.err("expected terminating '.'".into()));
    }
    p.pos += 1;
    p.skip_ws();
    if p.peek().is_some() {
        return Err(p.err("trailing content after '.'".into()));
    }
    Ok(Quad { subject, predicate, object, graph })
}

struct Cursor<'a> {
    input: &'a [u8],
    pos: usize,
    line: usize,
}

impl<'a> Cursor<'a> {
    fn err(&self, message: String) -> ParseError {
        ParseError { line: self.line, message }
    }

    fn peek(&self) -> Option<u8> {
        self.input.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ') | Some(b'\t')) {
            self.pos += 1;
        }
    }

    fn parse_term(&mut self) -> Result<Term, ParseError> {
        self.skip_ws();
        match self.peek() {
            Some(b'<') => {
                if self.input.get(self.pos + 1) == Some(&b'<') {
                    self.parse_quoted_triple()
                } else {
                    self.parse_iri().map(Term::Iri)
                }
            }
            Some(b'_') => self.parse_bnode(),
            Some(b'"') => self.parse_literal(),
            Some(c) => Err(self.err(format!("unexpected character {:?}", c as char))),
            None => Err(self.err("unexpected end of line".into())),
        }
    }

    fn parse_iri(&mut self) -> Result<String, ParseError> {
        debug_assert_eq!(self.peek(), Some(b'<'));
        self.pos += 1;
        let start = self.pos;
        while let Some(c) = self.peek() {
            if c == b'>' {
                let iri = std::str::from_utf8(&self.input[start..self.pos])
                    .map_err(|_| self.err("invalid UTF-8 in IRI".into()))?
                    .to_string();
                self.pos += 1;
                return Ok(iri);
            }
            self.pos += 1;
        }
        Err(self.err("unterminated IRI".into()))
    }

    fn parse_bnode(&mut self) -> Result<Term, ParseError> {
        if self.input.get(self.pos + 1) != Some(&b':') {
            return Err(self.err("expected '_:' blank node prefix".into()));
        }
        self.pos += 2;
        let start = self.pos;
        while let Some(c) = self.peek() {
            if c.is_ascii_alphanumeric() || c == b'_' || c == b'-' {
                self.pos += 1;
            } else {
                break;
            }
        }
        if self.pos == start {
            return Err(self.err("empty blank node label".into()));
        }
        let label = std::str::from_utf8(&self.input[start..self.pos])
            .map_err(|_| self.err("invalid UTF-8 in blank node label".into()))?;
        Ok(Term::BNode(label.to_string()))
    }

    fn parse_literal(&mut self) -> Result<Term, ParseError> {
        debug_assert_eq!(self.peek(), Some(b'"'));
        self.pos += 1;
        let mut lexical = String::new();
        loop {
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    break;
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let escaped = self
                        .peek()
                        .ok_or_else(|| self.err("dangling escape".into()))?;
                    lexical.push(match escaped {
                        b'"' => '"',
                        b'\\' => '\\',
                        b'n' => '\n',
                        b'r' => '\r',
                        b't' => '\t',
                        c => return Err(self.err(format!("unknown escape \\{}", c as char))),
                    });
                    self.pos += 1;
                }
                Some(_) => {
                    // consume one UTF-8 scalar
                    let rest = std::str::from_utf8(&self.input[self.pos..])
                        .map_err(|_| self.err("invalid UTF-8 in literal".into()))?;
                    let ch = rest
                        .chars()
                        .next()
                        .ok_or_else(|| self.err("unterminated literal".into()))?;
                    lexical.push(ch);
                    self.pos += ch.len_utf8();
                }
                None => return Err(self.err("unterminated literal".into())),
            }
        }
        // optional datatype or language tag
        match self.peek() {
            Some(b'^') => {
                if self.input.get(self.pos + 1) != Some(&b'^') {
                    return Err(self.err("expected '^^'".into()));
                }
                self.pos += 2;
                if self.peek() != Some(b'<') {
                    return Err(self.err("expected datatype IRI".into()));
                }
                let datatype = self.parse_iri()?;
                Ok(Term::Literal(Literal { lexical, datatype, language: None }))
            }
            Some(b'@') => {
                self.pos += 1;
                let start = self.pos;
                while let Some(c) = self.peek() {
                    if c.is_ascii_alphanumeric() || c == b'-' {
                        self.pos += 1;
                    } else {
                        break;
                    }
                }
                if self.pos == start {
                    return Err(self.err("empty language tag".into()));
                }
                let lang = std::str::from_utf8(&self.input[start..self.pos])
                    .map_err(|_| self.err("invalid UTF-8 in language tag".into()))?;
                Ok(Term::Literal(Literal {
                    lexical,
                    datatype: xsd::STRING.to_string(),
                    language: Some(lang.to_string()),
                }))
            }
            _ => Ok(Term::Literal(Literal {
                lexical,
                datatype: xsd::STRING.to_string(),
                language: None,
            })),
        }
    }

    fn parse_quoted_triple(&mut self) -> Result<Term, ParseError> {
        // consumes "<<"
        self.pos += 2;
        let subject = self.parse_term()?;
        let predicate = self.parse_term()?;
        let object = self.parse_term()?;
        self.skip_ws();
        if self.peek() != Some(b'>') || self.input.get(self.pos + 1) != Some(&b'>') {
            return Err(self.err("expected '>>' closing quoted triple".into()));
        }
        self.pos += 2;
        Ok(Term::Quoted(Box::new(Triple { subject, predicate, object })))
    }
}

// escape_literal is used by Display impls in term.rs; re-exported here for
// serializer completeness.
#[allow(unused_imports)]
use escape_literal as _escape_for_docs;

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn roundtrip(q: &Quad) -> Quad {
        let text = write_quad(q);
        let parsed = parse_document(&text).expect("parses");
        assert_eq!(parsed.len(), 1);
        parsed.into_iter().next().unwrap()
    }

    #[test]
    fn simple_roundtrip() {
        let q = Quad::new(Term::iri("http://s"), Term::iri("http://p"), Term::string("v"));
        assert_eq!(roundtrip(&q), q);
    }

    #[test]
    fn named_graph_roundtrip() {
        let q = Quad::in_graph(
            Term::iri("s"),
            Term::iri("p"),
            Term::integer(-5),
            GraphName::named("http://g"),
        );
        assert_eq!(roundtrip(&q), q);
    }

    #[test]
    fn quoted_triple_roundtrip() {
        let q = Quad::new(
            Term::quoted(Term::iri("a"), Term::iri("sim"), Term::iri("b")),
            Term::iri("score"),
            Term::double(0.87),
        );
        assert_eq!(roundtrip(&q), q);
    }

    #[test]
    fn literal_escapes_roundtrip() {
        let q = Quad::new(
            Term::iri("s"),
            Term::iri("p"),
            Term::string("line1\nline2\t\"quoted\" back\\slash"),
        );
        assert_eq!(roundtrip(&q), q);
    }

    #[test]
    fn language_tag_roundtrip() {
        let q = Quad::new(
            Term::iri("s"),
            Term::iri("p"),
            Term::Literal(Literal {
                lexical: "bonjour".into(),
                datatype: xsd::STRING.into(),
                language: Some("fr".into()),
            }),
        );
        assert_eq!(roundtrip(&q), q);
    }

    #[test]
    fn document_with_comments_and_blanks() {
        let doc = "# header\n\n<s> <p> <o> .\n<s> <p> _:b1 .\n";
        let quads = parse_document(doc).unwrap();
        assert_eq!(quads.len(), 2);
        assert_eq!(quads[1].object, Term::BNode("b1".into()));
    }

    #[test]
    fn errors_carry_line_numbers() {
        let doc = "<s> <p> <o> .\n<s> <p> .\n";
        let err = parse_document(doc).unwrap_err();
        assert_eq!(err.line, 2);
    }

    #[test]
    fn rejects_trailing_garbage() {
        assert!(parse_document("<s> <p> <o> . extra\n").is_err());
    }

    proptest! {
        #[test]
        fn prop_string_literal_roundtrip(s in "\\PC{0,40}") {
            // printable chars incl. unicode; escapes handled by writer/parser
            let q = Quad::new(Term::iri("s"), Term::iri("p"), Term::string(s));
            prop_assert_eq!(roundtrip(&q), q);
        }

        #[test]
        fn prop_numeric_roundtrip(v in proptest::num::f64::NORMAL) {
            let q = Quad::new(Term::iri("s"), Term::iri("p"), Term::double(v));
            let back = roundtrip(&q);
            let got = back.object.as_literal().unwrap().as_f64().unwrap();
            prop_assert_eq!(got, v);
        }
    }
}
