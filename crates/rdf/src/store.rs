//! Dictionary-encoded quad store with multiple B-tree orderings.

use std::collections::BTreeSet;

use crate::dictionary::{Dictionary, TermId};
use crate::pattern::QuadPattern;
use crate::term::{GraphName, Quad, Term};

/// A quad encoded as four term ids: `[subject, predicate, object, graph]`.
///
/// The graph slot holds the id of the graph IRI term, or the default-graph sentinel
/// for the default graph.
pub type EncodedQuad = [u32; 4];

/// A quad pattern over term ids: `None` positions are wildcards.
///
/// This is the fully-resolved form of a [`QuadPattern`] — constants are
/// already dictionary ids, so matching ([`QuadStore::match_ids`]) and
/// cardinality estimation ([`QuadStore::estimate_pattern`]) never touch
/// [`Term`] values. The graph slot holds the id of the graph IRI term
/// (the default graph's sentinel IRI included).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct EncodedPattern {
    pub subject: Option<TermId>,
    pub predicate: Option<TermId>,
    pub object: Option<TermId>,
    pub graph: Option<TermId>,
}

impl EncodedPattern {
    /// The all-wildcard pattern.
    pub fn any() -> Self {
        Self::default()
    }

    fn ids(&self) -> [Option<u32>; 4] {
        [
            self.subject.map(|t| t.0),
            self.predicate.map(|t| t.0),
            self.object.map(|t| t.0),
            self.graph.map(|t| t.0),
        ]
    }
}

/// A chosen index plus the range bounds for one encoded pattern.
struct ScanPlan<'a> {
    index: &'a BTreeSet<[u32; 4]>,
    lo: [u32; 4],
    hi: [u32; 4],
    prefix_len: usize,
    /// Bound positions in index key order, for filtering past the prefix.
    residual: [Option<u32>; 4],
    /// Permutes an index key back to `[s, p, o, g]`.
    decode: fn([u32; 4]) -> EncodedQuad,
}

/// Index orderings maintained by the store.
///
/// Each is a `BTreeSet` of the quad's ids permuted so a range scan over a
/// bound prefix enumerates matches:
/// - `spog`: subject-bound scans and full scans
/// - `posg`: predicate(+object)-bound scans — the workhorse for `?x rdf:type C`
/// - `ospg`: object-bound scans — reverse traversal
/// - `gspo`: graph-scoped scans — per-pipeline named-graph queries
#[derive(Debug, Default)]
pub struct QuadStore {
    dict: Dictionary,
    spog: BTreeSet<[u32; 4]>,
    posg: BTreeSet<[u32; 4]>,
    ospg: BTreeSet<[u32; 4]>,
    gspo: BTreeSet<[u32; 4]>,
}

/// Sentinel graph IRI used internally for the default graph.
const DEFAULT_GRAPH_IRI: &str = "urn:lids:default-graph";

impl QuadStore {
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of quads in the store.
    pub fn len(&self) -> usize {
        self.spog.len()
    }

    /// True when the store holds no quads.
    pub fn is_empty(&self) -> bool {
        self.spog.is_empty()
    }

    /// Number of distinct interned terms (≈ distinct nodes + literals).
    pub fn term_count(&self) -> usize {
        self.dict.len()
    }

    /// Access the dictionary (read-only).
    pub fn dictionary(&self) -> &Dictionary {
        &self.dict
    }

    fn graph_term(graph: &GraphName) -> Term {
        match graph {
            GraphName::Default => Term::iri(DEFAULT_GRAPH_IRI),
            GraphName::Named(iri) => Term::iri(iri.clone()),
        }
    }

    fn graph_of(&self, id: TermId) -> GraphName {
        match self.dict.term(id) {
            Term::Iri(iri) if iri == DEFAULT_GRAPH_IRI => GraphName::Default,
            Term::Iri(iri) => GraphName::Named(iri.clone()),
            other => panic!("graph slot held non-IRI term {other:?}"),
        }
    }

    /// Insert a quad. Returns `true` when it was not already present.
    pub fn insert(&mut self, quad: &Quad) -> bool {
        let s = self.dict.intern(&quad.subject).0;
        let p = self.dict.intern(&quad.predicate).0;
        let o = self.dict.intern(&quad.object).0;
        let g_term = Self::graph_term(&quad.graph);
        let g = self.dict.intern(&g_term).0;
        let fresh = self.spog.insert([s, p, o, g]);
        if fresh {
            self.posg.insert([p, o, s, g]);
            self.ospg.insert([o, s, p, g]);
            self.gspo.insert([g, s, p, o]);
        }
        fresh
    }

    /// Insert a triple into the default graph.
    pub fn insert_triple(&mut self, subject: Term, predicate: Term, object: Term) -> bool {
        self.insert(&Quad::new(subject, predicate, object))
    }

    /// Remove a quad. Returns `true` when it was present.
    pub fn remove(&mut self, quad: &Quad) -> bool {
        let (Some(s), Some(p), Some(o)) = (
            self.dict.id_of(&quad.subject),
            self.dict.id_of(&quad.predicate),
            self.dict.id_of(&quad.object),
        ) else {
            return false;
        };
        let Some(g) = self.dict.id_of(&Self::graph_term(&quad.graph)) else {
            return false;
        };
        let (s, p, o, g) = (s.0, p.0, o.0, g.0);
        let removed = self.spog.remove(&[s, p, o, g]);
        if removed {
            self.posg.remove(&[p, o, s, g]);
            self.ospg.remove(&[o, s, p, g]);
            self.gspo.remove(&[g, s, p, o]);
        }
        removed
    }

    /// True when the quad is present.
    pub fn contains(&self, quad: &Quad) -> bool {
        let (Some(s), Some(p), Some(o)) = (
            self.dict.id_of(&quad.subject),
            self.dict.id_of(&quad.predicate),
            self.dict.id_of(&quad.object),
        ) else {
            return false;
        };
        let Some(g) = self.dict.id_of(&Self::graph_term(&quad.graph)) else {
            return false;
        };
        self.spog.contains(&[s.0, p.0, o.0, g.0])
    }

    /// Resolve a term id (delegates to the dictionary).
    pub fn term(&self, id: TermId) -> &Term {
        self.dict.term(id)
    }

    /// Id of a term if it is interned.
    pub fn id_of(&self, term: &Term) -> Option<TermId> {
        self.dict.id_of(term)
    }

    /// Encode a decoded pattern's constants to ids. Returns `None` when a
    /// bound term is not interned — such a pattern matches nothing.
    pub fn encode_pattern(&self, pattern: &QuadPattern) -> Option<EncodedPattern> {
        let resolve = |t: &Option<Term>| match t {
            None => Some(None),
            Some(t) => self.dict.id_of(t).map(Some),
        };
        Some(EncodedPattern {
            subject: resolve(&pattern.subject)?,
            predicate: resolve(&pattern.predicate)?,
            object: resolve(&pattern.object)?,
            graph: match &pattern.graph {
                None => None,
                Some(g) => Some(self.dict.id_of(&Self::graph_term(g))?),
            },
        })
    }

    /// Id of the sentinel IRI standing in for the default graph, if any
    /// default-graph quad has been inserted.
    pub fn default_graph_id(&self) -> Option<TermId> {
        self.dict.id_of(&Term::iri(DEFAULT_GRAPH_IRI))
    }

    /// Id a [`GraphName`] occupies in the graph slot, if interned.
    pub fn graph_id(&self, graph: &GraphName) -> Option<TermId> {
        self.dict.id_of(&Self::graph_term(graph))
    }

    /// Pick the index with the longest bound prefix for `ids` (in
    /// `[s, p, o, g]` order) and compute its range bounds.
    ///
    /// Orderings: spog=(s,p,o,g) posg=(p,o,s,g) ospg=(o,s,p,g) gspo=(g,s,p,o)
    fn plan(&self, [s, p, o, g]: [Option<u32>; 4]) -> ScanPlan<'_> {
        type IndexCandidate<'i> =
            (&'i BTreeSet<[u32; 4]>, [Option<u32>; 4], fn([u32; 4]) -> EncodedQuad);
        let candidates: [IndexCandidate; 4] = [
            (&self.spog, [s, p, o, g], |k| [k[0], k[1], k[2], k[3]]),
            (&self.posg, [p, o, s, g], |k| [k[2], k[0], k[1], k[3]]),
            (&self.ospg, [o, s, p, g], |k| [k[1], k[2], k[0], k[3]]),
            (&self.gspo, [g, s, p, o], |k| [k[1], k[2], k[3], k[0]]),
        ];
        let best = candidates
            .iter()
            .enumerate()
            .max_by_key(|(_, (_, key, _))| key.iter().take_while(|b| b.is_some()).count())
            .map(|(i, _)| i)
            .unwrap();
        let (index, key, decode) = candidates[best];
        let prefix_len = key.iter().take_while(|b| b.is_some()).count();
        let mut lo = [0u32; 4];
        let mut hi = [u32::MAX; 4];
        for i in 0..prefix_len {
            lo[i] = key[i].unwrap();
            hi[i] = key[i].unwrap();
        }
        ScanPlan { index, lo, hi, prefix_len, residual: key, decode }
    }

    /// Match an id-level pattern, returning encoded quads `[s, p, o, g]`.
    ///
    /// Pure id-domain scan: chooses the index whose key order puts the
    /// bound positions first, range-scans it, and filters any bound
    /// positions that fall outside the prefix. No term decoding happens.
    pub fn match_ids<'a>(
        &'a self,
        pattern: &EncodedPattern,
    ) -> impl Iterator<Item = EncodedQuad> + 'a {
        let ScanPlan { index, lo, hi, prefix_len, residual, decode } = self.plan(pattern.ids());
        index
            .range(lo..=hi)
            .filter(move |k| {
                residual
                    .iter()
                    .enumerate()
                    .skip(prefix_len)
                    .all(|(i, b)| b.is_none_or(|v| k[i] == v))
            })
            .map(move |&k| decode(k))
    }

    /// Cardinality estimate for an id-level pattern: the number of index
    /// entries inside the chosen B-tree range.
    ///
    /// Exact when every bound position lands in the range prefix (which the
    /// four orderings guarantee for any single bound position, any bound
    /// `(p,o)`/`(s,p)`/`(o,s)`/`(g,s)` pair, and all fully-bound patterns);
    /// otherwise an upper bound, since residual positions are not filtered.
    /// Cost is proportional to the range size, not the store size, except
    /// for the all-wildcard pattern which answers from `len()` directly.
    pub fn estimate_pattern(&self, pattern: &EncodedPattern) -> usize {
        let ids = pattern.ids();
        if ids.iter().all(Option::is_none) {
            return self.len();
        }
        let ScanPlan { index, lo, hi, .. } = self.plan(ids);
        index.range(lo..=hi).count()
    }

    /// Match a pattern, returning encoded quads `[s, p, o, g]`.
    ///
    /// Resolves the pattern's constant terms to ids (an unresolvable bound
    /// term matches nothing) and delegates to [`QuadStore::match_ids`].
    pub fn match_encoded<'a>(
        &'a self,
        pattern: &QuadPattern,
    ) -> Box<dyn Iterator<Item = EncodedQuad> + 'a> {
        match self.encode_pattern(pattern) {
            Some(encoded) => Box::new(self.match_ids(&encoded)),
            None => Box::new(std::iter::empty()),
        }
    }

    /// Match a pattern, returning decoded [`Quad`]s.
    pub fn match_pattern<'a>(
        &'a self,
        pattern: &QuadPattern,
    ) -> impl Iterator<Item = Quad> + 'a {
        self.match_encoded(pattern).map(move |[s, p, o, g]| Quad {
            subject: self.dict.term(TermId(s)).clone(),
            predicate: self.dict.term(TermId(p)).clone(),
            object: self.dict.term(TermId(o)).clone(),
            graph: self.graph_of(TermId(g)),
        })
    }

    /// All quads in the store.
    pub fn iter(&self) -> impl Iterator<Item = Quad> + '_ {
        self.match_pattern(&QuadPattern::any())
    }

    /// Distinct named graphs in the store.
    pub fn named_graphs(&self) -> Vec<String> {
        let mut graphs: Vec<String> = Vec::new();
        let mut last: Option<u32> = None;
        for k in &self.gspo {
            if last == Some(k[0]) {
                continue;
            }
            last = Some(k[0]);
            if let GraphName::Named(g) = self.graph_of(TermId(k[0])) {
                graphs.push(g);
            }
        }
        graphs
    }

    /// Approximate logical footprint in bytes (indexes + dictionary).
    pub fn approx_bytes(&self) -> u64 {
        let per_quad = std::mem::size_of::<[u32; 4]>() as u64;
        self.spog.len() as u64 * per_quad * 4 + self.dict.approx_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn q(s: &str, p: &str, o: &str) -> Quad {
        Quad::new(Term::iri(s), Term::iri(p), Term::iri(o))
    }

    #[test]
    fn insert_contains_remove() {
        let mut store = QuadStore::new();
        let quad = q("s", "p", "o");
        assert!(store.insert(&quad));
        assert!(!store.insert(&quad));
        assert!(store.contains(&quad));
        assert_eq!(store.len(), 1);
        assert!(store.remove(&quad));
        assert!(!store.contains(&quad));
        assert!(store.is_empty());
    }

    #[test]
    fn default_and_named_graphs_are_distinct() {
        let mut store = QuadStore::new();
        let t = (Term::iri("s"), Term::iri("p"), Term::iri("o"));
        store.insert(&Quad::new(t.0.clone(), t.1.clone(), t.2.clone()));
        store.insert(&Quad::in_graph(t.0, t.1, t.2, GraphName::named("g1")));
        assert_eq!(store.len(), 2);
        assert_eq!(store.named_graphs(), vec!["g1".to_string()]);
    }

    #[test]
    fn pattern_scans_each_binding_combination() {
        let mut store = QuadStore::new();
        store.insert(&q("s1", "p1", "o1"));
        store.insert(&q("s1", "p2", "o2"));
        store.insert(&q("s2", "p1", "o1"));
        store.insert(&Quad::in_graph(
            Term::iri("s3"),
            Term::iri("p1"),
            Term::iri("o1"),
            GraphName::named("g"),
        ));

        let by_s = store
            .match_pattern(&QuadPattern::any().with_subject(Term::iri("s1")))
            .count();
        assert_eq!(by_s, 2);

        let by_p = store
            .match_pattern(&QuadPattern::any().with_predicate(Term::iri("p1")))
            .count();
        assert_eq!(by_p, 3);

        let by_o = store
            .match_pattern(&QuadPattern::any().with_object(Term::iri("o1")))
            .count();
        assert_eq!(by_o, 3);

        let by_g = store
            .match_pattern(&QuadPattern::any().with_graph(GraphName::named("g")))
            .count();
        assert_eq!(by_g, 1);

        let by_po = store
            .match_pattern(
                &QuadPattern::any()
                    .with_predicate(Term::iri("p1"))
                    .with_object(Term::iri("o1")),
            )
            .count();
        assert_eq!(by_po, 3);

        let all = store.match_pattern(&QuadPattern::any()).count();
        assert_eq!(all, 4);
    }

    #[test]
    fn unknown_terms_match_nothing() {
        let mut store = QuadStore::new();
        store.insert(&q("s", "p", "o"));
        let none = store
            .match_pattern(&QuadPattern::any().with_subject(Term::iri("missing")))
            .count();
        assert_eq!(none, 0);
    }

    #[test]
    fn rdf_star_annotation_roundtrip() {
        let mut store = QuadStore::new();
        let edge = Term::quoted(Term::iri("colA"), Term::iri("similar"), Term::iri("colB"));
        store.insert(&Quad::new(edge.clone(), Term::iri("score"), Term::double(0.93)));
        let hits: Vec<Quad> = store
            .match_pattern(&QuadPattern::any().with_subject(edge.clone()))
            .collect();
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].object.as_literal().unwrap().as_f64(), Some(0.93));
    }

    /// Store shape for the estimate tests: 3 quads share p1/o1, subjects
    /// differ, one quad lives in a named graph.
    fn estimate_store() -> QuadStore {
        let mut store = QuadStore::new();
        store.insert(&q("s1", "p1", "o1"));
        store.insert(&q("s1", "p2", "o2"));
        store.insert(&q("s2", "p1", "o1"));
        store.insert(&Quad::in_graph(
            Term::iri("s3"),
            Term::iri("p1"),
            Term::iri("o1"),
            GraphName::named("g"),
        ));
        store
    }

    fn enc(store: &QuadStore, s: Option<&str>, p: Option<&str>, o: Option<&str>) -> EncodedPattern {
        let id = |t: Option<&str>| t.map(|t| store.id_of(&Term::iri(t)).unwrap());
        EncodedPattern { subject: id(s), predicate: id(p), object: id(o), graph: None }
    }

    #[test]
    fn estimate_subject_prefix_uses_spog() {
        let store = estimate_store();
        assert_eq!(store.estimate_pattern(&enc(&store, Some("s1"), None, None)), 2);
        // (s, p) is an spog prefix too: exact
        assert_eq!(store.estimate_pattern(&enc(&store, Some("s1"), Some("p1"), None)), 1);
    }

    #[test]
    fn estimate_predicate_prefix_uses_posg() {
        let store = estimate_store();
        assert_eq!(store.estimate_pattern(&enc(&store, None, Some("p1"), None)), 3);
        // (p, o) is a posg prefix: exact
        assert_eq!(store.estimate_pattern(&enc(&store, None, Some("p1"), Some("o1"))), 3);
        assert_eq!(store.estimate_pattern(&enc(&store, None, Some("p2"), Some("o2"))), 1);
    }

    #[test]
    fn estimate_object_prefix_uses_ospg() {
        let store = estimate_store();
        assert_eq!(store.estimate_pattern(&enc(&store, None, None, Some("o1"))), 3);
        // (o, s) is an ospg prefix: exact
        assert_eq!(store.estimate_pattern(&enc(&store, Some("s2"), None, Some("o1"))), 1);
    }

    #[test]
    fn estimate_graph_prefix_uses_gspo() {
        let store = estimate_store();
        let g = store.graph_id(&GraphName::named("g")).unwrap();
        let pattern = EncodedPattern { graph: Some(g), ..EncodedPattern::any() };
        assert_eq!(store.estimate_pattern(&pattern), 1);
        // (g, s) is a gspo prefix: exact
        let s3 = store.id_of(&Term::iri("s3")).unwrap();
        let pattern = EncodedPattern { subject: Some(s3), graph: Some(g), ..EncodedPattern::any() };
        assert_eq!(store.estimate_pattern(&pattern), 1);
    }

    #[test]
    fn estimate_fully_unbound_is_store_len() {
        let store = estimate_store();
        assert_eq!(store.estimate_pattern(&EncodedPattern::any()), store.len());
        assert_eq!(QuadStore::new().estimate_pattern(&EncodedPattern::any()), 0);
    }

    #[test]
    fn estimate_fully_bound_is_membership() {
        let store = estimate_store();
        let mut present = enc(&store, Some("s1"), Some("p1"), Some("o1"));
        present.graph = store.graph_id(&GraphName::Default);
        assert_eq!(store.estimate_pattern(&present), 1);
        // bound to existing ids but no such quad
        let mut absent = enc(&store, Some("s2"), Some("p2"), Some("o2"));
        absent.graph = store.graph_id(&GraphName::Default);
        assert_eq!(store.estimate_pattern(&absent), 0);
    }

    #[test]
    fn estimate_agrees_with_match_ids_on_prefix_patterns() {
        let store = estimate_store();
        for pattern in [
            EncodedPattern::any(),
            enc(&store, Some("s1"), None, None),
            enc(&store, None, Some("p1"), None),
            enc(&store, None, None, Some("o1")),
            enc(&store, None, Some("p1"), Some("o1")),
        ] {
            assert_eq!(
                store.estimate_pattern(&pattern),
                store.match_ids(&pattern).count(),
                "pattern {pattern:?}"
            );
        }
    }

    #[test]
    fn quoted_inner_terms_are_resolvable() {
        // the dictionary interns quoted constituents so id-level evaluators
        // can destructure stored quoted triples
        let mut store = QuadStore::new();
        let edge = Term::quoted(Term::iri("colA"), Term::iri("similar"), Term::iri("colB"));
        store.insert(&Quad::new(edge, Term::iri("score"), Term::double(0.93)));
        assert!(store.id_of(&Term::iri("colA")).is_some());
        assert!(store.id_of(&Term::iri("similar")).is_some());
        assert!(store.id_of(&Term::iri("colB")).is_some());
    }

    #[test]
    fn decoded_quads_match_inserted() {
        let mut store = QuadStore::new();
        let quad = Quad::in_graph(
            Term::iri("s"),
            Term::iri("p"),
            Term::string("val"),
            GraphName::named("g"),
        );
        store.insert(&quad);
        let got: Vec<Quad> = store.iter().collect();
        assert_eq!(got, vec![quad]);
    }
}
