//! Dictionary-encoded quad store with multiple B-tree orderings.
//!
//! # Snapshot isolation
//!
//! All store data — the dictionary and the four index permutations —
//! lives in an immutable [`StoreSnapshot`] behind an `Arc`. The
//! [`QuadStore`] is a thin *writer handle* over that `Arc`:
//!
//! - Reads go through `Deref<Target = StoreSnapshot>`, so every read
//!   method is callable on both a live store and a detached snapshot.
//! - [`QuadStore::snapshot`] is one `Arc` clone: O(1), no index copy.
//! - Writes go through `Arc::make_mut`: with no snapshot outstanding
//!   (refcount 1) they mutate in place and cost exactly what they did
//!   before; with a snapshot held, the *first* write clones the whole
//!   store once (copy-on-write) and then mutates the private copy, so
//!   snapshot holders keep reading the frozen version.
//! - Concurrent serving uses detached [`StoreReader`] handles
//!   ([`QuadStore::reader`]): the writer *publishes* each committed
//!   version into a shared [`SnapshotCell`] slot at the end of every
//!   mutating call, and readers on other threads pick up the latest
//!   published snapshot with one mutex-guarded `Arc` clone — no lock is
//!   held during query execution. Publication only happens while
//!   readers exist, so single-threaded use never pays copy-on-write.
//!
//! Writers serving live readers should batch their mutations
//! ([`QuadStore::extend`] / [`QuadStore::extend_encoded`]): each
//! mutating call that follows a publication pays one store clone, so
//! per-quad insert loops under live readers cost a clone per quad while
//! batches amortize it to a clone per batch.

use std::collections::BTreeSet;
use std::ops::Deref;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

use lids_exec::{parallel_map_with, ParallelConfig};

use crate::dictionary::{Dictionary, TermId};
use crate::pattern::QuadPattern;
use crate::term::{GraphName, Quad, Term};

/// Per-phase timings and counts for one [`QuadStore::extend_stats`] call.
///
/// `lids-rdf` deliberately has no observability dependency; callers that
/// trace ingestion (the platform's `ingest` spans) translate these numbers
/// into span attributes themselves.
#[derive(Debug, Clone, Copy, Default)]
pub struct IngestStats {
    /// Quads offered to the batch, duplicates included.
    pub quads_in: usize,
    /// Quads that were not already present and landed in the indexes.
    pub quads_added: usize,
    /// Terms newly interned by this batch.
    pub new_terms: usize,
    /// Phase 1: parallel occurrence hashing + sort into term groups.
    pub extract_secs: f64,
    /// Phase 2: per-group dictionary resolution, interning, id scatter.
    pub encode_secs: f64,
    /// Phase 3: sorted-run construction / merge of the four indexes.
    pub index_secs: f64,
}

impl IngestStats {
    /// Fraction of offered quads that were duplicates (batch-internal or
    /// already stored). Zero for an empty batch.
    pub fn dedup_rate(&self) -> f64 {
        if self.quads_in == 0 {
            0.0
        } else {
            1.0 - self.quads_added as f64 / self.quads_in as f64
        }
    }

    /// Total wall-clock seconds across the three phases.
    pub fn total_secs(&self) -> f64 {
        self.extract_secs + self.encode_secs + self.index_secs
    }

    /// Offered quads per second over the three phases.
    pub fn quads_per_sec(&self) -> f64 {
        let secs = self.total_secs();
        if secs > 0.0 {
            self.quads_in as f64 / secs
        } else {
            0.0
        }
    }
}

/// Per-phase timings and counts for one [`QuadStore::retract`] call.
///
/// The retraction mirror of [`IngestStats`]: encode resolves terms
/// against the dictionary (a quad naming any un-interned term cannot be
/// present and is skipped), index runs the sorted anti-merge over the
/// four permutations.
#[derive(Debug, Clone, Copy, Default)]
pub struct RetractStats {
    /// Quads offered to the batch, duplicates and absentees included.
    pub quads_in: usize,
    /// Quads that were present and left the indexes.
    pub quads_removed: usize,
    /// Phase 1: dictionary resolution of the batch's terms.
    pub encode_secs: f64,
    /// Phase 2: sorted-run anti-merge of the four indexes.
    pub index_secs: f64,
}

impl RetractStats {
    /// Total wall-clock seconds across both phases.
    pub fn total_secs(&self) -> f64 {
        self.encode_secs + self.index_secs
    }

    /// Offered quads per second over both phases.
    pub fn quads_per_sec(&self) -> f64 {
        let secs = self.total_secs();
        if secs > 0.0 {
            self.quads_in as f64 / secs
        } else {
            0.0
        }
    }
}

/// A quad encoded as four term ids: `[subject, predicate, object, graph]`.
///
/// The graph slot holds the id of the graph IRI term, or the default-graph sentinel
/// for the default graph.
pub type EncodedQuad = [u32; 4];

/// A quad pattern over term ids: `None` positions are wildcards.
///
/// This is the fully-resolved form of a [`QuadPattern`] — constants are
/// already dictionary ids, so matching ([`QuadStore::match_ids`]) and
/// cardinality estimation ([`QuadStore::estimate_pattern`]) never touch
/// [`Term`] values. The graph slot holds the id of the graph IRI term
/// (the default graph's sentinel IRI included).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct EncodedPattern {
    pub subject: Option<TermId>,
    pub predicate: Option<TermId>,
    pub object: Option<TermId>,
    pub graph: Option<TermId>,
}

impl EncodedPattern {
    /// The all-wildcard pattern.
    pub fn any() -> Self {
        Self::default()
    }

    fn ids(&self) -> [Option<u32>; 4] {
        [
            self.subject.map(|t| t.0),
            self.predicate.map(|t| t.0),
            self.object.map(|t| t.0),
            self.graph.map(|t| t.0),
        ]
    }
}

/// One (index, permuted pattern, ordering) contender for an encoded
/// pattern's scan.
type IndexCandidate<'a> = (&'a BTreeSet<[u32; 4]>, [Option<u32>; 4], IndexOrder);

/// A chosen index plus the range bounds for one encoded pattern.
struct ScanPlan<'a> {
    index: &'a BTreeSet<[u32; 4]>,
    lo: [u32; 4],
    hi: [u32; 4],
    prefix_len: usize,
    /// Bound positions in index key order, for filtering past the prefix.
    residual: [Option<u32>; 4],
    /// Which of the four orderings was chosen.
    order: IndexOrder,
}

/// One of the four index orderings a [`QuadStore`] maintains.
///
/// Names spell the key order: `Spog` keys are `[s, p, o, g]`, `Posg`
/// keys `[p, o, s, g]`, `Ospg` keys `[o, s, p, g]`, `Gspo` keys
/// `[g, s, p, o]`. [`IndexOrder::key`]/[`IndexOrder::decode`] convert a
/// quad between `[s, p, o, g]` form and the ordering's key form, and
/// [`IndexOrder::positions`] exposes the permutation itself so callers
/// (the vectorized join operators) can place a join key into an index
/// prefix generically.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum IndexOrder {
    Spog,
    Posg,
    Ospg,
    Gspo,
}

impl IndexOrder {
    /// All four orderings, in declaration order.
    pub const ALL: [IndexOrder; 4] = [
        IndexOrder::Spog,
        IndexOrder::Posg,
        IndexOrder::Ospg,
        IndexOrder::Gspo,
    ];

    /// `positions()[i]` is the `[s, p, o, g]` slot stored at key
    /// position `i` of this ordering.
    pub const fn positions(self) -> [usize; 4] {
        match self {
            IndexOrder::Spog => [0, 1, 2, 3],
            IndexOrder::Posg => [1, 2, 0, 3],
            IndexOrder::Ospg => [2, 0, 1, 3],
            IndexOrder::Gspo => [3, 0, 1, 2],
        }
    }

    /// Permute a quad `[s, p, o, g]` into this ordering's key form.
    pub fn key(self, quad: EncodedQuad) -> [u32; 4] {
        let pos = self.positions();
        [quad[pos[0]], quad[pos[1]], quad[pos[2]], quad[pos[3]]]
    }

    /// Permute an index key back to `[s, p, o, g]`.
    pub fn decode(self, key: [u32; 4]) -> EncodedQuad {
        let pos = self.positions();
        let mut quad = [0u32; 4];
        for (i, &p) in pos.iter().enumerate() {
            quad[p] = key[i];
        }
        quad
    }
}

/// How far [`RunCursor::seek_ge`] gallops linearly before falling back
/// to a logarithmic B-tree re-range. Nearby targets (the common case in
/// merge joins over correlated runs) are reached without paying a
/// root-to-leaf descent.
const GALLOP_STEPS: usize = 8;

/// How many cursor operations pass between loads of an attached
/// interrupt flag — cheap enough to leave on, responsive enough that a
/// cancelled query stops scanning within a few dozen keys.
const INTERRUPT_STRIDE: u32 = 64;

/// Ceiling on index entries walked per cardinality estimate — bounds
/// planner cost on huge ranges; see [`QuadStore::estimate_pattern_exact`].
const ESTIMATE_WALK_CAP: usize = 4096;

/// A forward-only, seekable cursor over one sorted index run.
///
/// Obtained from [`QuadStore::run_cursor`]; yields raw index keys in the
/// chosen [`IndexOrder`] (use [`IndexOrder::decode`] to recover
/// `[s, p, o, g]`). [`RunCursor::seek_ge`] skips ahead with a bounded
/// linear gallop first and a `BTreeSet::range` re-anchor only when the
/// target is far, so sort-merge consumers pay O(1) amortised per nearby
/// key and O(log n) only on long skips. Seeking backwards is a no-op:
/// the cursor never moves left.
///
/// A cursor may carry an interrupt flag
/// ([`RunCursor::with_interrupt`]): once the flag flips, the cursor
/// reports itself exhausted within [`INTERRUPT_STRIDE`] operations, so a
/// cancelled or over-deadline query stops galloping without the caller
/// reaching a batch-boundary check first. The caller is responsible for
/// turning the early exhaustion into a typed error.
pub struct RunCursor<'a> {
    set: &'a BTreeSet<[u32; 4]>,
    iter: std::collections::btree_set::Range<'a, [u32; 4]>,
    current: Option<[u32; 4]>,
    interrupt: Option<Arc<AtomicBool>>,
    ops: u32,
}

impl<'a> RunCursor<'a> {
    fn new(set: &'a BTreeSet<[u32; 4]>) -> Self {
        let mut iter = set.range([0, 0, 0, 0]..);
        let current = iter.next().copied();
        RunCursor { set, iter, current, interrupt: None, ops: 0 }
    }

    /// Attach a cooperative interrupt flag (see the type docs).
    pub fn with_interrupt(mut self, flag: Arc<AtomicBool>) -> Self {
        self.interrupt = Some(flag);
        self
    }

    /// Strided interrupt probe; exhausts the cursor when the flag is set.
    fn interrupted(&mut self) -> bool {
        let Some(flag) = &self.interrupt else {
            return false;
        };
        self.ops = self.ops.wrapping_add(1);
        if self.ops.is_multiple_of(INTERRUPT_STRIDE) && flag.load(Ordering::Relaxed) {
            self.current = None;
            return true;
        }
        false
    }

    /// The key the cursor is positioned on, or `None` once exhausted.
    pub fn current(&self) -> Option<[u32; 4]> {
        self.current
    }

    /// Move to the next key in the run.
    pub fn advance(&mut self) {
        if self.interrupted() {
            return;
        }
        self.current = self.iter.next().copied();
    }

    /// Position the cursor on the first key `>= target` at or after the
    /// current position (never moves backwards).
    pub fn seek_ge(&mut self, target: [u32; 4]) {
        if self.interrupted() {
            return;
        }
        match self.current {
            None => return,
            Some(cur) if cur >= target => return,
            Some(_) => {}
        }
        // bounded linear gallop: nearby targets avoid the tree descent
        for _ in 0..GALLOP_STEPS {
            match self.iter.next() {
                Some(&key) => {
                    if key >= target {
                        self.current = Some(key);
                        return;
                    }
                }
                None => {
                    self.current = None;
                    return;
                }
            }
        }
        // far target: re-anchor with a logarithmic range query
        self.iter = self.set.range(target..);
        self.current = self.iter.next().copied();
    }
}

/// The index scan [`QuadStore`] would run for an encoded pattern: the
/// chosen ordering, the bound-prefix range, and any bound positions that
/// fall outside the prefix (which a scan must residual-filter).
///
/// Public mirror of the store's internal planner, so the vectorized
/// query engine can reason about (and report) index selection without
/// re-deriving the permutation logic.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScanSpec {
    /// The ordering whose key prefix covers the most bound positions.
    pub order: IndexOrder,
    /// Inclusive range bounds in the chosen ordering's key form.
    pub lo: [u32; 4],
    pub hi: [u32; 4],
    /// How many leading key positions are pinned by the range.
    pub prefix_len: usize,
    /// Bound positions in index key order; entries past `prefix_len`
    /// must be filtered per key.
    pub residual: [Option<u32>; 4],
}

/// Index orderings maintained by the store.
///
/// Each is a `BTreeSet` of the quad's ids permuted so a range scan over a
/// bound prefix enumerates matches:
/// - `spog`: subject-bound scans and full scans
/// - `posg`: predicate(+object)-bound scans — the workhorse for `?x rdf:type C`
/// - `ospg`: object-bound scans — reverse traversal
/// - `gspo`: graph-scoped scans — per-pipeline named-graph queries
#[derive(Debug, Clone)]
pub struct StoreSnapshot {
    dict: Dictionary,
    spog: BTreeSet<[u32; 4]>,
    posg: BTreeSet<[u32; 4]>,
    ospg: BTreeSet<[u32; 4]>,
    gspo: BTreeSet<[u32; 4]>,
    /// Process-unique identity, so caches keyed on a store never confuse
    /// two stores that happen to share an address. Shared by every
    /// snapshot of one store lineage.
    id: u64,
    /// Bumped on every mutation; `(id, generation)` validates any state
    /// derived from a snapshot of this store (compiled query plans).
    generation: u64,
}

/// Mutex-guarded slot the writer publishes committed snapshots into and
/// detached [`StoreReader`]s load from. The lock is held only for the
/// duration of one `Arc` clone or store — never across query execution.
///
/// The slot is empty whenever no reader handle exists: the writer skips
/// publication then, which both reclaims superseded snapshots promptly
/// and keeps the copy-on-write path cold for single-threaded use.
#[derive(Debug)]
struct SnapshotCell {
    slot: Mutex<Option<Arc<StoreSnapshot>>>,
}

impl SnapshotCell {
    fn load(&self) -> Option<Arc<StoreSnapshot>> {
        self.slot.lock().unwrap_or_else(|e| e.into_inner()).clone()
    }

    fn store(&self, snap: Option<Arc<StoreSnapshot>>) {
        *self.slot.lock().unwrap_or_else(|e| e.into_inner()) = snap;
    }
}

/// A detached read handle onto a [`QuadStore`], safe to move to other
/// threads while the owning store keeps mutating.
///
/// [`StoreReader::snapshot`] returns the latest snapshot the writer
/// *published* — every mutating [`QuadStore`] call publishes its result
/// before returning, so a reader observes exactly the sequence of
/// committed store states, never a half-applied batch. Cloning a reader
/// is cheap and yields an equivalent handle.
#[derive(Debug, Clone)]
pub struct StoreReader {
    cell: Arc<SnapshotCell>,
}

impl StoreReader {
    /// The latest published snapshot: one mutex-guarded `Arc` clone.
    pub fn snapshot(&self) -> Arc<StoreSnapshot> {
        match self.cell.load() {
            Some(snap) => snap,
            // The writer only empties the cell when no reader handle
            // exists, and `QuadStore::reader` fills it before handing
            // the cell out.
            None => unreachable!("snapshot cell empty while a StoreReader exists"),
        }
    }
}

/// Writer handle over the store's current [`StoreSnapshot`].
///
/// Derefs to [`StoreSnapshot`], so all read methods are available
/// directly; mutating methods copy-on-write when a snapshot is shared
/// (see the module docs for the full protocol).
#[derive(Debug)]
pub struct QuadStore {
    snap: Arc<StoreSnapshot>,
    published: Arc<SnapshotCell>,
    /// `Some(base_generation)` while a delta is open
    /// ([`QuadStore::begin_delta`]): publication is suppressed and the
    /// commit collapses all interim generation bumps to `base + 1`.
    delta: Option<u64>,
}

impl Deref for QuadStore {
    type Target = StoreSnapshot;

    fn deref(&self) -> &StoreSnapshot {
        &self.snap
    }
}

impl Default for QuadStore {
    fn default() -> Self {
        static NEXT_STORE_ID: AtomicU64 = AtomicU64::new(1);
        QuadStore {
            snap: Arc::new(StoreSnapshot {
                dict: Dictionary::default(),
                spog: BTreeSet::new(),
                posg: BTreeSet::new(),
                ospg: BTreeSet::new(),
                gspo: BTreeSet::new(),
                id: NEXT_STORE_ID.fetch_add(1, Ordering::Relaxed),
                generation: 0,
            }),
            published: Arc::new(SnapshotCell { slot: Mutex::new(None) }),
            delta: None,
        }
    }
}

/// Sentinel graph IRI used internally for the default graph.
const DEFAULT_GRAPH_IRI: &str = "urn:lids:default-graph";

impl StoreSnapshot {
    /// Number of quads in the store.
    pub fn len(&self) -> usize {
        self.spog.len()
    }

    /// True when the store holds no quads.
    pub fn is_empty(&self) -> bool {
        self.spog.is_empty()
    }

    /// Number of distinct interned terms (≈ distinct nodes + literals).
    pub fn term_count(&self) -> usize {
        self.dict.len()
    }

    /// Access the dictionary (read-only).
    pub fn dictionary(&self) -> &Dictionary {
        &self.dict
    }

    /// Process-unique store identity (stable for the store's lifetime).
    pub fn store_id(&self) -> u64 {
        self.id
    }

    /// Mutation counter: any insert/remove/bulk-load bumps it, so
    /// `(store_id, generation)` keys cached state derived from the store
    /// — a compiled query plan is valid exactly while the pair matches.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    fn graph_term(graph: &GraphName) -> Term {
        match graph {
            GraphName::Default => Term::iri(DEFAULT_GRAPH_IRI),
            GraphName::Named(iri) => Term::iri(iri.clone()),
        }
    }

    fn graph_of(&self, id: TermId) -> GraphName {
        match self.dict.term(id) {
            Term::Iri(iri) if iri == DEFAULT_GRAPH_IRI => GraphName::Default,
            Term::Iri(iri) => GraphName::Named(iri.clone()),
            other => panic!("graph slot held non-IRI term {other:?}"),
        }
    }

    /// In-place insert on the private copy; see [`QuadStore::insert`].
    fn insert_quad(&mut self, quad: &Quad) -> bool {
        let s = self.dict.intern(&quad.subject).0;
        let p = self.dict.intern(&quad.predicate).0;
        let o = self.dict.intern(&quad.object).0;
        let g_term = Self::graph_term(&quad.graph);
        let g = self.dict.intern(&g_term).0;
        let fresh = self.spog.insert([s, p, o, g]);
        if fresh {
            self.posg.insert([p, o, s, g]);
            self.ospg.insert([o, s, p, g]);
            self.gspo.insert([g, s, p, o]);
            self.generation += 1;
        }
        fresh
    }

    /// In-place bulk insert on the private copy; see
    /// [`QuadStore::extend_stats`].
    ///
    /// Three phases, all sort-based:
    /// 1. **Extract** — every term occurrence (4 slots per quad) is hashed
    ///    with the dictionary's hasher, in parallel, exactly once; the
    ///    `(hash, position)` pairs are then sorted so occurrences of the
    ///    same term become one contiguous group.
    /// 2. **Encode** — each group is resolved against the dictionary with
    ///    a *single* probe (a sequential insert loop probes once per
    ///    occurrence), fresh terms are interned in order of their first
    ///    occurrence — reproducing the insert-order-dense [`TermId`]
    ///    assignment of a sequential loop — and the resolved ids are
    ///    scattered into `[s, p, o, g]` tuples.
    /// 3. **Index** — the four index permutations are built as sorted,
    ///    deduplicated runs in parallel, then bulk-built
    ///    (`BTreeSet::from_iter` over a sorted run, empty store) or merged
    ///    into the existing trees (incremental).
    ///
    /// Small batches run the same phases serially, so semantics never
    /// depend on batch size.
    fn extend_batch(&mut self, quads: Vec<Quad>) -> IngestStats {
        let mut stats = IngestStats { quads_in: quads.len(), ..IngestStats::default() };
        assert!(quads.len() <= (u32::MAX / 4) as usize, "extend: batch too large");
        let terms_before = self.dict.len();
        let quads_before = self.spog.len();
        let threads = Self::ingest_threads(quads.len());

        // Phase 1: hash every occurrence once (parallel), then sort the
        // (hash, flat position) pairs to group occurrences by term.
        let t = Instant::now();
        let dict = &self.dict;
        let hashes: Vec<[u64; 4]> = parallel_map_with(
            ParallelConfig { threads, chunk: 1024 },
            &quads,
            |quad| {
                [
                    dict.hash_of(&quad.subject),
                    dict.hash_of(&quad.predicate),
                    dict.hash_of(&quad.object),
                    match &quad.graph {
                        GraphName::Default => dict.hash_of_iri(DEFAULT_GRAPH_IRI),
                        GraphName::Named(iri) => dict.hash_of_iri(iri),
                    },
                ]
            },
        );
        let mut occ: Vec<(u64, u32)> = Vec::with_capacity(quads.len() * 4);
        for (i, h4) in hashes.iter().enumerate() {
            for (slot, &h) in h4.iter().enumerate() {
                occ.push((h, (i * 4 + slot) as u32));
            }
        }
        drop(hashes);
        occ.sort_unstable();
        stats.extract_secs = t.elapsed().as_secs_f64();

        // Phase 2: resolve each group with one dictionary probe, intern
        // fresh terms in first-occurrence order, scatter ids.
        let t = Instant::now();
        let slot_at = |flat: u32| -> SlotRef<'_> {
            let quad = &quads[(flat / 4) as usize];
            match flat % 4 {
                0 => SlotRef::Term(&quad.subject),
                1 => SlotRef::Term(&quad.predicate),
                2 => SlotRef::Term(&quad.object),
                _ => match &quad.graph {
                    GraphName::Default => SlotRef::Graph(DEFAULT_GRAPH_IRI),
                    GraphName::Named(iri) => SlotRef::Graph(iri),
                },
            }
        };
        let mut encoded: Vec<EncodedQuad> = vec![[0u32; 4]; quads.len()];
        // Groups absent from the dictionary, interned later in
        // first-occurrence order. Members are usually the whole hash
        // group; hash collisions (distinct terms, equal hash) fall back to
        // explicit member lists.
        let mut pending: Vec<PendingGroup> = Vec::new();
        let mut i = 0usize;
        while i < occ.len() {
            let hash = occ[i].0;
            let mut j = i + 1;
            while j < occ.len() && occ[j].0 == hash {
                j += 1;
            }
            let first = slot_at(occ[i].1);
            let uniform = occ[i + 1..j].iter().all(|&(_, f)| first.matches(&slot_at(f)));
            if uniform {
                // the common case: one distinct term per hash group
                match first.resolve(&self.dict, hash) {
                    Some(id) => {
                        for &(_, f) in &occ[i..j] {
                            write(&mut encoded, f, id.0);
                        }
                    }
                    None => pending.push(PendingGroup {
                        first: occ[i].1,
                        hash,
                        members: PendingMembers::Run(i as u32, j as u32),
                    }),
                }
            } else {
                // hash collision: partition the group by real equality
                let mut reps: Vec<(SlotRef<'_>, Option<TermId>, usize)> = Vec::new();
                for &(_, f) in &occ[i..j] {
                    let slot = slot_at(f);
                    match reps.iter().find(|(r, ..)| r.matches(&slot)) {
                        Some(&(_, Some(id), _)) => write(&mut encoded, f, id.0),
                        Some(&(_, None, p)) => match &mut pending[p].members {
                            PendingMembers::List(list) => list.push(f),
                            PendingMembers::Run(..) => unreachable!("collision groups use lists"),
                        },
                        None => {
                            let resolved = slot.resolve(&self.dict, hash);
                            match resolved {
                                Some(id) => write(&mut encoded, f, id.0),
                                None => pending.push(PendingGroup {
                                    first: f,
                                    hash,
                                    members: PendingMembers::List(vec![f]),
                                }),
                            }
                            reps.push((slot, resolved, pending.len().saturating_sub(1)));
                        }
                    }
                }
            }
            i = j;
        }
        // First-occurrence order makes the ids of fresh terms identical to
        // a sequential insert loop's. Quoted triples intern their inner
        // terms first (also matching the sequential order), so a pending
        // term may already exist by the time its turn comes —
        // `intern_hashed` re-probes and is a no-op then.
        pending.sort_unstable_by_key(|g| g.first);
        for group in &pending {
            let id = match slot_at(group.first) {
                SlotRef::Term(term) => self.dict.intern_hashed(group.hash, term),
                SlotRef::Graph(iri) => self.dict.intern_iri_hashed(group.hash, iri),
            };
            match &group.members {
                PendingMembers::Run(a, b) => {
                    for &(_, f) in &occ[*a as usize..*b as usize] {
                        write(&mut encoded, f, id.0);
                    }
                }
                PendingMembers::List(list) => {
                    for &f in list {
                        write(&mut encoded, f, id.0);
                    }
                }
            }
        }
        stats.new_terms = self.dict.len() - terms_before;
        stats.encode_secs = t.elapsed().as_secs_f64();

        // Phase 3: sorted-run construction / merge of the four indexes.
        let t = Instant::now();
        self.merge_encoded(&encoded, threads);
        stats.index_secs = t.elapsed().as_secs_f64();
        stats.quads_added = self.spog.len() - quads_before;
        stats
    }

    /// In-place encoded bulk insert on the private copy; see
    /// [`QuadStore::extend_encoded`].
    fn extend_encoded_batch(&mut self, encoded: &[EncodedQuad]) -> usize {
        let terms = self.dict.len() as u32;
        assert!(
            encoded.iter().all(|q| q.iter().all(|&id| id < terms)),
            "extend_encoded: id outside this store's dictionary"
        );
        let before = self.spog.len();
        self.merge_encoded(encoded, Self::ingest_threads(encoded.len()));
        self.spog.len() - before
    }

    /// Worker count for a batch of `n` quads: one thread per ~2k quads,
    /// capped at available parallelism. Small batches get 1 (fully serial —
    /// `parallel_map_with` spawns nothing for a single thread).
    fn ingest_threads(n: usize) -> usize {
        const SHARD_MIN: usize = 2048;
        ParallelConfig::default().threads.min(n / SHARD_MIN).max(1)
    }

    /// Phase 3: permute the batch into the four index orders, sort and
    /// dedup each run in parallel, then bulk-build or merge per index.
    fn merge_encoded(&mut self, encoded: &[EncodedQuad], threads: usize) {
        // bulk loads may intern terms even when every quad is a duplicate
        // of a pending batch member, so invalidate unconditionally
        self.generation += 1;
        // Sort + dedup the batch once in spog order; the other three
        // permutations sort the already-deduplicated run, not the raw
        // batch, so batch-internal duplicates are paid for only once.
        let mut spog_run: Vec<[u32; 4]> = encoded.to_vec();
        spog_run.sort_unstable();
        spog_run.dedup();
        let perms: [fn(EncodedQuad) -> [u32; 4]; 3] = [
            |[s, p, o, g]| [p, o, s, g],
            |[s, p, o, g]| [o, s, p, g],
            |[s, p, o, g]| [g, s, p, o],
        ];
        let perm_ids: [usize; 3] = [0, 1, 2];
        let deduped = &spog_run;
        let mut runs: Vec<Vec<[u32; 4]>> = parallel_map_with(
            ParallelConfig { threads: threads.min(3), chunk: 1 },
            &perm_ids,
            |&i| {
                let mut run: Vec<[u32; 4]> = deduped.iter().map(|&q| perms[i](q)).collect();
                run.sort_unstable();
                run
            },
        );
        let (Some(gspo_run), Some(ospg_run), Some(posg_run)) =
            (runs.pop(), runs.pop(), runs.pop())
        else {
            unreachable!("parallel_map_with returns one run per permutation")
        };
        if threads > 1 {
            std::thread::scope(|scope| {
                scope.spawn(|| merge_sorted_run(&mut self.posg, posg_run));
                scope.spawn(|| merge_sorted_run(&mut self.ospg, ospg_run));
                scope.spawn(|| merge_sorted_run(&mut self.gspo, gspo_run));
                merge_sorted_run(&mut self.spog, spog_run);
            });
        } else {
            merge_sorted_run(&mut self.spog, spog_run);
            merge_sorted_run(&mut self.posg, posg_run);
            merge_sorted_run(&mut self.ospg, ospg_run);
            merge_sorted_run(&mut self.gspo, gspo_run);
        }
        debug_assert!(self.validate_indexes());
    }

    /// Check that the four orderings agree: equal sizes, and every spog
    /// entry present (permuted) in posg/ospg/gspo. Test and debug aid.
    pub fn validate_indexes(&self) -> bool {
        self.posg.len() == self.spog.len()
            && self.ospg.len() == self.spog.len()
            && self.gspo.len() == self.spog.len()
            && self.spog.iter().all(|&[s, p, o, g]| {
                self.posg.contains(&[p, o, s, g])
                    && self.ospg.contains(&[o, s, p, g])
                    && self.gspo.contains(&[g, s, p, o])
            })
    }

    /// In-place remove on the private copy; see [`QuadStore::remove`].
    fn remove_quad(&mut self, quad: &Quad) -> bool {
        let (Some(s), Some(p), Some(o)) = (
            self.dict.id_of(&quad.subject),
            self.dict.id_of(&quad.predicate),
            self.dict.id_of(&quad.object),
        ) else {
            return false;
        };
        let Some(g) = self.dict.id_of(&Self::graph_term(&quad.graph)) else {
            return false;
        };
        let (s, p, o, g) = (s.0, p.0, o.0, g.0);
        let removed = self.spog.remove(&[s, p, o, g]);
        if removed {
            self.posg.remove(&[p, o, s, g]);
            self.ospg.remove(&[o, s, p, g]);
            self.gspo.remove(&[g, s, p, o]);
            self.generation += 1;
        }
        removed
    }

    /// In-place batch retraction on the private copy; see
    /// [`QuadStore::retract`].
    fn retract_batch(&mut self, quads: &[Quad]) -> RetractStats {
        let mut stats = RetractStats { quads_in: quads.len(), ..RetractStats::default() };
        // Phase 1: resolve terms. A quad naming any term the dictionary
        // has never seen cannot be in the store — skip it.
        let t = Instant::now();
        let mut encoded: Vec<EncodedQuad> = Vec::with_capacity(quads.len());
        for quad in quads {
            let (Some(s), Some(p), Some(o)) = (
                self.dict.id_of(&quad.subject),
                self.dict.id_of(&quad.predicate),
                self.dict.id_of(&quad.object),
            ) else {
                continue;
            };
            let Some(g) = self.dict.id_of(&Self::graph_term(&quad.graph)) else {
                continue;
            };
            encoded.push([s.0, p.0, o.0, g.0]);
        }
        stats.encode_secs = t.elapsed().as_secs_f64();

        // Phase 2: sorted-run anti-merge, parallel across permutations.
        let t = Instant::now();
        stats.quads_removed =
            self.retract_encoded_batch(&encoded, Self::ingest_threads(encoded.len()));
        stats.index_secs = t.elapsed().as_secs_f64();
        stats
    }

    /// In-place encoded batch retraction on the private copy; see
    /// [`QuadStore::retract_encoded`].
    ///
    /// The anti-merge mirror of [`StoreSnapshot::merge_encoded`]: the
    /// batch is sorted and deduplicated once in spog order, permuted into
    /// the other three key orders, and each index drops the run via a
    /// sorted two-stream difference (rebuild for big runs, point removes
    /// for small ones), in parallel across the four trees.
    fn retract_encoded_batch(&mut self, encoded: &[EncodedQuad], threads: usize) -> usize {
        let before = self.spog.len();
        // batch-level invalidation, mirroring merge_encoded
        self.generation += 1;
        if encoded.is_empty() {
            return 0;
        }
        let mut spog_run: Vec<[u32; 4]> = encoded.to_vec();
        spog_run.sort_unstable();
        spog_run.dedup();
        let perms: [fn(EncodedQuad) -> [u32; 4]; 3] = [
            |[s, p, o, g]| [p, o, s, g],
            |[s, p, o, g]| [o, s, p, g],
            |[s, p, o, g]| [g, s, p, o],
        ];
        let perm_ids: [usize; 3] = [0, 1, 2];
        let deduped = &spog_run;
        let mut runs: Vec<Vec<[u32; 4]>> = parallel_map_with(
            ParallelConfig { threads: threads.min(3), chunk: 1 },
            &perm_ids,
            |&i| {
                let mut run: Vec<[u32; 4]> = deduped.iter().map(|&q| perms[i](q)).collect();
                run.sort_unstable();
                run
            },
        );
        let (Some(gspo_run), Some(ospg_run), Some(posg_run)) =
            (runs.pop(), runs.pop(), runs.pop())
        else {
            unreachable!("parallel_map_with returns one run per permutation")
        };
        if threads > 1 {
            std::thread::scope(|scope| {
                scope.spawn(|| anti_merge_sorted_run(&mut self.posg, posg_run));
                scope.spawn(|| anti_merge_sorted_run(&mut self.ospg, ospg_run));
                scope.spawn(|| anti_merge_sorted_run(&mut self.gspo, gspo_run));
                anti_merge_sorted_run(&mut self.spog, spog_run);
            });
        } else {
            anti_merge_sorted_run(&mut self.spog, spog_run);
            anti_merge_sorted_run(&mut self.posg, posg_run);
            anti_merge_sorted_run(&mut self.ospg, ospg_run);
            anti_merge_sorted_run(&mut self.gspo, gspo_run);
        }
        debug_assert!(self.validate_indexes());
        before - self.spog.len()
    }

    /// True when the quad is present.
    pub fn contains(&self, quad: &Quad) -> bool {
        let (Some(s), Some(p), Some(o)) = (
            self.dict.id_of(&quad.subject),
            self.dict.id_of(&quad.predicate),
            self.dict.id_of(&quad.object),
        ) else {
            return false;
        };
        let Some(g) = self.dict.id_of(&Self::graph_term(&quad.graph)) else {
            return false;
        };
        self.spog.contains(&[s.0, p.0, o.0, g.0])
    }

    /// Resolve a term id (delegates to the dictionary).
    pub fn term(&self, id: TermId) -> &Term {
        self.dict.term(id)
    }

    /// Id of a term if it is interned.
    pub fn id_of(&self, term: &Term) -> Option<TermId> {
        self.dict.id_of(term)
    }

    /// Encode a decoded pattern's constants to ids. Returns `None` when a
    /// bound term is not interned — such a pattern matches nothing.
    pub fn encode_pattern(&self, pattern: &QuadPattern) -> Option<EncodedPattern> {
        let resolve = |t: &Option<Term>| match t {
            None => Some(None),
            Some(t) => self.dict.id_of(t).map(Some),
        };
        Some(EncodedPattern {
            subject: resolve(&pattern.subject)?,
            predicate: resolve(&pattern.predicate)?,
            object: resolve(&pattern.object)?,
            graph: match &pattern.graph {
                None => None,
                Some(g) => Some(self.dict.id_of(&Self::graph_term(g))?),
            },
        })
    }

    /// Id of the sentinel IRI standing in for the default graph, if any
    /// default-graph quad has been inserted.
    pub fn default_graph_id(&self) -> Option<TermId> {
        self.dict.id_of(&Term::iri(DEFAULT_GRAPH_IRI))
    }

    /// Id a [`GraphName`] occupies in the graph slot, if interned.
    pub fn graph_id(&self, graph: &GraphName) -> Option<TermId> {
        self.dict.id_of(&Self::graph_term(graph))
    }

    /// Pick the index with the longest bound prefix for `ids` (in
    /// `[s, p, o, g]` order) and compute its range bounds.
    ///
    /// Orderings: spog=(s,p,o,g) posg=(p,o,s,g) ospg=(o,s,p,g) gspo=(g,s,p,o)
    ///
    /// Equal-length prefixes (e.g. a `(p, g)` pattern reaches prefix 1 in
    /// both posg and gspo) are tie-broken by estimated range size: each
    /// contender's range is probed up to [`TIE_SCAN_CAP`] entries and the
    /// smallest wins, so a selective object bound beats an unselective
    /// subject bound instead of falling back to declaration order.
    /// The four (index, permuted pattern, ordering) candidates for a
    /// pattern's ids in `[s, p, o, g]` order.
    fn candidates(&self, [s, p, o, g]: [Option<u32>; 4]) -> [IndexCandidate<'_>; 4] {
        [
            (&self.spog, [s, p, o, g], IndexOrder::Spog),
            (&self.posg, [p, o, s, g], IndexOrder::Posg),
            (&self.ospg, [o, s, p, g], IndexOrder::Ospg),
            (&self.gspo, [g, s, p, o], IndexOrder::Gspo),
        ]
    }

    fn plan(&self, ids: [Option<u32>; 4]) -> ScanPlan<'_> {
        let candidates = self.candidates(ids);
        let prefix = |key: &[Option<u32>; 4]| key.iter().take_while(|b| b.is_some()).count();
        let lens = [
            prefix(&candidates[0].1),
            prefix(&candidates[1].1),
            prefix(&candidates[2].1),
            prefix(&candidates[3].1),
        ];
        let best_len = lens.iter().copied().max().unwrap_or(0);
        let mut best = lens.iter().position(|&l| l == best_len).unwrap_or(0);
        let contenders = lens.iter().filter(|&&l| l == best_len).count();
        // With 0 bound positions every index is a full scan, and with all 4
        // bound every range is a membership probe — only partial prefixes
        // are worth the comparison.
        if contenders > 1 && best_len > 0 && best_len < 4 {
            const TIE_SCAN_CAP: usize = 64;
            let mut best_count = usize::MAX;
            for (i, (index, key, _)) in candidates.iter().enumerate() {
                if lens[i] != best_len {
                    continue;
                }
                let (lo, hi) = Self::range_bounds(key, best_len);
                let count = index.range(lo..=hi).take(TIE_SCAN_CAP).count();
                if count < best_count {
                    best_count = count;
                    best = i;
                }
            }
        }
        let (index, key, order) = candidates[best];
        let (lo, hi) = Self::range_bounds(&key, best_len);
        ScanPlan { index, lo, hi, prefix_len: best_len, residual: key, order }
    }

    /// The scan the store's planner would run for `pattern`: chosen
    /// [`IndexOrder`], prefix range, and residual-filter positions.
    pub fn scan_spec(&self, pattern: &EncodedPattern) -> ScanSpec {
        let ScanPlan { lo, hi, prefix_len, residual, order, .. } = self.plan(pattern.ids());
        ScanSpec { order, lo, hi, prefix_len, residual }
    }

    /// A seekable forward cursor over one index ordering's sorted run.
    pub fn run_cursor(&self, order: IndexOrder) -> RunCursor<'_> {
        RunCursor::new(self.index_set(order))
    }

    fn index_set(&self, order: IndexOrder) -> &BTreeSet<[u32; 4]> {
        match order {
            IndexOrder::Spog => &self.spog,
            IndexOrder::Posg => &self.posg,
            IndexOrder::Ospg => &self.ospg,
            IndexOrder::Gspo => &self.gspo,
        }
    }

    fn range_bounds(key: &[Option<u32>; 4], prefix_len: usize) -> ([u32; 4], [u32; 4]) {
        let mut lo = [0u32; 4];
        let mut hi = [u32::MAX; 4];
        // prefix_len counts the leading bound positions, so the take()'d
        // entries are all Some
        for (i, bound) in key.iter().take(prefix_len).enumerate() {
            if let Some(v) = bound {
                lo[i] = *v;
                hi[i] = *v;
            }
        }
        (lo, hi)
    }

    /// Match an id-level pattern, returning encoded quads `[s, p, o, g]`.
    ///
    /// Pure id-domain scan: chooses the index whose key order puts the
    /// bound positions first, range-scans it, and filters any bound
    /// positions that fall outside the prefix. No term decoding happens.
    pub fn match_ids<'a>(
        &'a self,
        pattern: &EncodedPattern,
    ) -> impl Iterator<Item = EncodedQuad> + 'a {
        let ScanPlan { index, lo, hi, prefix_len, residual, order } = self.plan(pattern.ids());
        index
            .range(lo..=hi)
            .filter(move |k| {
                residual
                    .iter()
                    .enumerate()
                    .skip(prefix_len)
                    .all(|(i, b)| b.is_none_or(|v| k[i] == v))
            })
            .map(move |&k| order.decode(k))
    }

    /// Cardinality estimate for an id-level pattern: the number of index
    /// entries inside the best B-tree range. See
    /// [`QuadStore::estimate_pattern_exact`] for the exactness contract.
    pub fn estimate_pattern(&self, pattern: &EncodedPattern) -> usize {
        self.estimate_pattern_exact(pattern).0
    }

    /// Cardinality estimate plus whether it is exact.
    ///
    /// When some index ordering's key prefix covers *every* bound
    /// position, the range size counts exactly the matching quads — the
    /// sorted runs are duplicate-free, so the count is returned with
    /// `exact = true`. The four orderings guarantee this for any single
    /// bound position, any bound `(p,o)`/`(s,p)`/`(o,s)`/`(g,s)` pair,
    /// `(s,p,o)` triples, and fully-bound patterns.
    ///
    /// Otherwise every ordering leaves some bound position outside its
    /// prefix; the estimate is the *minimum* range size over the
    /// longest-prefix contenders — an upper bound (`exact = false`),
    /// since residual positions are not filtered. Taking the minimum
    /// over range counts replaces the previous single-range count,
    /// whose capped tie-break probe could settle on a far larger range.
    ///
    /// Range walks are capped at [`ESTIMATE_WALK_CAP`] entries so the
    /// planner never pays more than a bounded probe per estimate: a
    /// range at least that large reports the cap with `exact = false` —
    /// at that magnitude the join orderer only needs "huge", not the
    /// digits. The all-wildcard pattern answers from `len()` directly.
    pub fn estimate_pattern_exact(&self, pattern: &EncodedPattern) -> (usize, bool) {
        let ids = pattern.ids();
        let bound = ids.iter().filter(|b| b.is_some()).count();
        if bound == 0 {
            return (self.len(), true);
        }
        let capped_count = |index: &BTreeSet<[u32; 4]>, lo, hi| {
            index.range(lo..=hi).take(ESTIMATE_WALK_CAP).count()
        };
        let candidates = self.candidates(ids);
        let prefix = |key: &[Option<u32>; 4]| key.iter().take_while(|b| b.is_some()).count();
        // exact pass: a prefix covering all bound positions counts the
        // true cardinality (any covering ordering gives the same number)
        for (index, key, _) in &candidates {
            if prefix(key) == bound {
                let (lo, hi) = Self::range_bounds(key, bound);
                let count = capped_count(index, lo, hi);
                return (count, count < ESTIMATE_WALK_CAP);
            }
        }
        // no covering prefix: tightest upper bound among the contenders
        let best_len = candidates.iter().map(|(_, key, _)| prefix(key)).max().unwrap_or(0);
        let mut best = usize::MAX;
        for (index, key, _) in &candidates {
            if prefix(key) != best_len {
                continue;
            }
            let (lo, hi) = Self::range_bounds(key, best_len);
            best = best.min(capped_count(index, lo, hi));
        }
        (best, false)
    }

    /// Match a pattern, returning encoded quads `[s, p, o, g]`.
    ///
    /// Resolves the pattern's constant terms to ids (an unresolvable bound
    /// term matches nothing) and delegates to [`QuadStore::match_ids`].
    pub fn match_encoded<'a>(
        &'a self,
        pattern: &QuadPattern,
    ) -> Box<dyn Iterator<Item = EncodedQuad> + 'a> {
        match self.encode_pattern(pattern) {
            Some(encoded) => Box::new(self.match_ids(&encoded)),
            None => Box::new(std::iter::empty()),
        }
    }

    /// Match a pattern, returning decoded [`Quad`]s.
    pub fn match_pattern<'a>(
        &'a self,
        pattern: &QuadPattern,
    ) -> impl Iterator<Item = Quad> + 'a {
        self.match_encoded(pattern).map(move |[s, p, o, g]| Quad {
            subject: self.dict.term(TermId(s)).clone(),
            predicate: self.dict.term(TermId(p)).clone(),
            object: self.dict.term(TermId(o)).clone(),
            graph: self.graph_of(TermId(g)),
        })
    }

    /// All quads in the store.
    pub fn iter(&self) -> impl Iterator<Item = Quad> + '_ {
        self.match_pattern(&QuadPattern::any())
    }

    /// Distinct named graphs in the store.
    ///
    /// Skip-scans gspo: after reading one graph id it range-jumps to the
    /// first key of the next graph, so the cost is O(#graphs · log n)
    /// rather than a walk over every index entry.
    pub fn named_graphs(&self) -> Vec<String> {
        let mut graphs: Vec<String> = Vec::new();
        let mut cursor = self.gspo.iter().next();
        while let Some(k) = cursor {
            let gid = k[0];
            if let GraphName::Named(g) = self.graph_of(TermId(gid)) {
                graphs.push(g);
            }
            let Some(next) = gid.checked_add(1) else {
                break;
            };
            cursor = self.gspo.range([next, 0, 0, 0]..).next();
        }
        graphs
    }

    /// Approximate logical footprint in bytes (indexes + dictionary).
    pub fn approx_bytes(&self) -> u64 {
        let per_quad = std::mem::size_of::<[u32; 4]>() as u64;
        self.spog.len() as u64 * per_quad * 4 + self.dict.approx_bytes()
    }
}

impl QuadStore {
    pub fn new() -> Self {
        Self::default()
    }

    /// The store's current state as an immutable snapshot: one `Arc`
    /// clone, no index copy. The snapshot stays frozen while the store
    /// keeps mutating (the first write after acquisition pays one
    /// copy-on-write store clone; see the module docs).
    pub fn snapshot(&self) -> Arc<StoreSnapshot> {
        Arc::clone(&self.snap)
    }

    /// A detached read handle that tracks this store across future
    /// mutations, safe to hand to other threads. Creating (or keeping)
    /// a reader switches the writer into publish mode: every mutating
    /// call ends by publishing its committed snapshot, and each write
    /// after a publication clones the store once — batch writes while
    /// readers are attached.
    pub fn reader(&self) -> StoreReader {
        self.published.store(Some(Arc::clone(&self.snap)));
        StoreReader { cell: Arc::clone(&self.published) }
    }

    /// Publish the current snapshot for detached readers. With no
    /// reader handle alive, empties the slot instead — superseded
    /// snapshots are reclaimed and the next write stays copy-free.
    fn publish(&self) {
        if Arc::strong_count(&self.published) > 1 {
            self.published.store(Some(Arc::clone(&self.snap)));
        } else {
            self.published.store(None);
        }
    }

    /// Publication gate every mutator goes through: while a delta is
    /// open, committed-but-unpublished states stay private to the writer
    /// so detached readers see whole deltas or nothing.
    fn maybe_publish(&self) {
        if self.delta.is_none() {
            self.publish();
        }
    }

    /// Open a delta: suppress snapshot publication until
    /// [`QuadStore::commit_delta`], so any number of mutating calls land
    /// on detached readers as one atomic batch. Panics on nested deltas.
    pub fn begin_delta(&mut self) {
        assert!(self.delta.is_none(), "begin_delta: delta already open");
        self.delta = Some(self.snap.generation);
    }

    /// True while a delta opened by [`QuadStore::begin_delta`] is
    /// uncommitted.
    pub fn delta_open(&self) -> bool {
        self.delta.is_some()
    }

    /// Commit the open delta: collapse every interim generation bump to
    /// exactly `base + 1` (so `(store_id, generation)`-keyed caches are
    /// invalidated once per delta, not once per internal batch) and
    /// publish the result as one snapshot. A delta that mutated nothing
    /// leaves the generation untouched. No-op when no delta is open.
    pub fn commit_delta(&mut self) {
        let Some(base) = self.delta.take() else {
            return;
        };
        if self.snap.generation != base {
            Arc::make_mut(&mut self.snap).generation = base + 1;
        }
        self.publish();
    }

    /// Insert a quad. Returns `true` when it was not already present.
    pub fn insert(&mut self, quad: &Quad) -> bool {
        let fresh = Arc::make_mut(&mut self.snap).insert_quad(quad);
        if fresh {
            self.maybe_publish();
        }
        fresh
    }

    /// Insert a triple into the default graph.
    pub fn insert_triple(&mut self, subject: Term, predicate: Term, object: Term) -> bool {
        self.insert(&Quad::new(subject, predicate, object))
    }

    /// Bulk-insert a batch of quads, returning how many were new.
    ///
    /// Equivalent to calling [`QuadStore::insert`] on each quad in order —
    /// including the insert-order-dense [`TermId`] assignment — but runs
    /// the sort-based parallel pipeline described on
    /// [`QuadStore::extend_stats`].
    pub fn extend(&mut self, quads: impl IntoIterator<Item = Quad>) -> usize {
        self.extend_stats(quads).quads_added
    }

    /// Bulk-insert a batch of quads, returning per-phase statistics.
    /// See [`StoreSnapshot::extend_batch`] for the phase breakdown; the
    /// batch is built on the writer's private copy and published as one
    /// new snapshot, so concurrent readers never observe it half-applied.
    pub fn extend_stats(&mut self, quads: impl IntoIterator<Item = Quad>) -> IngestStats {
        let quads: Vec<Quad> = quads.into_iter().collect();
        if quads.is_empty() {
            return IngestStats::default();
        }
        let stats = Arc::make_mut(&mut self.snap).extend_batch(quads);
        self.maybe_publish();
        stats
    }

    /// Bulk-insert already-encoded quads: the phase-3 fast path.
    ///
    /// Every id must come from **this** store's dictionary and the graph
    /// slot must hold a graph IRI id — i.e. tuples shaped like the output
    /// of [`StoreSnapshot::match_ids`] on this same store. Returns how
    /// many quads were new.
    pub fn extend_encoded(&mut self, quads: impl IntoIterator<Item = EncodedQuad>) -> usize {
        let encoded: Vec<EncodedQuad> = quads.into_iter().collect();
        if encoded.is_empty() {
            return 0;
        }
        let added = Arc::make_mut(&mut self.snap).extend_encoded_batch(&encoded);
        self.maybe_publish();
        added
    }

    /// Remove a quad. Returns `true` when it was present.
    pub fn remove(&mut self, quad: &Quad) -> bool {
        let removed = Arc::make_mut(&mut self.snap).remove_quad(quad);
        if removed {
            self.maybe_publish();
        }
        removed
    }

    /// Batch-retract quads, returning per-phase statistics.
    ///
    /// Equivalent to calling [`QuadStore::remove`] on each quad, but runs
    /// as the anti-merge mirror of the bulk loader: one dictionary
    /// resolution pass (quads naming unknown terms are skipped — they
    /// cannot be present), then a sorted-run set difference over the four
    /// index permutations in parallel, published as one snapshot.
    /// Retraction never shrinks the dictionary; term ids stay stable.
    pub fn retract(&mut self, quads: impl IntoIterator<Item = Quad>) -> RetractStats {
        let quads: Vec<Quad> = quads.into_iter().collect();
        if quads.is_empty() {
            return RetractStats::default();
        }
        let stats = Arc::make_mut(&mut self.snap).retract_batch(&quads);
        self.maybe_publish();
        stats
    }

    /// Batch-retract already-encoded quads: the fast path for retraction
    /// sets collected from this same store (e.g. via
    /// [`StoreSnapshot::match_ids`]). Every id must come from **this**
    /// store's dictionary. Returns how many quads were present and left.
    pub fn retract_encoded(&mut self, quads: impl IntoIterator<Item = EncodedQuad>) -> usize {
        let encoded: Vec<EncodedQuad> = quads.into_iter().collect();
        if encoded.is_empty() {
            return 0;
        }
        let terms = self.snap.dict.len() as u32;
        assert!(
            encoded.iter().all(|q| q.iter().all(|&id| id < terms)),
            "retract_encoded: id outside this store's dictionary"
        );
        let threads = StoreSnapshot::ingest_threads(encoded.len());
        let removed = Arc::make_mut(&mut self.snap).retract_encoded_batch(&encoded, threads);
        self.maybe_publish();
        removed
    }
}

/// One term occurrence viewed without allocating: either a borrowed term
/// or a graph IRI (the graph slot interns as [`Term::Iri`], so a graph
/// occurrence and an IRI term occurrence of the same string are the same
/// dictionary entry — and hash identically).
enum SlotRef<'a> {
    Term(&'a Term),
    Graph(&'a str),
}

impl SlotRef<'_> {
    /// Equality across the two views: a graph slot equals an IRI term
    /// with the same string.
    fn matches(&self, other: &SlotRef<'_>) -> bool {
        match (self, other) {
            (SlotRef::Term(a), SlotRef::Term(b)) => a == b,
            (SlotRef::Graph(a), SlotRef::Graph(b)) => a == b,
            (SlotRef::Term(t), SlotRef::Graph(g)) | (SlotRef::Graph(g), SlotRef::Term(t)) => {
                matches!(t, Term::Iri(s) if s.as_str() == *g)
            }
        }
    }

    /// Probe the dictionary for this occurrence's id, if interned.
    fn resolve(&self, dict: &Dictionary, hash: u64) -> Option<TermId> {
        match self {
            SlotRef::Term(term) => dict.id_by_hash(hash, term),
            SlotRef::Graph(iri) => dict.id_by_hash_iri(hash, iri),
        }
    }
}

/// A hash group whose term is not yet interned, resolved after the scan
/// in first-occurrence order.
struct PendingGroup {
    /// Smallest flat position of the term in the batch — the sort key
    /// that reproduces sequential [`TermId`] assignment.
    first: u32,
    hash: u64,
    members: PendingMembers,
}

/// Occurrences a pending group covers: a contiguous range of the sorted
/// occurrence vector (the no-collision common case) or an explicit list
/// (hash collisions split a group between distinct terms).
enum PendingMembers {
    Run(u32, u32),
    List(Vec<u32>),
}

/// Scatter a resolved id back into its quad's encoded slot.
fn write(enc: &mut [EncodedQuad], flat: u32, id: u32) {
    enc[(flat / 4) as usize][(flat % 4) as usize] = id;
}

/// Merge a sorted, deduplicated run of index keys into one index tree.
///
/// Empty tree: bulk-build straight from the run (`BTreeSet`'s
/// `FromIterator` detects the sorted input and packs leaves directly).
/// Sizeable run vs. existing tree: rebuild from the merge of the two
/// sorted streams, which stays O(n) per element instead of paying a
/// root-to-leaf walk per key. Small run: plain inserts.
fn merge_sorted_run(set: &mut BTreeSet<[u32; 4]>, run: Vec<[u32; 4]>) {
    if run.is_empty() {
        return;
    }
    if set.is_empty() {
        *set = run.into_iter().collect();
        return;
    }
    if run.len() >= set.len() / 8 {
        let old = std::mem::take(set);
        *set = MergeSorted { a: old.into_iter().peekable(), b: run.into_iter().peekable() }
            .collect();
        return;
    }
    for key in run {
        set.insert(key);
    }
}

/// Drop a sorted, deduplicated run of index keys from one index tree.
///
/// The anti-merge mirror of [`merge_sorted_run`]: a sizeable run
/// rebuilds the tree from the sorted difference of the two streams
/// (O(n) per element, `BTreeSet`'s `FromIterator` packs the sorted
/// output directly); a small run pays per-key point removes instead of a
/// full rebuild. Keys absent from the tree are ignored.
fn anti_merge_sorted_run(set: &mut BTreeSet<[u32; 4]>, run: Vec<[u32; 4]>) {
    if run.is_empty() || set.is_empty() {
        return;
    }
    if run.len() >= set.len() / 8 {
        let old = std::mem::take(set);
        *set = DiffSorted { a: old.into_iter().peekable(), b: run.into_iter().peekable() }
            .collect();
        return;
    }
    for key in run {
        set.remove(&key);
    }
}

/// Deduplicating merge of two sorted streams of index keys.
struct MergeSorted<A: Iterator, B: Iterator> {
    a: std::iter::Peekable<A>,
    b: std::iter::Peekable<B>,
}

impl<A, B> Iterator for MergeSorted<A, B>
where
    A: Iterator<Item = [u32; 4]>,
    B: Iterator<Item = [u32; 4]>,
{
    type Item = [u32; 4];

    fn next(&mut self) -> Option<[u32; 4]> {
        match (self.a.peek(), self.b.peek()) {
            (Some(&x), Some(&y)) => {
                if x < y {
                    self.a.next()
                } else if y < x {
                    self.b.next()
                } else {
                    self.a.next();
                    self.b.next()
                }
            }
            (Some(_), None) => self.a.next(),
            (None, _) => self.b.next(),
        }
    }
}

/// Sorted set difference of two sorted streams: yields keys of `a` that
/// do not appear in `b`.
struct DiffSorted<A: Iterator, B: Iterator> {
    a: std::iter::Peekable<A>,
    b: std::iter::Peekable<B>,
}

impl<A, B> Iterator for DiffSorted<A, B>
where
    A: Iterator<Item = [u32; 4]>,
    B: Iterator<Item = [u32; 4]>,
{
    type Item = [u32; 4];

    fn next(&mut self) -> Option<[u32; 4]> {
        loop {
            let x = *self.a.peek()?;
            match self.b.peek() {
                None => return self.a.next(),
                Some(&y) => {
                    if x < y {
                        return self.a.next();
                    } else if x == y {
                        self.a.next();
                        self.b.next();
                    } else {
                        self.b.next();
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn q(s: &str, p: &str, o: &str) -> Quad {
        Quad::new(Term::iri(s), Term::iri(p), Term::iri(o))
    }

    #[test]
    fn insert_contains_remove() {
        let mut store = QuadStore::new();
        let quad = q("s", "p", "o");
        assert!(store.insert(&quad));
        assert!(!store.insert(&quad));
        assert!(store.contains(&quad));
        assert_eq!(store.len(), 1);
        assert!(store.remove(&quad));
        assert!(!store.contains(&quad));
        assert!(store.is_empty());
    }

    #[test]
    fn default_and_named_graphs_are_distinct() {
        let mut store = QuadStore::new();
        let t = (Term::iri("s"), Term::iri("p"), Term::iri("o"));
        store.insert(&Quad::new(t.0.clone(), t.1.clone(), t.2.clone()));
        store.insert(&Quad::in_graph(t.0, t.1, t.2, GraphName::named("g1")));
        assert_eq!(store.len(), 2);
        assert_eq!(store.named_graphs(), vec!["g1".to_string()]);
    }

    #[test]
    fn pattern_scans_each_binding_combination() {
        let mut store = QuadStore::new();
        store.insert(&q("s1", "p1", "o1"));
        store.insert(&q("s1", "p2", "o2"));
        store.insert(&q("s2", "p1", "o1"));
        store.insert(&Quad::in_graph(
            Term::iri("s3"),
            Term::iri("p1"),
            Term::iri("o1"),
            GraphName::named("g"),
        ));

        let by_s = store
            .match_pattern(&QuadPattern::any().with_subject(Term::iri("s1")))
            .count();
        assert_eq!(by_s, 2);

        let by_p = store
            .match_pattern(&QuadPattern::any().with_predicate(Term::iri("p1")))
            .count();
        assert_eq!(by_p, 3);

        let by_o = store
            .match_pattern(&QuadPattern::any().with_object(Term::iri("o1")))
            .count();
        assert_eq!(by_o, 3);

        let by_g = store
            .match_pattern(&QuadPattern::any().with_graph(GraphName::named("g")))
            .count();
        assert_eq!(by_g, 1);

        let by_po = store
            .match_pattern(
                &QuadPattern::any()
                    .with_predicate(Term::iri("p1"))
                    .with_object(Term::iri("o1")),
            )
            .count();
        assert_eq!(by_po, 3);

        let all = store.match_pattern(&QuadPattern::any()).count();
        assert_eq!(all, 4);
    }

    #[test]
    fn unknown_terms_match_nothing() {
        let mut store = QuadStore::new();
        store.insert(&q("s", "p", "o"));
        let none = store
            .match_pattern(&QuadPattern::any().with_subject(Term::iri("missing")))
            .count();
        assert_eq!(none, 0);
    }

    #[test]
    fn rdf_star_annotation_roundtrip() {
        let mut store = QuadStore::new();
        let edge = Term::quoted(Term::iri("colA"), Term::iri("similar"), Term::iri("colB"));
        store.insert(&Quad::new(edge.clone(), Term::iri("score"), Term::double(0.93)));
        let hits: Vec<Quad> = store
            .match_pattern(&QuadPattern::any().with_subject(edge.clone()))
            .collect();
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].object.as_literal().unwrap().as_f64(), Some(0.93));
    }

    /// Store shape for the estimate tests: 3 quads share p1/o1, subjects
    /// differ, one quad lives in a named graph.
    fn estimate_store() -> QuadStore {
        let mut store = QuadStore::new();
        store.insert(&q("s1", "p1", "o1"));
        store.insert(&q("s1", "p2", "o2"));
        store.insert(&q("s2", "p1", "o1"));
        store.insert(&Quad::in_graph(
            Term::iri("s3"),
            Term::iri("p1"),
            Term::iri("o1"),
            GraphName::named("g"),
        ));
        store
    }

    fn enc(store: &QuadStore, s: Option<&str>, p: Option<&str>, o: Option<&str>) -> EncodedPattern {
        let id = |t: Option<&str>| t.map(|t| store.id_of(&Term::iri(t)).unwrap());
        EncodedPattern { subject: id(s), predicate: id(p), object: id(o), graph: None }
    }

    #[test]
    fn estimate_subject_prefix_uses_spog() {
        let store = estimate_store();
        assert_eq!(store.estimate_pattern(&enc(&store, Some("s1"), None, None)), 2);
        // (s, p) is an spog prefix too: exact
        assert_eq!(store.estimate_pattern(&enc(&store, Some("s1"), Some("p1"), None)), 1);
    }

    #[test]
    fn estimate_predicate_prefix_uses_posg() {
        let store = estimate_store();
        assert_eq!(store.estimate_pattern(&enc(&store, None, Some("p1"), None)), 3);
        // (p, o) is a posg prefix: exact
        assert_eq!(store.estimate_pattern(&enc(&store, None, Some("p1"), Some("o1"))), 3);
        assert_eq!(store.estimate_pattern(&enc(&store, None, Some("p2"), Some("o2"))), 1);
    }

    #[test]
    fn estimate_object_prefix_uses_ospg() {
        let store = estimate_store();
        assert_eq!(store.estimate_pattern(&enc(&store, None, None, Some("o1"))), 3);
        // (o, s) is an ospg prefix: exact
        assert_eq!(store.estimate_pattern(&enc(&store, Some("s2"), None, Some("o1"))), 1);
    }

    #[test]
    fn estimate_graph_prefix_uses_gspo() {
        let store = estimate_store();
        let g = store.graph_id(&GraphName::named("g")).unwrap();
        let pattern = EncodedPattern { graph: Some(g), ..EncodedPattern::any() };
        assert_eq!(store.estimate_pattern(&pattern), 1);
        // (g, s) is a gspo prefix: exact
        let s3 = store.id_of(&Term::iri("s3")).unwrap();
        let pattern = EncodedPattern { subject: Some(s3), graph: Some(g), ..EncodedPattern::any() };
        assert_eq!(store.estimate_pattern(&pattern), 1);
    }

    #[test]
    fn estimate_fully_unbound_is_store_len() {
        let store = estimate_store();
        assert_eq!(store.estimate_pattern(&EncodedPattern::any()), store.len());
        assert_eq!(QuadStore::new().estimate_pattern(&EncodedPattern::any()), 0);
    }

    #[test]
    fn estimate_fully_bound_is_membership() {
        let store = estimate_store();
        let mut present = enc(&store, Some("s1"), Some("p1"), Some("o1"));
        present.graph = store.graph_id(&GraphName::Default);
        assert_eq!(store.estimate_pattern(&present), 1);
        // bound to existing ids but no such quad
        let mut absent = enc(&store, Some("s2"), Some("p2"), Some("o2"));
        absent.graph = store.graph_id(&GraphName::Default);
        assert_eq!(store.estimate_pattern(&absent), 0);
    }

    #[test]
    fn estimate_agrees_with_match_ids_on_prefix_patterns() {
        let store = estimate_store();
        for pattern in [
            EncodedPattern::any(),
            enc(&store, Some("s1"), None, None),
            enc(&store, None, Some("p1"), None),
            enc(&store, None, None, Some("o1")),
            enc(&store, None, Some("p1"), Some("o1")),
        ] {
            assert_eq!(
                store.estimate_pattern(&pattern),
                store.match_ids(&pattern).count(),
                "pattern {pattern:?}"
            );
        }
    }

    #[test]
    fn quoted_inner_terms_are_resolvable() {
        // the dictionary interns quoted constituents so id-level evaluators
        // can destructure stored quoted triples
        let mut store = QuadStore::new();
        let edge = Term::quoted(Term::iri("colA"), Term::iri("similar"), Term::iri("colB"));
        store.insert(&Quad::new(edge, Term::iri("score"), Term::double(0.93)));
        assert!(store.id_of(&Term::iri("colA")).is_some());
        assert!(store.id_of(&Term::iri("similar")).is_some());
        assert!(store.id_of(&Term::iri("colB")).is_some());
    }

    #[test]
    fn extend_matches_sequential_insert() {
        let mut quads: Vec<Quad> = Vec::new();
        for i in 0..40 {
            quads.push(q(&format!("s{}", i % 7), &format!("p{}", i % 3), &format!("o{i}")));
        }
        // duplicates, a named graph, and a quoted annotation
        quads.push(q("s0", "p0", "o0"));
        quads.push(quads[0].clone());
        quads.push(Quad::in_graph(
            Term::iri("s9"),
            Term::iri("p9"),
            Term::iri("o9"),
            GraphName::named("g"),
        ));
        quads.push(Quad::new(
            Term::quoted(Term::iri("a"), Term::iri("sim"), Term::iri("b")),
            Term::iri("score"),
            Term::double(0.5),
        ));

        let mut seq = QuadStore::new();
        let mut fresh = 0;
        for quad in &quads {
            fresh += usize::from(seq.insert(quad));
        }
        let mut bulk = QuadStore::new();
        let stats = bulk.extend_stats(quads.clone());

        assert_eq!(stats.quads_in, quads.len());
        assert_eq!(stats.quads_added, fresh);
        assert_eq!(bulk.len(), seq.len());
        assert_eq!(bulk.term_count(), seq.term_count());
        for (id, term) in seq.dictionary().iter() {
            assert_eq!(bulk.dictionary().term(id), term, "TermId {} diverged", id.0);
        }
        let seq_ids: Vec<EncodedQuad> = seq.match_ids(&EncodedPattern::any()).collect();
        let bulk_ids: Vec<EncodedQuad> = bulk.match_ids(&EncodedPattern::any()).collect();
        assert_eq!(seq_ids, bulk_ids);
        assert!(bulk.validate_indexes());
    }

    #[test]
    fn extend_is_incremental() {
        let mut seq = QuadStore::new();
        let mut bulk = QuadStore::new();
        let first: Vec<Quad> = (0..10).map(|i| q(&format!("s{i}"), "p", "o")).collect();
        let second: Vec<Quad> = (5..15).map(|i| q(&format!("s{i}"), "p", "o")).collect();
        for quad in first.iter().chain(&second) {
            seq.insert(quad);
        }
        assert_eq!(bulk.extend(first), 10);
        assert_eq!(bulk.extend(second), 5);
        assert_eq!(bulk.len(), seq.len());
        for (id, term) in seq.dictionary().iter() {
            assert_eq!(bulk.dictionary().term(id), term);
        }
        assert!(bulk.validate_indexes());
    }

    #[test]
    fn extend_empty_batch_is_noop() {
        let mut store = estimate_store();
        let before = store.len();
        let stats = store.extend_stats(Vec::new());
        assert_eq!(stats.quads_in, 0);
        assert_eq!(stats.quads_added, 0);
        assert_eq!(stats.dedup_rate(), 0.0);
        assert_eq!(store.len(), before);
    }

    #[test]
    fn extend_encoded_fast_path_roundtrips() {
        let src = estimate_store();
        let encoded: Vec<EncodedQuad> = src.match_ids(&EncodedPattern::any()).collect();
        // re-adding the store's own quads: all duplicates
        let mut again = estimate_store();
        assert_eq!(again.extend_encoded(encoded.clone()), 0);
        assert_eq!(again.len(), src.len());
        assert!(again.validate_indexes());
    }

    #[test]
    #[should_panic(expected = "outside this store's dictionary")]
    fn extend_encoded_rejects_foreign_ids() {
        let mut store = estimate_store();
        store.extend_encoded([[0, 1, 2, 9999]]);
    }

    #[test]
    fn plan_tie_break_prefers_selective_index() {
        // (p, g) bound reaches prefix 1 in both posg and gspo; make the
        // graph side far more selective and check the estimate follows it.
        let mut store = QuadStore::new();
        for i in 0..50 {
            store.insert(&q(&format!("s{i}"), "p", &format!("o{i}")));
        }
        store.insert(&Quad::in_graph(
            Term::iri("s"),
            Term::iri("p"),
            Term::iri("o"),
            GraphName::named("g"),
        ));
        let p = store.id_of(&Term::iri("p")).unwrap();
        let g = store.graph_id(&GraphName::named("g")).unwrap();
        let pattern =
            EncodedPattern { predicate: Some(p), graph: Some(g), ..EncodedPattern::any() };
        // gspo's graph range holds 1 entry, posg's predicate range 51
        assert_eq!(store.estimate_pattern(&pattern), 1);
        assert_eq!(store.match_ids(&pattern).count(), 1);
    }

    #[test]
    fn named_graphs_skip_scan_finds_all_graphs() {
        let mut store = QuadStore::new();
        for i in 0..20 {
            store.insert(&q(&format!("s{i}"), "p", "o"));
            store.insert(&Quad::in_graph(
                Term::iri(format!("s{i}")),
                Term::iri("p"),
                Term::iri("o"),
                GraphName::named(format!("g{i:02}")),
            ));
        }
        let mut graphs = store.named_graphs();
        graphs.sort();
        let expected: Vec<String> = (0..20).map(|i| format!("g{i:02}")).collect();
        assert_eq!(graphs, expected);
    }

    #[test]
    fn index_order_key_decode_roundtrip() {
        let quad: EncodedQuad = [7, 11, 13, 17];
        for order in IndexOrder::ALL {
            assert_eq!(order.decode(order.key(quad)), quad, "{order:?}");
        }
        // the documented permutations hold
        assert_eq!(IndexOrder::Posg.key(quad), [11, 13, 7, 17]);
        assert_eq!(IndexOrder::Ospg.key(quad), [13, 7, 11, 17]);
        assert_eq!(IndexOrder::Gspo.key(quad), [17, 7, 11, 13]);
    }

    #[test]
    fn run_cursor_walks_and_seeks() {
        let mut store = QuadStore::new();
        for i in 0..100u32 {
            store.insert(&q(&format!("s{i:03}"), "p", &format!("o{i:03}")));
        }
        let mut cursor = store.run_cursor(IndexOrder::Spog);
        // full walk agrees with a plain scan
        let mut walked = 0usize;
        let mut check = store.run_cursor(IndexOrder::Spog);
        while check.current().is_some() {
            walked += 1;
            check.advance();
        }
        assert_eq!(walked, store.len());
        // seek lands on the first key >= target, both for near targets
        // (gallop) and far targets (re-range)
        let keys: Vec<[u32; 4]> = store.match_ids(&EncodedPattern::any()).collect();
        let near = keys[2];
        cursor.seek_ge(near);
        assert_eq!(cursor.current(), Some(near));
        let far = keys[90];
        cursor.seek_ge(far);
        assert_eq!(cursor.current(), Some(far));
        // seeking backwards never rewinds
        cursor.seek_ge(keys[5]);
        assert_eq!(cursor.current(), Some(far));
        // between-keys target lands on the next key
        let mut between = keys[40];
        between[3] += 1;
        cursor.seek_ge([0, 0, 0, 0]); // no-op (backwards)
        assert_eq!(cursor.current(), Some(far));
        let mut fresh = store.run_cursor(IndexOrder::Spog);
        fresh.seek_ge(between);
        assert_eq!(fresh.current(), Some(keys[41]));
        // past-the-end exhausts
        fresh.seek_ge([u32::MAX, u32::MAX, u32::MAX, u32::MAX]);
        assert_eq!(fresh.current(), None);
    }

    #[test]
    fn run_cursor_interrupt_flag_exhausts_within_stride() {
        let mut store = QuadStore::new();
        for i in 0..500u32 {
            store.insert(&q(&format!("s{i:03}"), "p", &format!("o{i:03}")));
        }
        let flag = Arc::new(AtomicBool::new(false));
        let mut cursor =
            store.run_cursor(IndexOrder::Spog).with_interrupt(Arc::clone(&flag));
        // flag clear: behaves like a plain cursor
        for _ in 0..10 {
            assert!(cursor.current().is_some());
            cursor.advance();
        }
        flag.store(true, Ordering::Relaxed);
        let mut steps = 0usize;
        while cursor.current().is_some() {
            cursor.advance();
            steps += 1;
            assert!(steps <= INTERRUPT_STRIDE as usize + 1, "cursor ignored interrupt");
        }
        // seeks on an interrupted cursor stay exhausted
        cursor.seek_ge([0, 0, 0, 0]);
        assert_eq!(cursor.current(), None);
    }

    #[test]
    fn scan_spec_matches_planner_choice() {
        let store = estimate_store();
        let spec = store.scan_spec(&enc(&store, None, Some("p1"), Some("o1")));
        assert_eq!(spec.order, IndexOrder::Posg);
        assert_eq!(spec.prefix_len, 2);
        // the spec's range enumerates exactly the matches
        let mut cursor = store.run_cursor(spec.order);
        cursor.seek_ge(spec.lo);
        let mut hits = 0;
        while let Some(k) = cursor.current() {
            if k > spec.hi {
                break;
            }
            hits += 1;
            cursor.advance();
        }
        assert_eq!(hits, 3);
    }

    #[test]
    fn generation_bumps_on_every_mutation_path() {
        let mut store = QuadStore::new();
        let g0 = store.generation();
        store.insert(&q("s", "p", "o"));
        let g1 = store.generation();
        assert!(g1 > g0);
        // duplicate insert: no index change, generation stays
        store.insert(&q("s", "p", "o"));
        assert_eq!(store.generation(), g1);
        store.extend(vec![q("s2", "p", "o")]);
        let g2 = store.generation();
        assert!(g2 > g1);
        store.remove(&q("s", "p", "o"));
        assert!(store.generation() > g2);
        // distinct stores never share an identity
        assert_ne!(QuadStore::new().store_id(), QuadStore::new().store_id());
    }

    #[test]
    fn estimate_exact_flag_tracks_prefix_coverage() {
        let store = estimate_store();
        // covered combinations are exact
        assert_eq!(store.estimate_pattern_exact(&enc(&store, Some("s1"), None, None)), (2, true));
        assert_eq!(
            store.estimate_pattern_exact(&enc(&store, None, Some("p1"), Some("o1"))),
            (3, true)
        );
        assert_eq!(store.estimate_pattern_exact(&EncodedPattern::any()), (4, true));
        // (s, o) is covered by ospg's (o, s) prefix
        assert_eq!(
            store.estimate_pattern_exact(&enc(&store, Some("s2"), None, Some("o1"))),
            (1, true)
        );
        // (p, g) is covered by no ordering: upper bound, not exact
        let p1 = store.id_of(&Term::iri("p1")).unwrap();
        let g = store.graph_id(&GraphName::named("g")).unwrap();
        let pg = EncodedPattern { predicate: Some(p1), graph: Some(g), ..EncodedPattern::any() };
        let (est, exact) = store.estimate_pattern_exact(&pg);
        assert!(!exact);
        assert!(est >= store.match_ids(&pg).count());
    }

    #[test]
    fn estimate_uncovered_pattern_takes_tightest_contender() {
        // (p, g) bound: posg and gspo both reach prefix 1. Make both
        // ranges larger than any probe cap so only full counting can
        // tell them apart, with the graph side far more selective.
        let mut store = QuadStore::new();
        for i in 0..200 {
            store.insert(&q(&format!("s{i}"), "p", &format!("o{i}")));
        }
        for i in 0..70 {
            store.insert(&Quad::in_graph(
                Term::iri(format!("s{i}")),
                Term::iri("p"),
                Term::iri("o"),
                GraphName::named("g"),
            ));
        }
        let p = store.id_of(&Term::iri("p")).unwrap();
        let g = store.graph_id(&GraphName::named("g")).unwrap();
        let pattern =
            EncodedPattern { predicate: Some(p), graph: Some(g), ..EncodedPattern::any() };
        // posg's p-range holds 270 entries, gspo's g-range 70: the
        // estimate must follow the tighter contender
        let (est, exact) = store.estimate_pattern_exact(&pattern);
        assert!(!exact);
        assert_eq!(est, 70);
        assert_eq!(store.match_ids(&pattern).count(), 70);
    }

    #[test]
    fn decoded_quads_match_inserted() {
        let mut store = QuadStore::new();
        let quad = Quad::in_graph(
            Term::iri("s"),
            Term::iri("p"),
            Term::string("val"),
            GraphName::named("g"),
        );
        store.insert(&quad);
        let got: Vec<Quad> = store.iter().collect();
        assert_eq!(got, vec![quad]);
    }

    #[test]
    fn snapshot_is_frozen_at_acquisition() {
        let mut store = QuadStore::new();
        store.insert(&q("s1", "p", "o1"));
        let snap = store.snapshot();
        store.insert(&q("s2", "p", "o2"));
        store.remove(&q("s1", "p", "o1"));
        // the pinned snapshot still sees exactly the state at acquisition
        assert_eq!(snap.len(), 1);
        assert!(snap.contains(&q("s1", "p", "o1")));
        assert!(!snap.contains(&q("s2", "p", "o2")));
        assert!(snap.validate_indexes());
        // the live store moved on
        assert_eq!(store.len(), 1);
        assert!(store.contains(&q("s2", "p", "o2")));
        assert!(store.generation() > snap.generation());
    }

    #[test]
    fn snapshot_matches_live_store_without_writes() {
        let mut store = QuadStore::new();
        store.extend([q("a", "p", "b"), q("c", "p", "d")]);
        let snap = store.snapshot();
        assert_eq!(snap.len(), store.len());
        assert_eq!(snap.generation(), store.generation());
        let snap_quads: Vec<Quad> = snap.iter().collect();
        let live_quads: Vec<Quad> = store.iter().collect();
        assert_eq!(snap_quads, live_quads);
    }

    #[test]
    fn reader_observes_committed_batches() {
        let mut store = QuadStore::new();
        let reader = store.reader();
        assert_eq!(reader.snapshot().len(), 0);
        store.extend([q("a", "p", "b"), q("c", "p", "d")]);
        // a fresh snapshot through the handle sees the committed batch
        assert_eq!(reader.snapshot().len(), 2);
        store.insert(&q("e", "p", "f"));
        assert_eq!(reader.snapshot().len(), 3);
        store.remove(&q("a", "p", "b"));
        assert_eq!(reader.snapshot().len(), 2);
        // clones of the handle share the same publication cell
        let other = reader.clone();
        store.insert(&q("g", "p", "h"));
        assert_eq!(other.snapshot().len(), 3);
    }

    #[test]
    fn snapshot_acquisition_does_not_copy_indexes() {
        let mut store = QuadStore::new();
        for i in 0..500 {
            store.insert(&q(&format!("s{i}"), "p", "o"));
        }
        // O(1) acquisition: both Arcs point at the same allocation
        let a = store.snapshot();
        let b = store.snapshot();
        assert!(std::ptr::eq(a.as_ref(), b.as_ref()));
        // and no copy happens on *write* either until a snapshot is held
        drop((a, b));
        let before = store.snapshot();
        store.insert(&q("x", "p", "y"));
        // `before` was outstanding, so the write went to a new version
        assert!(!std::ptr::eq(before.as_ref(), store.snapshot().as_ref()));
        assert_eq!(before.len(), 500);
        assert_eq!(store.len(), 501);
    }

    #[test]
    fn batch_retract_matches_per_quad_remove() {
        // big enough to take the rebuild path (run >= set/8) and — via
        // the small tail batch below — the point-remove path too
        let quads: Vec<Quad> = (0..600)
            .map(|i| q(&format!("s{}", i % 30), &format!("p{}", i % 7), &format!("o{i}")))
            .collect();
        let victims: Vec<Quad> = quads.iter().step_by(3).cloned().collect();

        let mut batch = QuadStore::new();
        batch.extend(quads.clone());
        let stats = batch.retract(victims.clone());
        assert_eq!(stats.quads_in, victims.len());
        assert_eq!(stats.quads_removed, victims.len());

        let mut serial = QuadStore::new();
        serial.extend(quads.clone());
        for v in &victims {
            assert!(serial.remove(v));
        }

        let dump = |s: &QuadStore| {
            let mut v: Vec<String> = s.iter().map(|q| q.to_string()).collect();
            v.sort();
            v
        };
        assert_eq!(dump(&batch), dump(&serial));
        assert!(batch.validate_indexes());

        // small tail: run < set/8 exercises the point-remove path;
        // stride 99 from index 1 never lands on an already-removed victim
        let tail: Vec<Quad> = quads.iter().skip(1).step_by(99).cloned().collect();
        assert!(tail.len() < batch.len() / 8);
        let removed = batch.retract(tail.clone()).quads_removed;
        assert_eq!(removed, tail.len());
        for v in &tail {
            serial.remove(v);
        }
        assert_eq!(dump(&batch), dump(&serial));
    }

    #[test]
    fn retract_skips_absent_and_unknown_quads() {
        let mut store = QuadStore::new();
        store.extend([q("a", "p", "b"), q("c", "p", "d")]);
        let stats = store.retract([
            q("a", "p", "b"),          // present
            q("a", "p", "b"),          // batch-internal duplicate
            q("c", "p", "never-seen"), // unknown term: skipped at encode
            q("a", "p", "d"),          // known terms, quad absent
        ]);
        assert_eq!(stats.quads_in, 4);
        assert_eq!(stats.quads_removed, 1);
        assert_eq!(store.len(), 1);
        assert!(store.contains(&q("c", "p", "d")));
    }

    #[test]
    fn retract_encoded_drops_collected_ids() {
        let mut store = QuadStore::new();
        store.extend((0..50).map(|i| q(&format!("s{i}"), "p", "o")));
        let p = store.id_of(&Term::iri("p")).unwrap();
        let pattern = EncodedPattern { predicate: Some(p), ..EncodedPattern::default() };
        let hits: Vec<EncodedQuad> = store.match_ids(&pattern).collect();
        assert_eq!(store.retract_encoded(hits), 50);
        assert!(store.is_empty());
        assert!(store.validate_indexes());
    }

    #[test]
    fn delta_publishes_once_and_bumps_generation_once() {
        let mut store = QuadStore::new();
        store.insert(&q("seed", "p", "o"));
        let reader = store.reader();
        let base = store.generation();

        store.begin_delta();
        assert!(store.delta_open());
        store.extend([q("a", "p", "b"), q("c", "p", "d")]);
        store.retract([q("seed", "p", "o")]);
        store.insert(&q("e", "p", "f"));
        // several mutations later the reader still sees the pre-delta state
        assert_eq!(reader.snapshot().len(), 1);
        assert!(store.generation() > base + 1);

        store.commit_delta();
        assert!(!store.delta_open());
        // whole delta at once, one generation bump
        assert_eq!(reader.snapshot().len(), 3);
        assert_eq!(store.generation(), base + 1);
        assert_eq!(reader.snapshot().generation(), base + 1);
    }

    #[test]
    fn empty_delta_leaves_generation_untouched() {
        let mut store = QuadStore::new();
        store.insert(&q("a", "p", "b"));
        let base = store.generation();
        store.begin_delta();
        store.commit_delta();
        assert_eq!(store.generation(), base);
        // retracting nothing real still counts as a mutation epoch
        store.begin_delta();
        store.retract([q("a", "p", "never")]);
        store.commit_delta();
        assert_eq!(store.generation(), base + 1);
    }
}
