//! Dictionary-encoded quad store with multiple B-tree orderings.

use std::collections::BTreeSet;

use crate::dictionary::{Dictionary, TermId};
use crate::pattern::QuadPattern;
use crate::term::{GraphName, Quad, Term};

/// A quad encoded as four term ids: `[subject, predicate, object, graph]`.
///
/// The graph slot holds the id of the graph IRI term, or the default-graph sentinel
/// for the default graph.
pub type EncodedQuad = [u32; 4];

/// Index orderings maintained by the store.
///
/// Each is a `BTreeSet` of the quad's ids permuted so a range scan over a
/// bound prefix enumerates matches:
/// - `spog`: subject-bound scans and full scans
/// - `posg`: predicate(+object)-bound scans — the workhorse for `?x rdf:type C`
/// - `ospg`: object-bound scans — reverse traversal
/// - `gspo`: graph-scoped scans — per-pipeline named-graph queries
#[derive(Debug, Default)]
pub struct QuadStore {
    dict: Dictionary,
    spog: BTreeSet<[u32; 4]>,
    posg: BTreeSet<[u32; 4]>,
    ospg: BTreeSet<[u32; 4]>,
    gspo: BTreeSet<[u32; 4]>,
}

/// Sentinel graph IRI used internally for the default graph.
const DEFAULT_GRAPH_IRI: &str = "urn:lids:default-graph";

impl QuadStore {
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of quads in the store.
    pub fn len(&self) -> usize {
        self.spog.len()
    }

    /// True when the store holds no quads.
    pub fn is_empty(&self) -> bool {
        self.spog.is_empty()
    }

    /// Number of distinct interned terms (≈ distinct nodes + literals).
    pub fn term_count(&self) -> usize {
        self.dict.len()
    }

    /// Access the dictionary (read-only).
    pub fn dictionary(&self) -> &Dictionary {
        &self.dict
    }

    fn graph_term(graph: &GraphName) -> Term {
        match graph {
            GraphName::Default => Term::iri(DEFAULT_GRAPH_IRI),
            GraphName::Named(iri) => Term::iri(iri.clone()),
        }
    }

    fn graph_of(&self, id: TermId) -> GraphName {
        match self.dict.term(id) {
            Term::Iri(iri) if iri == DEFAULT_GRAPH_IRI => GraphName::Default,
            Term::Iri(iri) => GraphName::Named(iri.clone()),
            other => panic!("graph slot held non-IRI term {other:?}"),
        }
    }

    /// Insert a quad. Returns `true` when it was not already present.
    pub fn insert(&mut self, quad: &Quad) -> bool {
        let s = self.dict.intern(&quad.subject).0;
        let p = self.dict.intern(&quad.predicate).0;
        let o = self.dict.intern(&quad.object).0;
        let g_term = Self::graph_term(&quad.graph);
        let g = self.dict.intern(&g_term).0;
        let fresh = self.spog.insert([s, p, o, g]);
        if fresh {
            self.posg.insert([p, o, s, g]);
            self.ospg.insert([o, s, p, g]);
            self.gspo.insert([g, s, p, o]);
        }
        fresh
    }

    /// Insert a triple into the default graph.
    pub fn insert_triple(&mut self, subject: Term, predicate: Term, object: Term) -> bool {
        self.insert(&Quad::new(subject, predicate, object))
    }

    /// Remove a quad. Returns `true` when it was present.
    pub fn remove(&mut self, quad: &Quad) -> bool {
        let (Some(s), Some(p), Some(o)) = (
            self.dict.id_of(&quad.subject),
            self.dict.id_of(&quad.predicate),
            self.dict.id_of(&quad.object),
        ) else {
            return false;
        };
        let Some(g) = self.dict.id_of(&Self::graph_term(&quad.graph)) else {
            return false;
        };
        let (s, p, o, g) = (s.0, p.0, o.0, g.0);
        let removed = self.spog.remove(&[s, p, o, g]);
        if removed {
            self.posg.remove(&[p, o, s, g]);
            self.ospg.remove(&[o, s, p, g]);
            self.gspo.remove(&[g, s, p, o]);
        }
        removed
    }

    /// True when the quad is present.
    pub fn contains(&self, quad: &Quad) -> bool {
        let (Some(s), Some(p), Some(o)) = (
            self.dict.id_of(&quad.subject),
            self.dict.id_of(&quad.predicate),
            self.dict.id_of(&quad.object),
        ) else {
            return false;
        };
        let Some(g) = self.dict.id_of(&Self::graph_term(&quad.graph)) else {
            return false;
        };
        self.spog.contains(&[s.0, p.0, o.0, g.0])
    }

    /// Resolve a term id (delegates to the dictionary).
    pub fn term(&self, id: TermId) -> &Term {
        self.dict.term(id)
    }

    /// Id of a term if it is interned.
    pub fn id_of(&self, term: &Term) -> Option<TermId> {
        self.dict.id_of(term)
    }

    /// Match a pattern, returning encoded quads `[s, p, o, g]`.
    ///
    /// Chooses the index whose key order puts the bound positions first, so
    /// the scan is a contiguous B-tree range.
    pub fn match_encoded<'a>(
        &'a self,
        pattern: &QuadPattern,
    ) -> Box<dyn Iterator<Item = EncodedQuad> + 'a> {
        // Resolve bound terms; an unresolvable bound term matches nothing.
        let mut bound = [None; 4];
        for (slot, term) in [
            (0, &pattern.subject),
            (1, &pattern.predicate),
            (2, &pattern.object),
        ] {
            if let Some(t) = term {
                match self.dict.id_of(t) {
                    Some(id) => bound[slot] = Some(id.0),
                    None => return Box::new(std::iter::empty()),
                }
            }
        }
        if let Some(g) = &pattern.graph {
            match self.dict.id_of(&Self::graph_term(g)) {
                Some(id) => bound[3] = Some(id.0),
                None => return Box::new(std::iter::empty()),
            }
        }
        let [s, p, o, g] = bound;

        // Pick the index with the longest bound prefix.
        // Orderings: spog=(s,p,o,g) posg=(p,o,s,g) ospg=(o,s,p,g) gspo=(g,s,p,o)
        type IndexCandidate<'i> =
            (&'i BTreeSet<[u32; 4]>, [Option<u32>; 4], fn([u32; 4]) -> EncodedQuad);
        let candidates: [IndexCandidate; 4] = [
            (&self.spog, [s, p, o, g], |k| [k[0], k[1], k[2], k[3]]),
            (&self.posg, [p, o, s, g], |k| [k[2], k[0], k[1], k[3]]),
            (&self.ospg, [o, s, p, g], |k| [k[1], k[2], k[0], k[3]]),
            (&self.gspo, [g, s, p, o], |k| [k[1], k[2], k[3], k[0]]),
        ];
        let best = candidates
            .iter()
            .enumerate()
            .max_by_key(|(_, (_, key, _))| key.iter().take_while(|b| b.is_some()).count())
            .map(|(i, _)| i)
            .unwrap();
        let (index, key, decode) = &candidates[best];
        let prefix_len = key.iter().take_while(|b| b.is_some()).count();
        let mut lo = [0u32; 4];
        let mut hi = [u32::MAX; 4];
        for i in 0..prefix_len {
            lo[i] = key[i].unwrap();
            hi[i] = key[i].unwrap();
        }
        let decode = *decode;
        let residual = *key;
        Box::new(
            index
                .range(lo..=hi)
                .filter(move |k| {
                    residual
                        .iter()
                        .enumerate()
                        .skip(prefix_len)
                        .all(|(i, b)| b.is_none_or(|v| k[i] == v))
                })
                .map(move |&k| decode(k)),
        )
    }

    /// Match a pattern, returning decoded [`Quad`]s.
    pub fn match_pattern<'a>(
        &'a self,
        pattern: &QuadPattern,
    ) -> impl Iterator<Item = Quad> + 'a {
        self.match_encoded(pattern).map(move |[s, p, o, g]| Quad {
            subject: self.dict.term(TermId(s)).clone(),
            predicate: self.dict.term(TermId(p)).clone(),
            object: self.dict.term(TermId(o)).clone(),
            graph: self.graph_of(TermId(g)),
        })
    }

    /// All quads in the store.
    pub fn iter(&self) -> impl Iterator<Item = Quad> + '_ {
        self.match_pattern(&QuadPattern::any())
    }

    /// Distinct named graphs in the store.
    pub fn named_graphs(&self) -> Vec<String> {
        let mut graphs: Vec<String> = Vec::new();
        let mut last: Option<u32> = None;
        for k in &self.gspo {
            if last == Some(k[0]) {
                continue;
            }
            last = Some(k[0]);
            if let GraphName::Named(g) = self.graph_of(TermId(k[0])) {
                graphs.push(g);
            }
        }
        graphs
    }

    /// Approximate logical footprint in bytes (indexes + dictionary).
    pub fn approx_bytes(&self) -> u64 {
        let per_quad = std::mem::size_of::<[u32; 4]>() as u64;
        self.spog.len() as u64 * per_quad * 4 + self.dict.approx_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn q(s: &str, p: &str, o: &str) -> Quad {
        Quad::new(Term::iri(s), Term::iri(p), Term::iri(o))
    }

    #[test]
    fn insert_contains_remove() {
        let mut store = QuadStore::new();
        let quad = q("s", "p", "o");
        assert!(store.insert(&quad));
        assert!(!store.insert(&quad));
        assert!(store.contains(&quad));
        assert_eq!(store.len(), 1);
        assert!(store.remove(&quad));
        assert!(!store.contains(&quad));
        assert!(store.is_empty());
    }

    #[test]
    fn default_and_named_graphs_are_distinct() {
        let mut store = QuadStore::new();
        let t = (Term::iri("s"), Term::iri("p"), Term::iri("o"));
        store.insert(&Quad::new(t.0.clone(), t.1.clone(), t.2.clone()));
        store.insert(&Quad::in_graph(t.0, t.1, t.2, GraphName::named("g1")));
        assert_eq!(store.len(), 2);
        assert_eq!(store.named_graphs(), vec!["g1".to_string()]);
    }

    #[test]
    fn pattern_scans_each_binding_combination() {
        let mut store = QuadStore::new();
        store.insert(&q("s1", "p1", "o1"));
        store.insert(&q("s1", "p2", "o2"));
        store.insert(&q("s2", "p1", "o1"));
        store.insert(&Quad::in_graph(
            Term::iri("s3"),
            Term::iri("p1"),
            Term::iri("o1"),
            GraphName::named("g"),
        ));

        let by_s = store
            .match_pattern(&QuadPattern::any().with_subject(Term::iri("s1")))
            .count();
        assert_eq!(by_s, 2);

        let by_p = store
            .match_pattern(&QuadPattern::any().with_predicate(Term::iri("p1")))
            .count();
        assert_eq!(by_p, 3);

        let by_o = store
            .match_pattern(&QuadPattern::any().with_object(Term::iri("o1")))
            .count();
        assert_eq!(by_o, 3);

        let by_g = store
            .match_pattern(&QuadPattern::any().with_graph(GraphName::named("g")))
            .count();
        assert_eq!(by_g, 1);

        let by_po = store
            .match_pattern(
                &QuadPattern::any()
                    .with_predicate(Term::iri("p1"))
                    .with_object(Term::iri("o1")),
            )
            .count();
        assert_eq!(by_po, 3);

        let all = store.match_pattern(&QuadPattern::any()).count();
        assert_eq!(all, 4);
    }

    #[test]
    fn unknown_terms_match_nothing() {
        let mut store = QuadStore::new();
        store.insert(&q("s", "p", "o"));
        let none = store
            .match_pattern(&QuadPattern::any().with_subject(Term::iri("missing")))
            .count();
        assert_eq!(none, 0);
    }

    #[test]
    fn rdf_star_annotation_roundtrip() {
        let mut store = QuadStore::new();
        let edge = Term::quoted(Term::iri("colA"), Term::iri("similar"), Term::iri("colB"));
        store.insert(&Quad::new(edge.clone(), Term::iri("score"), Term::double(0.93)));
        let hits: Vec<Quad> = store
            .match_pattern(&QuadPattern::any().with_subject(edge.clone()))
            .collect();
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].object.as_literal().unwrap().as_f64(), Some(0.93));
    }

    #[test]
    fn decoded_quads_match_inserted() {
        let mut store = QuadStore::new();
        let quad = Quad::in_graph(
            Term::iri("s"),
            Term::iri("p"),
            Term::string("val"),
            GraphName::named("g"),
        );
        store.insert(&quad);
        let got: Vec<Quad> = store.iter().collect();
        assert_eq!(got, vec![quad]);
    }
}
