//! Bidirectional term interning.
//!
//! Every distinct [`Term`] is assigned a dense `u32` [`TermId`] the first
//! time it is seen. Quads are then stored and joined purely over ids, which
//! keeps the B-tree indexes compact and comparisons cheap — the standard
//! dictionary-encoding design for RDF stores.
//!
//! Terms are stored **once**, in the id-indexed `terms` vector. The reverse
//! map goes through the term's hash instead of a second owned copy of the
//! term: `buckets` maps a 64-bit term hash to the (almost always one) ids
//! whose stored term collides on that hash, and lookups confirm by comparing
//! against `terms[id]`. This halves the dictionary's footprint relative to a
//! `HashMap<Term, TermId>` and lets callers probe by borrowed content (see
//! [`Dictionary::id_of_iri`]) without allocating a scratch `Term`.

use std::collections::hash_map::RandomState;
use std::collections::HashMap;
use std::hash::{BuildHasher, Hasher};

use crate::term::Term;

/// Dense identifier of an interned term.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TermId(pub u32);

impl TermId {
    /// The raw index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Ids whose stored terms share one 64-bit hash. Genuine collisions are
/// vanishingly rare, so the single-id case avoids a heap allocation.
#[derive(Debug, Clone)]
enum Bucket {
    One(TermId),
    Many(Vec<TermId>),
}

/// Bijective mapping between [`Term`]s and [`TermId`]s.
///
/// `Clone` is required by the store's copy-on-write snapshot machinery:
/// cloning copies the term vector and hash buckets but *shares* the
/// hasher state, so hashes computed against a clone stay valid against
/// the original (and vice versa).
#[derive(Debug, Default, Clone)]
pub struct Dictionary {
    terms: Vec<Term>,
    buckets: HashMap<u64, Bucket>,
    hasher: RandomState,
}

impl Dictionary {
    pub fn new() -> Self {
        Self::default()
    }

    /// Intern `term`, returning its id (existing or freshly assigned).
    ///
    /// Quoted triples also intern their inner terms, so evaluators working
    /// purely over ids can destructure a stored quoted triple and resolve
    /// each constituent with [`Dictionary::id_of`] — a guarantee the
    /// encoded SPARQL evaluator relies on when a quoted pattern contains
    /// variables.
    pub fn intern(&mut self, term: &Term) -> TermId {
        let hash = self.hash_term(term);
        if let Some(id) = self.find(hash, |t| t == term) {
            return id;
        }
        self.insert_new(hash, term.clone())
    }

    /// Intern an owned term without cloning it. Same semantics as
    /// [`Dictionary::intern`], including inner-term interning for quoted
    /// triples.
    pub fn intern_owned(&mut self, term: Term) -> TermId {
        let hash = self.hash_term(&term);
        if let Some(id) = self.find(hash, |t| *t == term) {
            return id;
        }
        self.insert_new(hash, term)
    }

    fn insert_new(&mut self, hash: u64, term: Term) -> TermId {
        if let Term::Quoted(q) = &term {
            self.intern(&q.subject);
            self.intern(&q.predicate);
            self.intern(&q.object);
        }
        let Ok(raw) = u32::try_from(self.terms.len()) else {
            // ids are dense u32s by design; 2^32 interned terms is beyond
            // any supported store size
            panic!("dictionary overflow: more than u32::MAX interned terms")
        };
        let id = TermId(raw);
        self.terms.push(term);
        match self.buckets.entry(hash) {
            std::collections::hash_map::Entry::Vacant(e) => {
                e.insert(Bucket::One(id));
            }
            std::collections::hash_map::Entry::Occupied(mut e) => match e.get_mut() {
                Bucket::One(first) => {
                    let first = *first;
                    e.insert(Bucket::Many(vec![first, id]));
                }
                Bucket::Many(ids) => ids.push(id),
            },
        }
        id
    }

    /// Ids sharing `hash`, checked against `matches` on the stored term.
    fn find(&self, hash: u64, matches: impl Fn(&Term) -> bool) -> Option<TermId> {
        match self.buckets.get(&hash)? {
            Bucket::One(id) => matches(&self.terms[id.index()]).then_some(*id),
            Bucket::Many(ids) => ids
                .iter()
                .copied()
                .find(|id| matches(&self.terms[id.index()])),
        }
    }

    /// Look up an id without interning.
    pub fn id_of(&self, term: &Term) -> Option<TermId> {
        self.find(self.hash_term(term), |t| t == term)
    }

    /// Hash `term` with this dictionary's hasher — the key accepted by the
    /// `*_hashed` entry points below. Hashes are only meaningful within
    /// this dictionary instance.
    pub fn hash_of(&self, term: &Term) -> u64 {
        self.hash_term(term)
    }

    /// Hash `Term::Iri(iri)` without allocating the term; equal to
    /// `hash_of(&Term::iri(iri))`.
    pub fn hash_of_iri(&self, iri: &str) -> u64 {
        let mut h = self.hasher.build_hasher();
        write_iri(&mut h, iri);
        h.finish()
    }

    /// [`Dictionary::id_of`] with a hash precomputed by
    /// [`Dictionary::hash_of`]. The bulk loader hashes every term
    /// occurrence exactly once and groups them by hash, so each distinct
    /// term costs one dictionary probe instead of one per occurrence.
    pub fn id_by_hash(&self, hash: u64, term: &Term) -> Option<TermId> {
        self.find(hash, |t| t == term)
    }

    /// [`Dictionary::id_of_iri`] with a precomputed hash.
    pub fn id_by_hash_iri(&self, hash: u64, iri: &str) -> Option<TermId> {
        self.find(hash, |t| matches!(t, Term::Iri(s) if s == iri))
    }

    /// [`Dictionary::intern`] with a precomputed hash.
    pub fn intern_hashed(&mut self, hash: u64, term: &Term) -> TermId {
        if let Some(id) = self.find(hash, |t| t == term) {
            return id;
        }
        self.insert_new(hash, term.clone())
    }

    /// Intern `Term::Iri(iri)` with a precomputed hash, allocating the
    /// term only when it is actually new.
    pub fn intern_iri_hashed(&mut self, hash: u64, iri: &str) -> TermId {
        if let Some(id) = self.id_by_hash_iri(hash, iri) {
            return id;
        }
        self.insert_new(hash, Term::iri(iri))
    }

    /// Look up the id of `Term::Iri(iri)` without allocating the term.
    ///
    /// Hot on the bulk-load path, where every quad resolves its graph slot
    /// from a borrowed graph IRI.
    pub fn id_of_iri(&self, iri: &str) -> Option<TermId> {
        let mut h = self.hasher.build_hasher();
        write_iri(&mut h, iri);
        self.find(h.finish(), |t| matches!(t, Term::Iri(s) if s == iri))
    }

    fn hash_term(&self, term: &Term) -> u64 {
        let mut h = self.hasher.build_hasher();
        write_term(&mut h, term);
        h.finish()
    }

    /// Resolve an id back to its term. Panics on a foreign id.
    pub fn term(&self, id: TermId) -> &Term {
        &self.terms[id.index()]
    }

    /// Number of interned terms.
    pub fn len(&self) -> usize {
        self.terms.len()
    }

    /// True when nothing has been interned.
    pub fn is_empty(&self) -> bool {
        self.terms.is_empty()
    }

    /// Iterate over `(id, term)` pairs in interning order.
    pub fn iter(&self) -> impl Iterator<Item = (TermId, &Term)> {
        self.terms
            .iter()
            .enumerate()
            .map(|(i, t)| (TermId(i as u32), t))
    }

    /// Approximate heap footprint in bytes (for the memory meter).
    ///
    /// Terms are stored once; the reverse map holds only `(u64, Bucket)`
    /// entries, so its cost is per-slot bookkeeping rather than a second
    /// copy of every term.
    pub fn approx_bytes(&self) -> u64 {
        let mut total = (self.terms.capacity() * std::mem::size_of::<Term>()) as u64;
        for t in &self.terms {
            total += term_payload_bytes(t);
        }
        // Reverse map: allocated slots carry key + bucket + 1 control byte
        // (SwissTable layout); Many-buckets add their spilled id vectors.
        let slot = (std::mem::size_of::<u64>() + std::mem::size_of::<Bucket>() + 1) as u64;
        total += self.buckets.capacity() as u64 * slot;
        for bucket in self.buckets.values() {
            if let Bucket::Many(ids) = bucket {
                total += (ids.capacity() * std::mem::size_of::<TermId>()) as u64;
            }
        }
        total
    }
}

/// Feed a term's content to a hasher with variant tags and terminators, so
/// prefix-sharing values of different shapes cannot alias.
fn write_term<H: Hasher>(h: &mut H, term: &Term) {
    match term {
        Term::Iri(s) => write_iri(h, s),
        Term::BNode(s) => {
            h.write_u8(1);
            h.write(s.as_bytes());
            h.write_u8(0xff);
        }
        Term::Literal(l) => {
            h.write_u8(2);
            h.write(l.lexical.as_bytes());
            h.write_u8(0xff);
            h.write(l.datatype.as_bytes());
            h.write_u8(0xff);
            match &l.language {
                Some(lang) => {
                    h.write_u8(1);
                    h.write(lang.as_bytes());
                    h.write_u8(0xff);
                }
                None => h.write_u8(0),
            }
        }
        Term::Quoted(q) => {
            h.write_u8(3);
            write_term(h, &q.subject);
            write_term(h, &q.predicate);
            write_term(h, &q.object);
        }
    }
}

fn write_iri<H: Hasher>(h: &mut H, iri: &str) {
    h.write_u8(0);
    h.write(iri.as_bytes());
    h.write_u8(0xff);
}

fn term_payload_bytes(t: &Term) -> u64 {
    match t {
        Term::Iri(s) | Term::BNode(s) => s.len() as u64,
        Term::Literal(l) => {
            (l.lexical.len()
                + l.datatype.len()
                + l.language.as_ref().map_or(0, |x| x.len())) as u64
        }
        Term::Quoted(t) => {
            term_payload_bytes(&t.subject)
                + term_payload_bytes(&t.predicate)
                + term_payload_bytes(&t.object)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn intern_is_idempotent() {
        let mut d = Dictionary::new();
        let a = d.intern(&Term::iri("http://a"));
        let b = d.intern(&Term::iri("http://a"));
        assert_eq!(a, b);
        assert_eq!(d.len(), 1);
    }

    #[test]
    fn distinct_terms_get_distinct_ids() {
        let mut d = Dictionary::new();
        let a = d.intern(&Term::iri("x"));
        let b = d.intern(&Term::string("x"));
        let c = d.intern(&Term::BNode("x".into()));
        assert_ne!(a, b);
        assert_ne!(b, c);
        assert_ne!(a, c);
    }

    #[test]
    fn roundtrip_resolution() {
        let mut d = Dictionary::new();
        let term = Term::quoted(Term::iri("s"), Term::iri("p"), Term::double(0.93));
        let id = d.intern(&term);
        assert_eq!(d.term(id), &term);
        assert_eq!(d.id_of(&term), Some(id));
    }

    #[test]
    fn iter_in_order() {
        let mut d = Dictionary::new();
        d.intern(&Term::iri("a"));
        d.intern(&Term::iri("b"));
        let collected: Vec<_> = d.iter().map(|(id, _)| id.0).collect();
        assert_eq!(collected, vec![0, 1]);
    }

    #[test]
    fn intern_owned_matches_intern() {
        let mut d = Dictionary::new();
        let a = d.intern(&Term::iri("a"));
        assert_eq!(d.intern_owned(Term::iri("a")), a);
        let q = Term::quoted(Term::iri("x"), Term::iri("p"), Term::iri("y"));
        let qid = d.intern_owned(q.clone());
        // inner terms were interned first, in s/p/o order
        assert!(d.id_of(&Term::iri("x")).unwrap() < qid);
        assert!(d.id_of(&Term::iri("p")).unwrap() < qid);
        assert!(d.id_of(&Term::iri("y")).unwrap() < qid);
        assert_eq!(d.id_of(&q), Some(qid));
    }

    #[test]
    fn id_of_iri_matches_id_of() {
        let mut d = Dictionary::new();
        let id = d.intern(&Term::iri("http://kglids.org/resource/x"));
        d.intern(&Term::string("http://kglids.org/resource/x"));
        assert_eq!(d.id_of_iri("http://kglids.org/resource/x"), Some(id));
        assert_eq!(d.id_of_iri("missing"), None);
    }

    #[test]
    fn approx_bytes_tracks_growth() {
        let mut d = Dictionary::new();
        let empty = d.approx_bytes();
        for i in 0..100 {
            d.intern(&Term::iri(format!("http://example.org/term/{i}")));
        }
        assert!(d.approx_bytes() > empty);
    }

    proptest! {
        #[test]
        fn prop_intern_bijection(strings in proptest::collection::vec("[a-z]{1,8}", 1..50)) {
            let mut d = Dictionary::new();
            let ids: Vec<_> = strings.iter().map(|s| d.intern(&Term::iri(s.clone()))).collect();
            for (s, id) in strings.iter().zip(&ids) {
                prop_assert_eq!(d.term(*id).as_iri(), Some(s.as_str()));
                prop_assert_eq!(d.id_of(&Term::iri(s.clone())), Some(*id));
                prop_assert_eq!(d.id_of_iri(s), Some(*id));
            }
            let unique: std::collections::HashSet<_> = strings.iter().collect();
            prop_assert_eq!(d.len(), unique.len());
        }
    }
}
