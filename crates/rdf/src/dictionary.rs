//! Bidirectional term interning.
//!
//! Every distinct [`Term`] is assigned a dense `u32` [`TermId`] the first
//! time it is seen. Quads are then stored and joined purely over ids, which
//! keeps the B-tree indexes compact and comparisons cheap — the standard
//! dictionary-encoding design for RDF stores.

use std::collections::HashMap;

use crate::term::Term;

/// Dense identifier of an interned term.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TermId(pub u32);

impl TermId {
    /// The raw index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Bijective mapping between [`Term`]s and [`TermId`]s.
#[derive(Debug, Default)]
pub struct Dictionary {
    terms: Vec<Term>,
    ids: HashMap<Term, TermId>,
}

impl Dictionary {
    pub fn new() -> Self {
        Self::default()
    }

    /// Intern `term`, returning its id (existing or freshly assigned).
    ///
    /// Quoted triples also intern their inner terms, so evaluators working
    /// purely over ids can destructure a stored quoted triple and resolve
    /// each constituent with [`Dictionary::id_of`] — a guarantee the
    /// encoded SPARQL evaluator relies on when a quoted pattern contains
    /// variables.
    pub fn intern(&mut self, term: &Term) -> TermId {
        if let Some(&id) = self.ids.get(term) {
            return id;
        }
        if let Term::Quoted(q) = term {
            self.intern(&q.subject);
            self.intern(&q.predicate);
            self.intern(&q.object);
        }
        let id = TermId(u32::try_from(self.terms.len()).expect("dictionary overflow"));
        self.terms.push(term.clone());
        self.ids.insert(term.clone(), id);
        id
    }

    /// Look up an id without interning.
    pub fn id_of(&self, term: &Term) -> Option<TermId> {
        self.ids.get(term).copied()
    }

    /// Resolve an id back to its term. Panics on a foreign id.
    pub fn term(&self, id: TermId) -> &Term {
        &self.terms[id.index()]
    }

    /// Number of interned terms.
    pub fn len(&self) -> usize {
        self.terms.len()
    }

    /// True when nothing has been interned.
    pub fn is_empty(&self) -> bool {
        self.terms.is_empty()
    }

    /// Iterate over `(id, term)` pairs in interning order.
    pub fn iter(&self) -> impl Iterator<Item = (TermId, &Term)> {
        self.terms
            .iter()
            .enumerate()
            .map(|(i, t)| (TermId(i as u32), t))
    }

    /// Approximate heap footprint in bytes (for the memory meter).
    pub fn approx_bytes(&self) -> u64 {
        let mut total = (self.terms.len() * std::mem::size_of::<Term>()) as u64;
        for t in &self.terms {
            total += term_payload_bytes(t);
        }
        // HashMap side: key clone + id
        total * 2
    }
}

fn term_payload_bytes(t: &Term) -> u64 {
    match t {
        Term::Iri(s) | Term::BNode(s) => s.len() as u64,
        Term::Literal(l) => {
            (l.lexical.len()
                + l.datatype.len()
                + l.language.as_ref().map_or(0, |x| x.len())) as u64
        }
        Term::Quoted(t) => {
            term_payload_bytes(&t.subject)
                + term_payload_bytes(&t.predicate)
                + term_payload_bytes(&t.object)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn intern_is_idempotent() {
        let mut d = Dictionary::new();
        let a = d.intern(&Term::iri("http://a"));
        let b = d.intern(&Term::iri("http://a"));
        assert_eq!(a, b);
        assert_eq!(d.len(), 1);
    }

    #[test]
    fn distinct_terms_get_distinct_ids() {
        let mut d = Dictionary::new();
        let a = d.intern(&Term::iri("x"));
        let b = d.intern(&Term::string("x"));
        let c = d.intern(&Term::BNode("x".into()));
        assert_ne!(a, b);
        assert_ne!(b, c);
        assert_ne!(a, c);
    }

    #[test]
    fn roundtrip_resolution() {
        let mut d = Dictionary::new();
        let term = Term::quoted(Term::iri("s"), Term::iri("p"), Term::double(0.93));
        let id = d.intern(&term);
        assert_eq!(d.term(id), &term);
        assert_eq!(d.id_of(&term), Some(id));
    }

    #[test]
    fn iter_in_order() {
        let mut d = Dictionary::new();
        d.intern(&Term::iri("a"));
        d.intern(&Term::iri("b"));
        let collected: Vec<_> = d.iter().map(|(id, _)| id.0).collect();
        assert_eq!(collected, vec![0, 1]);
    }

    proptest! {
        #[test]
        fn prop_intern_bijection(strings in proptest::collection::vec("[a-z]{1,8}", 1..50)) {
            let mut d = Dictionary::new();
            let ids: Vec<_> = strings.iter().map(|s| d.intern(&Term::iri(s.clone()))).collect();
            for (s, id) in strings.iter().zip(&ids) {
                prop_assert_eq!(d.term(*id).as_iri(), Some(s.as_str()));
                prop_assert_eq!(d.id_of(&Term::iri(s.clone())), Some(*id));
            }
            let unique: std::collections::HashSet<_> = strings.iter().collect();
            prop_assert_eq!(d.len(), unique.len());
        }
    }
}
