//! RDF-star term model: IRIs, literals, blank nodes, and quoted triples.

use std::fmt;

/// XSD datatype IRIs used throughout the LiDS graph.
pub mod xsd {
    pub const STRING: &str = "http://www.w3.org/2001/XMLSchema#string";
    pub const INTEGER: &str = "http://www.w3.org/2001/XMLSchema#integer";
    pub const DOUBLE: &str = "http://www.w3.org/2001/XMLSchema#double";
    pub const BOOLEAN: &str = "http://www.w3.org/2001/XMLSchema#boolean";
    pub const DATE: &str = "http://www.w3.org/2001/XMLSchema#date";
}

/// An RDF literal: lexical form plus datatype (or language tag).
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Literal {
    /// The lexical form, e.g. `"3.14"`.
    pub lexical: String,
    /// Datatype IRI. Plain literals carry `xsd:string`.
    pub datatype: String,
    /// Optional BCP-47 language tag (mutually exclusive with a non-string
    /// datatype in RDF 1.1; we keep both fields for simplicity).
    pub language: Option<String>,
}

impl Literal {
    /// A plain `xsd:string` literal.
    pub fn string(value: impl Into<String>) -> Self {
        Literal {
            lexical: value.into(),
            datatype: xsd::STRING.to_string(),
            language: None,
        }
    }

    /// An `xsd:integer` literal.
    pub fn integer(value: i64) -> Self {
        Literal {
            lexical: value.to_string(),
            datatype: xsd::INTEGER.to_string(),
            language: None,
        }
    }

    /// An `xsd:double` literal. Uses enough precision to round-trip.
    pub fn double(value: f64) -> Self {
        Literal {
            lexical: format_f64(value),
            datatype: xsd::DOUBLE.to_string(),
            language: None,
        }
    }

    /// An `xsd:boolean` literal.
    pub fn boolean(value: bool) -> Self {
        Literal {
            lexical: value.to_string(),
            datatype: xsd::BOOLEAN.to_string(),
            language: None,
        }
    }

    /// Parse the lexical form as `f64` when the datatype is numeric.
    pub fn as_f64(&self) -> Option<f64> {
        if self.datatype == xsd::DOUBLE || self.datatype == xsd::INTEGER {
            self.lexical.parse().ok()
        } else {
            None
        }
    }

    /// Parse the lexical form as `i64` when the datatype is `xsd:integer`.
    pub fn as_i64(&self) -> Option<i64> {
        if self.datatype == xsd::INTEGER {
            self.lexical.parse().ok()
        } else {
            None
        }
    }

    /// Parse the lexical form as `bool` when the datatype is `xsd:boolean`.
    pub fn as_bool(&self) -> Option<bool> {
        if self.datatype == xsd::BOOLEAN {
            self.lexical.parse().ok()
        } else {
            None
        }
    }
}

/// Render an f64 so that `parse` round-trips and integers stay readable.
fn format_f64(v: f64) -> String {
    if v == v.trunc() && v.is_finite() && v.abs() < 1e15 {
        format!("{v:.1}")
    } else {
        format!("{v}")
    }
}

/// An RDF-star term.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Term {
    /// An IRI node, stored without angle brackets.
    Iri(String),
    /// A blank node with a local label.
    BNode(String),
    /// A literal value.
    Literal(Literal),
    /// An RDF-star quoted triple (`<< s p o >>`), usable as subject/object.
    Quoted(Box<Triple>),
}

impl Term {
    /// Construct an IRI term.
    pub fn iri(value: impl Into<String>) -> Self {
        Term::Iri(value.into())
    }

    /// Construct a plain string literal term.
    pub fn string(value: impl Into<String>) -> Self {
        Term::Literal(Literal::string(value))
    }

    /// Construct an `xsd:double` literal term.
    pub fn double(value: f64) -> Self {
        Term::Literal(Literal::double(value))
    }

    /// Construct an `xsd:integer` literal term.
    pub fn integer(value: i64) -> Self {
        Term::Literal(Literal::integer(value))
    }

    /// Construct an `xsd:boolean` literal term.
    pub fn boolean(value: bool) -> Self {
        Term::Literal(Literal::boolean(value))
    }

    /// Construct a quoted-triple term.
    pub fn quoted(subject: Term, predicate: Term, object: Term) -> Self {
        Term::Quoted(Box::new(Triple { subject, predicate, object }))
    }

    /// The IRI string when this is an IRI term.
    pub fn as_iri(&self) -> Option<&str> {
        match self {
            Term::Iri(s) => Some(s),
            _ => None,
        }
    }

    /// The literal when this is a literal term.
    pub fn as_literal(&self) -> Option<&Literal> {
        match self {
            Term::Literal(l) => Some(l),
            _ => None,
        }
    }

    /// True for literals.
    pub fn is_literal(&self) -> bool {
        matches!(self, Term::Literal(_))
    }
}

/// An RDF-star triple (subject may itself be a quoted triple).
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Triple {
    pub subject: Term,
    pub predicate: Term,
    pub object: Term,
}

impl Triple {
    pub fn new(subject: Term, predicate: Term, object: Term) -> Self {
        Triple { subject, predicate, object }
    }
}

/// The graph component of a quad.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub enum GraphName {
    /// The default (unnamed) graph.
    #[default]
    Default,
    /// A named graph, identified by an IRI. The paper stores each abstracted
    /// pipeline in its own named graph.
    Named(String),
}

impl GraphName {
    pub fn named(iri: impl Into<String>) -> Self {
        GraphName::Named(iri.into())
    }
}

/// A triple placed in a graph.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Quad {
    pub subject: Term,
    pub predicate: Term,
    pub object: Term,
    pub graph: GraphName,
}

impl Quad {
    /// A quad in the default graph.
    pub fn new(subject: Term, predicate: Term, object: Term) -> Self {
        Quad { subject, predicate, object, graph: GraphName::Default }
    }

    /// A quad in a named graph.
    pub fn in_graph(subject: Term, predicate: Term, object: Term, graph: GraphName) -> Self {
        Quad { subject, predicate, object, graph }
    }

    /// Project out the triple component.
    pub fn triple(&self) -> Triple {
        Triple {
            subject: self.subject.clone(),
            predicate: self.predicate.clone(),
            object: self.object.clone(),
        }
    }
}

impl fmt::Display for Term {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Term::Iri(iri) => write!(f, "<{iri}>"),
            Term::BNode(label) => write!(f, "_:{label}"),
            Term::Literal(l) => {
                write!(f, "\"{}\"", escape_literal(&l.lexical))?;
                if let Some(lang) = &l.language {
                    write!(f, "@{lang}")
                } else if l.datatype != xsd::STRING {
                    write!(f, "^^<{}>", l.datatype)
                } else {
                    Ok(())
                }
            }
            Term::Quoted(t) => write!(f, "<< {} {} {} >>", t.subject, t.predicate, t.object),
        }
    }
}

impl fmt::Display for Quad {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {} {}", self.subject, self.predicate, self.object)?;
        if let GraphName::Named(g) = &self.graph {
            write!(f, " <{g}>")?;
        }
        write!(f, " .")
    }
}

/// Escape a literal lexical form for N-Quads output.
pub(crate) fn escape_literal(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn literal_constructors_and_accessors() {
        assert_eq!(Literal::integer(42).as_i64(), Some(42));
        assert_eq!(Literal::double(2.5).as_f64(), Some(2.5));
        assert_eq!(Literal::boolean(true).as_bool(), Some(true));
        assert_eq!(Literal::string("x").as_f64(), None);
        // integers parse as f64 too
        assert_eq!(Literal::integer(3).as_f64(), Some(3.0));
    }

    #[test]
    fn double_formatting_roundtrips() {
        for v in [0.0, 1.0, -2.5, 0.871, 1e-9, 123456.789] {
            let l = Literal::double(v);
            assert_eq!(l.as_f64(), Some(v), "lexical {:?}", l.lexical);
        }
    }

    #[test]
    fn display_forms() {
        assert_eq!(Term::iri("http://a/b").to_string(), "<http://a/b>");
        assert_eq!(Term::string("hi").to_string(), "\"hi\"");
        assert_eq!(
            Term::boolean(true).to_string(),
            "\"true\"^^<http://www.w3.org/2001/XMLSchema#boolean>"
        );
        let quoted = Term::quoted(Term::iri("s"), Term::iri("p"), Term::iri("o"));
        assert_eq!(quoted.to_string(), "<< <s> <p> <o> >>");
    }

    #[test]
    fn escaping() {
        assert_eq!(escape_literal("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
    }

    #[test]
    fn quad_display_includes_graph() {
        let q = Quad::in_graph(
            Term::iri("s"),
            Term::iri("p"),
            Term::iri("o"),
            GraphName::named("g"),
        );
        assert_eq!(q.to_string(), "<s> <p> <o> <g> .");
    }
}
