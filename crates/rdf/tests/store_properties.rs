//! Property tests: the four index orderings stay consistent across
//! arbitrary insert/remove interleavings, and pattern scans agree with a
//! naive filter over the full quad set.

use lids_rdf::{GraphName, Quad, QuadPattern, QuadStore, Term};
use proptest::prelude::*;

#[derive(Debug, Clone)]
enum Op {
    Insert(u8, u8, u8, u8),
    Remove(u8, u8, u8, u8),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0u8..5, 0u8..3, 0u8..5, 0u8..3).prop_map(|(s, p, o, g)| Op::Insert(s, p, o, g)),
        (0u8..5, 0u8..3, 0u8..5, 0u8..3).prop_map(|(s, p, o, g)| Op::Remove(s, p, o, g)),
    ]
}

fn quad(s: u8, p: u8, o: u8, g: u8) -> Quad {
    let graph = if g == 0 {
        GraphName::Default
    } else {
        GraphName::named(format!("g{g}"))
    };
    Quad::in_graph(
        Term::iri(format!("s{s}")),
        Term::iri(format!("p{p}")),
        Term::iri(format!("o{o}")),
        graph,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn store_matches_reference_set(ops in proptest::collection::vec(op_strategy(), 1..80)) {
        let mut store = QuadStore::new();
        let mut reference: std::collections::HashSet<Quad> = Default::default();
        for op in &ops {
            match *op {
                Op::Insert(s, p, o, g) => {
                    let q = quad(s, p, o, g);
                    let fresh = store.insert(&q);
                    prop_assert_eq!(fresh, reference.insert(q));
                }
                Op::Remove(s, p, o, g) => {
                    let q = quad(s, p, o, g);
                    let removed = store.remove(&q);
                    prop_assert_eq!(removed, reference.remove(&q));
                }
            }
        }
        prop_assert_eq!(store.len(), reference.len());
        // full scan equals the reference set
        let scanned: std::collections::HashSet<Quad> = store.iter().collect();
        prop_assert_eq!(&scanned, &reference);
        // every single-position pattern agrees with a naive filter
        for s in 0..5u8 {
            let pattern = QuadPattern::any().with_subject(Term::iri(format!("s{s}")));
            let got = store.match_pattern(&pattern).count();
            let want = reference.iter().filter(|q| q.subject == Term::iri(format!("s{s}"))).count();
            prop_assert_eq!(got, want, "subject s{}", s);
        }
        for p in 0..3u8 {
            let pattern = QuadPattern::any().with_predicate(Term::iri(format!("p{p}")));
            let got = store.match_pattern(&pattern).count();
            let want = reference.iter().filter(|q| q.predicate == Term::iri(format!("p{p}"))).count();
            prop_assert_eq!(got, want, "predicate p{}", p);
        }
        for o in 0..5u8 {
            let pattern = QuadPattern::any().with_object(Term::iri(format!("o{o}")));
            let got = store.match_pattern(&pattern).count();
            let want = reference.iter().filter(|q| q.object == Term::iri(format!("o{o}"))).count();
            prop_assert_eq!(got, want, "object o{}", o);
        }
        // graph-scoped scans
        for g in 0..3u8 {
            let graph = if g == 0 { GraphName::Default } else { GraphName::named(format!("g{g}")) };
            let pattern = QuadPattern::any().with_graph(graph.clone());
            let got = store.match_pattern(&pattern).count();
            let want = reference.iter().filter(|q| q.graph == graph).count();
            prop_assert_eq!(got, want, "graph {}", g);
        }
    }

    #[test]
    fn nquads_roundtrip_arbitrary_store(ops in proptest::collection::vec(op_strategy(), 1..40)) {
        let mut store = QuadStore::new();
        for op in &ops {
            if let Op::Insert(s, p, o, g) = *op {
                store.insert(&quad(s, p, o, g));
            }
        }
        let doc = lids_rdf::nquads::write_document(store.iter().collect::<Vec<_>>().iter());
        let parsed = lids_rdf::nquads::parse_document(&doc).unwrap();
        let mut back = QuadStore::new();
        for q in &parsed {
            back.insert(q);
        }
        prop_assert_eq!(back.len(), store.len());
        for q in store.iter() {
            prop_assert!(back.contains(&q));
        }
    }
}
