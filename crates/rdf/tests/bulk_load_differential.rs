//! Differential property test for the bulk loader: `QuadStore::extend`
//! must be **bit-identical** to a sequential `insert` loop — same quads,
//! same four index permutations, and the same insert-order-dense `TermId`
//! for every term, since the SPARQL evaluator joins purely over ids.
//!
//! Batches are drawn from a small alphabet so duplicates (batch-internal
//! and cross-batch) are common, and include quoted triples and named
//! graphs — the two term shapes with non-trivial interning order.

use lids_rdf::{EncodedPattern, EncodedQuad, GraphName, Quad, QuadStore, Term};
use proptest::prelude::*;
use proptest::strategy::BoxedStrategy;

fn leaf_strategy() -> BoxedStrategy<Term> {
    let iri = (0u8..12).prop_map(|i| Term::iri(format!("http://x/{i}")));
    let literal = prop_oneof![
        (0u8..6).prop_map(|i| Term::string(format!("v{i}"))),
        (0u8..6).prop_map(|i| Term::double(f64::from(i) / 4.0)),
    ];
    let bnode = (0u8..4).prop_map(|i| Term::BNode(format!("b{i}")));
    prop_oneof![4 => iri.boxed(), 2 => literal.boxed(), 1 => bnode.boxed()].boxed()
}

fn term_strategy() -> BoxedStrategy<Term> {
    let quoted = (leaf_strategy(), leaf_strategy(), leaf_strategy())
        .prop_map(|(s, p, o)| Term::quoted(s, p, o));
    prop_oneof![6 => leaf_strategy(), 1 => quoted.boxed()].boxed()
}

fn graph_strategy() -> impl Strategy<Value = GraphName> {
    prop_oneof![
        3 => Just(GraphName::Default),
        2 => (0u8..3).prop_map(|i| GraphName::named(format!("http://g/{i}"))),
    ]
}

fn quad_strategy() -> impl Strategy<Value = Quad> {
    (term_strategy(), term_strategy(), term_strategy(), graph_strategy())
        .prop_map(|(s, p, o, g)| Quad::in_graph(s, p, o, g))
}

/// The two stores agree bit for bit: dictionary (ids AND interning order),
/// quad set in encoded form, and internally consistent secondary indexes.
fn assert_identical(seq: &QuadStore, bulk: &QuadStore) {
    assert_eq!(bulk.len(), seq.len(), "quad count diverged");
    assert_eq!(bulk.term_count(), seq.term_count(), "term count diverged");
    for (id, term) in seq.dictionary().iter() {
        assert_eq!(bulk.dictionary().term(id), term, "TermId {} diverged", id.0);
    }
    let seq_ids: Vec<EncodedQuad> = seq.match_ids(&EncodedPattern::any()).collect();
    let bulk_ids: Vec<EncodedQuad> = bulk.match_ids(&EncodedPattern::any()).collect();
    assert_eq!(seq_ids, bulk_ids, "encoded quad sets diverged");
    assert!(seq.validate_indexes(), "sequential store indexes inconsistent");
    assert!(bulk.validate_indexes(), "bulk store indexes inconsistent");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn extend_matches_sequential_insert(quads in proptest::collection::vec(quad_strategy(), 0..120)) {
        let mut seq = QuadStore::new();
        let mut fresh = 0usize;
        for quad in &quads {
            fresh += usize::from(seq.insert(quad));
        }
        let mut bulk = QuadStore::new();
        let stats = bulk.extend_stats(quads.clone());
        prop_assert_eq!(stats.quads_in, quads.len());
        prop_assert_eq!(stats.quads_added, fresh);
        assert_identical(&seq, &bulk);
    }

    #[test]
    fn split_batches_match_one_batch(
        quads in proptest::collection::vec(quad_strategy(), 1..120),
        split_at in 0usize..120,
    ) {
        let split = split_at.min(quads.len());
        let mut seq = QuadStore::new();
        for quad in &quads {
            seq.insert(quad);
        }
        // incremental path: first batch bulk-builds, second merges into
        // the populated trees and an already-warm dictionary
        let mut bulk = QuadStore::new();
        bulk.extend(quads[..split].to_vec());
        bulk.extend(quads[split..].to_vec());
        assert_identical(&seq, &bulk);
    }

    #[test]
    fn extend_encoded_reinserts_are_noops(quads in proptest::collection::vec(quad_strategy(), 1..60)) {
        let mut store = QuadStore::new();
        store.extend(quads);
        let before = store.len();
        let encoded: Vec<EncodedQuad> = store.match_ids(&EncodedPattern::any()).collect();
        prop_assert_eq!(store.extend_encoded(encoded), 0);
        prop_assert_eq!(store.len(), before);
        prop_assert!(store.validate_indexes());
    }
}

/// One deterministic large-ish batch that crosses the parallel threshold,
/// so the sharded extract / threaded index merge paths run in CI even
/// though proptest batches stay small.
#[test]
fn parallel_path_matches_sequential_insert() {
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};
    let mut rng = SmallRng::seed_from_u64(7);
    let mut quads: Vec<Quad> = Vec::new();
    for _ in 0..30_000 {
        let s = Term::iri(format!("http://x/s{}", rng.gen_range(0..2000)));
        let p = Term::iri(format!("http://x/p{}", rng.gen_range(0..20)));
        let o = match rng.gen_range(0..3) {
            0 => Term::iri(format!("http://x/o{}", rng.gen_range(0..2000))),
            1 => Term::string(format!("v{}", rng.gen_range(0..500))),
            _ => Term::quoted(
                Term::iri(format!("http://x/a{}", rng.gen_range(0..100))),
                Term::iri("http://x/sim"),
                Term::iri(format!("http://x/b{}", rng.gen_range(0..100))),
            ),
        };
        let g = if rng.gen_bool(0.3) {
            GraphName::named(format!("http://g/{}", rng.gen_range(0..50)))
        } else {
            GraphName::Default
        };
        quads.push(Quad::in_graph(s, p, o, g));
    }
    let mut seq = QuadStore::new();
    for quad in &quads {
        seq.insert(quad);
    }
    let mut bulk = QuadStore::new();
    let stats = bulk.extend_stats(quads);
    assert!(stats.quads_added > 0);
    assert!(stats.dedup_rate() >= 0.0);
    assert_identical(&seq, &bulk);
}
