//! `lids-server` — the network front end over the snapshot layer.
//!
//! KGLiDS is meant to be *served*: discovery and SPARQL queries arrive
//! from many concurrent data-science clients over the network, not from
//! in-process callers. This crate puts an HTTP/1.1 edge in front of the
//! platform using nothing but `std::net` and the vendored `serde_json`
//! (the workspace's offline ethos — zero external dependencies):
//!
//! - [`api`] — the `lids-api/v1` wire protocol as typed serde structs,
//!   shared by the server and the blocking [`client::Client`] helper, so
//!   the protocol is an API, not ad-hoc JSON.
//! - [`http`] — a minimal, bounded HTTP/1.1 reader/writer: request-line +
//!   headers + `Content-Length` bodies, keep-alive, typed framing errors
//!   that map onto 400/413 responses.
//! - [`server`] — [`server::LidsServer`]: a bounded worker pool serving
//!   SPARQL (`POST /v1/query`, `/v1/explain`) and typed discovery
//!   (`/v1/discovery/*`) against [`kglids::LidsReader`] snapshots, plus
//!   `GET /healthz` and `GET /metrics` (the `lids-obs` JSON snapshot).
//!   Graceful shutdown drains in-flight requests; per-request ids and
//!   latency histograms ride the obs registry.
//! - [`client`] — a small blocking client over one keep-alive connection,
//!   with typed responses and typed API errors.
//!
//! Error mapping is the platform's own taxonomy: a handler failure
//! surfaces as [`kglids::LidsError`], and
//! [`lids_exec::ErrorKind::http_status`] decides 400 vs 503 vs 500 — the
//! server adds no parallel error vocabulary.

#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

pub mod api;
pub mod client;
pub mod http;
pub mod server;

pub use api::{
    ErrorResponse, ExplainRequest, ExplainResponse, HealthResponse, PathsRequest, PathsResponse,
    QueryRequest, QueryResponse, SearchRequest, TableHitsRequest, TableHitsResponse, WireLimits,
    API_VERSION,
};
pub use client::{Client, ClientError};
pub use server::{Backend, LidsServer, ServerConfig};
