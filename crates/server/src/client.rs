//! A small blocking client over one keep-alive connection.
//!
//! Speaks exactly the [`crate::api`] wire types, so anything the server
//! can answer the client can decode — the e2e parity tests and the
//! network serving bench both drive the server through this.
//!
//! One [`Client`] owns at most one TCP connection. It connects lazily,
//! reuses the connection across requests (keep-alive), drops it when
//! the server answers `Connection: close`, and retries a failed *write*
//! once on a fresh connection (the server may have closed an idle
//! keep-alive socket between requests).

use crate::api::{
    ErrorResponse, ExplainRequest, ExplainResponse, HealthResponse, PathsRequest, PathsResponse,
    QueryRequest, QueryResponse, SearchRequest, TableHitsRequest, TableHitsResponse, WireLimits,
};
use crate::http;
use serde::{Deserialize, Serialize};
use std::io::{BufReader, Write};
use std::net::TcpStream;

/// Why a client call failed.
#[derive(Debug)]
pub enum ClientError {
    /// Transport failure (connect, read, or write).
    Io(std::io::Error),
    /// The peer answered bytes that are not the protocol.
    Protocol(String),
    /// The server answered a well-formed API error (4xx/5xx).
    Api(ErrorResponse),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "io: {e}"),
            ClientError::Protocol(m) => write!(f, "protocol: {m}"),
            ClientError::Api(e) => {
                write!(f, "api error {} ({}): {}", e.status, e.error, e.message)
            }
        }
    }
}

impl std::error::Error for ClientError {}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> Self {
        ClientError::Io(e)
    }
}

/// Blocking keep-alive client for one `lids-server`.
pub struct Client {
    addr: String,
    conn: Option<TcpStream>,
}

impl Client {
    /// A client for `addr` (e.g. `"127.0.0.1:8080"` or the string form
    /// of [`crate::LidsServer::addr`]). Does not connect yet.
    pub fn connect(addr: impl Into<String>) -> Client {
        Client { addr: addr.into(), conn: None }
    }

    fn stream(&mut self) -> Result<&mut TcpStream, ClientError> {
        if self.conn.is_none() {
            let stream = TcpStream::connect(&self.addr)?;
            // small request/response exchanges; don't batch under Nagle
            let _ = stream.set_nodelay(true);
            self.conn = Some(stream);
        }
        match self.conn.as_mut() {
            Some(stream) => Ok(stream),
            None => Err(ClientError::Protocol("connection vanished".to_string())),
        }
    }

    fn send(&mut self, method: &str, path: &str, body: &str) -> Result<(), ClientError> {
        let request = format!(
            "{method} {path} HTTP/1.1\r\nhost: {}\r\ncontent-type: application/json\r\ncontent-length: {}\r\n\r\n{body}",
            self.addr,
            body.len(),
        );
        self.stream()?.write_all(request.as_bytes()).map_err(ClientError::Io)
    }

    /// One request/response exchange: `(status, body)`.
    pub fn request_raw(
        &mut self,
        method: &str,
        path: &str,
        body: &str,
    ) -> Result<(u16, String), ClientError> {
        if self.send(method, path, body).is_err() {
            // the server may have dropped an idle keep-alive connection;
            // retry once on a fresh one
            self.conn = None;
            self.send(method, path, body)?;
        }
        let stream = match self.conn.take() {
            Some(stream) => stream,
            None => return Err(ClientError::Protocol("no connection after send".to_string())),
        };
        let mut reader = BufReader::new(stream);
        let (status, body, keep_alive) = http::read_response(&mut reader).map_err(|e| match e {
            http::HttpReadError::Io(io) => ClientError::Io(io),
            other => ClientError::Protocol(other.to_string()),
        })?;
        if keep_alive {
            self.conn = Some(reader.into_inner());
        }
        Ok((status, body))
    }

    fn call<Req: Serialize, Resp: for<'de> Deserialize<'de>>(
        &mut self,
        path: &str,
        req: &Req,
    ) -> Result<Resp, ClientError> {
        let body = serde_json::to_string(req)
            .map_err(|e| ClientError::Protocol(format!("request serialization: {e}")))?;
        let (status, body) = self.request_raw("POST", path, &body)?;
        decode(status, &body)
    }

    /// `POST /v1/query`.
    pub fn query(
        &mut self,
        query: &str,
        limits: Option<WireLimits>,
    ) -> Result<QueryResponse, ClientError> {
        self.call("/v1/query", &QueryRequest { query: query.to_string(), limits })
    }

    /// `POST /v1/explain`.
    pub fn explain(&mut self, query: &str) -> Result<ExplainResponse, ClientError> {
        self.call("/v1/explain", &ExplainRequest { query: query.to_string() })
    }

    /// `POST /v1/discovery/unionable-tables`.
    pub fn unionable_tables(
        &mut self,
        req: &TableHitsRequest,
    ) -> Result<TableHitsResponse, ClientError> {
        self.call("/v1/discovery/unionable-tables", req)
    }

    /// `POST /v1/discovery/joinable-tables`.
    pub fn joinable_tables(
        &mut self,
        req: &TableHitsRequest,
    ) -> Result<TableHitsResponse, ClientError> {
        self.call("/v1/discovery/joinable-tables", req)
    }

    /// `POST /v1/discovery/paths`.
    pub fn paths(&mut self, req: &PathsRequest) -> Result<PathsResponse, ClientError> {
        self.call("/v1/discovery/paths", req)
    }

    /// `POST /v1/discovery/search`.
    pub fn search(&mut self, req: &SearchRequest) -> Result<QueryResponse, ClientError> {
        self.call("/v1/discovery/search", req)
    }

    /// `GET /healthz`.
    pub fn healthz(&mut self) -> Result<HealthResponse, ClientError> {
        let (status, body) = self.request_raw("GET", "/healthz", "")?;
        decode(status, &body)
    }

    /// `GET /metrics` — the raw `lids-obs/v1` JSON snapshot.
    pub fn metrics_json(&mut self) -> Result<String, ClientError> {
        let (status, body) = self.request_raw("GET", "/metrics", "")?;
        if status == 200 {
            Ok(body)
        } else {
            Err(api_error(status, &body))
        }
    }
}

fn api_error(status: u16, body: &str) -> ClientError {
    match serde_json::from_str::<ErrorResponse>(body) {
        Ok(err) => ClientError::Api(err),
        Err(_) => ClientError::Protocol(format!("status {status} with undecodable body: {body}")),
    }
}

fn decode<Resp: for<'de> Deserialize<'de>>(
    status: u16,
    body: &str,
) -> Result<Resp, ClientError> {
    if status == 200 {
        serde_json::from_str(body)
            .map_err(|e| ClientError::Protocol(format!("response decode: {e}")))
    } else {
        Err(api_error(status, body))
    }
}
