//! Minimal, bounded HTTP/1.1 framing over `std` streams.
//!
//! Just enough of the protocol for a JSON API: request line, headers,
//! `Content-Length` bodies, keep-alive. Everything is bounded — header
//! bytes by [`MAX_HEADER_BYTES`], bodies by the server's configured cap —
//! and every framing failure is a *typed* [`HttpReadError`] so the
//! connection loop can answer 400 or 413 instead of hanging or dying.
//!
//! Reads tolerate `WouldBlock`/`TimedOut` from a socket read timeout: a
//! timeout **before any request bytes** surfaces as
//! [`HttpReadError::Idle`] (the keep-alive poll point where the worker
//! checks the shutdown flag), while a timeout **mid-request** keeps
//! reading — a slow client is not a dead client.

use std::io::{self, BufRead, ErrorKind, Write};

/// Cap on request-line + header bytes; past it the request is rejected
/// with 413 before any allocation proportional to attacker input.
pub const MAX_HEADER_BYTES: usize = 16 * 1024;

/// One parsed request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HttpRequest {
    pub method: String,
    /// Request target (path only; this API uses no query strings).
    pub target: String,
    pub body: Vec<u8>,
    /// False when the client sent `Connection: close`.
    pub keep_alive: bool,
}

/// Why a request could not be read.
#[derive(Debug)]
pub enum HttpReadError {
    /// Clean EOF before any request bytes: the peer closed a keep-alive
    /// connection. Not an error worth answering.
    Closed,
    /// Read timeout before any request bytes: the keep-alive poll point.
    Idle,
    /// The bytes are not a well-formed HTTP/1.1 request (→ 400).
    Malformed(String),
    /// Headers or body exceed their cap (→ 413).
    TooLarge { what: &'static str, limit: usize },
    /// Transport failure (connection reset, broken pipe).
    Io(io::Error),
}

impl std::fmt::Display for HttpReadError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HttpReadError::Closed => write!(f, "connection closed"),
            HttpReadError::Idle => write!(f, "idle (read timeout before request)"),
            HttpReadError::Malformed(m) => write!(f, "malformed request: {m}"),
            HttpReadError::TooLarge { what, limit } => {
                write!(f, "{what} exceeds {limit} bytes")
            }
            HttpReadError::Io(e) => write!(f, "io error: {e}"),
        }
    }
}

fn is_timeout(e: &io::Error) -> bool {
    matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut)
}

/// Read one `\r\n`- (or `\n`-) terminated line, retrying read timeouts
/// once any byte of the request has arrived. `started` reports whether
/// any request byte was consumed before (for the Idle-vs-retry call).
fn read_line_bounded(
    r: &mut impl BufRead,
    started: bool,
    budget: &mut usize,
) -> Result<String, HttpReadError> {
    let mut line = String::new();
    loop {
        match r.read_line(&mut line) {
            Ok(0) => {
                return Err(if line.is_empty() && !started {
                    HttpReadError::Closed
                } else {
                    HttpReadError::Malformed("eof mid-request".into())
                });
            }
            Ok(n) => {
                *budget = budget.checked_sub(n).ok_or(HttpReadError::TooLarge {
                    what: "headers",
                    limit: MAX_HEADER_BYTES,
                })?;
                while line.ends_with('\n') || line.ends_with('\r') {
                    line.pop();
                }
                return Ok(line);
            }
            Err(e) if is_timeout(&e) => {
                if line.is_empty() && !started {
                    return Err(HttpReadError::Idle);
                }
                // mid-request stall: keep reading (bytes read so far are
                // already in `line`)
            }
            Err(e) if e.kind() == ErrorKind::Interrupted => {}
            Err(e) => return Err(HttpReadError::Io(e)),
        }
    }
}

/// Read and parse one request. `max_body` bounds the `Content-Length`.
pub fn read_request(
    r: &mut impl BufRead,
    max_body: usize,
) -> Result<HttpRequest, HttpReadError> {
    let mut budget = MAX_HEADER_BYTES;
    let request_line = read_line_bounded(r, false, &mut budget)?;
    let mut parts = request_line.split_whitespace();
    let method = parts
        .next()
        .ok_or_else(|| HttpReadError::Malformed("empty request line".into()))?
        .to_string();
    let target = parts
        .next()
        .ok_or_else(|| HttpReadError::Malformed("request line missing target".into()))?
        .to_string();
    match parts.next() {
        Some(v) if v.starts_with("HTTP/1.") => {}
        _ => return Err(HttpReadError::Malformed("not an HTTP/1.x request".into())),
    }

    let mut content_length: usize = 0;
    let mut keep_alive = true;
    loop {
        let line = read_line_bounded(r, true, &mut budget)?;
        if line.is_empty() {
            break;
        }
        let Some((name, value)) = line.split_once(':') else {
            return Err(HttpReadError::Malformed(format!("header without colon: {line}")));
        };
        let name = name.trim().to_ascii_lowercase();
        let value = value.trim();
        match name.as_str() {
            "content-length" => {
                content_length = value.parse().map_err(|_| {
                    HttpReadError::Malformed(format!("bad content-length: {value}"))
                })?;
            }
            "connection" if value.eq_ignore_ascii_case("close") => keep_alive = false,
            _ => {}
        }
    }

    if content_length > max_body {
        return Err(HttpReadError::TooLarge { what: "body", limit: max_body });
    }
    let mut body = vec![0u8; content_length];
    let mut read = 0;
    while read < body.len() {
        match r.read(&mut body[read..]) {
            Ok(0) => return Err(HttpReadError::Malformed("eof mid-body".into())),
            Ok(n) => read += n,
            Err(e) if is_timeout(&e) || e.kind() == ErrorKind::Interrupted => {}
            Err(e) => return Err(HttpReadError::Io(e)),
        }
    }
    Ok(HttpRequest { method, target, body, keep_alive })
}

/// Standard reason phrase for the statuses this API answers with.
pub fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        413 => "Payload Too Large",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        _ => "Unknown",
    }
}

/// Write one JSON response.
pub fn write_response(
    w: &mut impl Write,
    status: u16,
    body: &str,
    keep_alive: bool,
) -> io::Result<()> {
    // one buffer, one write: interacts badly with Nagle + delayed ACK
    // otherwise (a head write followed by a tiny body write can stall
    // ~40ms waiting for the peer's ACK)
    let message = format!(
        "HTTP/1.1 {} {}\r\ncontent-type: application/json\r\ncontent-length: {}\r\nconnection: {}\r\n\r\n{body}",
        status,
        reason(status),
        body.len(),
        if keep_alive { "keep-alive" } else { "close" },
    );
    w.write_all(message.as_bytes())?;
    w.flush()
}

/// Parse one response off a client connection: `(status, body)`.
/// Blocks until the full response arrives (retrying read timeouts);
/// `keep_alive` reports whether the server will keep the connection.
pub fn read_response(
    r: &mut impl BufRead,
) -> Result<(u16, String, bool), HttpReadError> {
    let mut budget = MAX_HEADER_BYTES;
    let status_line = read_line_bounded(r, true, &mut budget)?;
    let mut parts = status_line.split_whitespace();
    match parts.next() {
        Some(v) if v.starts_with("HTTP/1.") => {}
        _ => return Err(HttpReadError::Malformed("not an HTTP/1.x response".into())),
    }
    let status: u16 = parts
        .next()
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| HttpReadError::Malformed("bad status code".into()))?;
    let mut content_length: usize = 0;
    let mut keep_alive = true;
    loop {
        let line = read_line_bounded(r, true, &mut budget)?;
        if line.is_empty() {
            break;
        }
        if let Some((name, value)) = line.split_once(':') {
            let name = name.trim().to_ascii_lowercase();
            let value = value.trim();
            if name == "content-length" {
                content_length = value.parse().map_err(|_| {
                    HttpReadError::Malformed(format!("bad content-length: {value}"))
                })?;
            } else if name == "connection" && value.eq_ignore_ascii_case("close") {
                keep_alive = false;
            }
        }
    }
    let mut body = vec![0u8; content_length];
    let mut read = 0;
    while read < body.len() {
        match r.read(&mut body[read..]) {
            Ok(0) => return Err(HttpReadError::Malformed("eof mid-body".into())),
            Ok(n) => read += n,
            Err(e) if is_timeout(&e) || e.kind() == ErrorKind::Interrupted => {}
            Err(e) => return Err(HttpReadError::Io(e)),
        }
    }
    let body = String::from_utf8(body)
        .map_err(|_| HttpReadError::Malformed("response body not UTF-8".into()))?;
    Ok((status, body, keep_alive))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    fn parse(text: &str) -> Result<HttpRequest, HttpReadError> {
        read_request(&mut Cursor::new(text.as_bytes().to_vec()), 1024)
    }

    #[test]
    fn parses_post_with_body() {
        let req = parse(
            "POST /v1/query HTTP/1.1\r\nHost: x\r\nContent-Length: 4\r\n\r\nbody",
        )
        .unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.target, "/v1/query");
        assert_eq!(req.body, b"body");
        assert!(req.keep_alive);
    }

    #[test]
    fn parses_get_without_body_and_connection_close() {
        let req = parse("GET /healthz HTTP/1.1\r\nConnection: close\r\n\r\n").unwrap();
        assert_eq!(req.method, "GET");
        assert!(req.body.is_empty());
        assert!(!req.keep_alive);
    }

    #[test]
    fn malformed_requests_are_typed() {
        assert!(matches!(parse("garbage\r\n\r\n"), Err(HttpReadError::Malformed(_))));
        assert!(matches!(
            parse("POST /x HTTP/1.1\r\nno-colon-header\r\n\r\n"),
            Err(HttpReadError::Malformed(_))
        ));
        assert!(matches!(
            parse("POST /x HTTP/1.1\r\nContent-Length: nope\r\n\r\n"),
            Err(HttpReadError::Malformed(_))
        ));
        // clean EOF before any bytes = peer closed
        assert!(matches!(parse(""), Err(HttpReadError::Closed)));
        // EOF mid-request
        assert!(matches!(
            parse("POST /x HTTP/1.1\r\nContent-Length: 10\r\n\r\nshort"),
            Err(HttpReadError::Malformed(_))
        ));
    }

    #[test]
    fn oversized_body_is_rejected_before_reading_it() {
        let err = parse("POST /x HTTP/1.1\r\nContent-Length: 99999\r\n\r\n").unwrap_err();
        match err {
            HttpReadError::TooLarge { what, limit } => {
                assert_eq!(what, "body");
                assert_eq!(limit, 1024);
            }
            other => panic!("expected TooLarge, got {other:?}"),
        }
    }

    #[test]
    fn oversized_headers_are_rejected() {
        let huge = format!(
            "POST /x HTTP/1.1\r\nX-Big: {}\r\n\r\n",
            "a".repeat(MAX_HEADER_BYTES)
        );
        assert!(matches!(
            parse(&huge),
            Err(HttpReadError::TooLarge { what: "headers", .. })
        ));
    }

    #[test]
    fn response_round_trip() {
        let mut wire = Vec::new();
        write_response(&mut wire, 200, "{\"ok\":true}", true).unwrap();
        let (status, body, keep_alive) =
            read_response(&mut Cursor::new(wire)).unwrap();
        assert_eq!(status, 200);
        assert_eq!(body, "{\"ok\":true}");
        assert!(keep_alive);

        let mut wire = Vec::new();
        write_response(&mut wire, 503, "{}", false).unwrap();
        let (status, _, keep_alive) = read_response(&mut Cursor::new(wire)).unwrap();
        assert_eq!(status, 503);
        assert!(!keep_alive);
    }
}
