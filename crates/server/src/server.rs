//! The threaded HTTP server: a bounded worker pool over snapshot reads.
//!
//! Concurrency model: one acceptor thread pushes accepted connections
//! into a bounded `sync_channel`; a fixed pool of worker threads pulls
//! connections and serves them with keep-alive. When the queue is full
//! the acceptor answers 503 inline and drops the connection — overload
//! sheds load instead of queueing unboundedly. Shutdown is graceful:
//! the flag flips, the acceptor is unblocked by a self-connect and
//! stops, workers finish their in-flight request (answering with
//! `Connection: close`), drain any queued connections, and join.
//!
//! Every read endpoint answers from one pinned
//! [`StoreSnapshot`](lids_rdf::StoreSnapshot) — the copy-on-write
//! snapshot layer is what makes "many network clients + one live
//! writer" safe without a read lock.

use crate::api::{
    ErrorResponse, ExplainRequest, ExplainResponse, HealthResponse, PathsRequest, PathsResponse,
    QueryRequest, QueryResponse, SearchRequest, TableHitsRequest, TableHitsResponse, WireJoinPath,
    WirePattern, WireTableHit, API_VERSION,
};
use crate::http::{self, HttpReadError, HttpRequest};
use kglids::{
    DataFrame, ErrorKind, KgLids, LidsError, LidsReader, LidsResult, UnionMode,
};
use lids_obs::Obs;
use serde::Serialize;
use std::io::BufReader;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{sync_channel, TrySendError};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// What the server serves from.
#[derive(Clone)]
pub enum Backend {
    /// A full platform: SPARQL, explain, and the discovery surface.
    Platform(Arc<KgLids>),
    /// A bare snapshot reader (no profiles ⇒ no discovery endpoints):
    /// SPARQL and explain against the latest published generation.
    Reader(LidsReader),
}

impl Backend {
    fn generation(&self) -> u64 {
        match self {
            Backend::Platform(p) => p.store().generation(),
            Backend::Reader(r) => r.snapshot().generation(),
        }
    }

    fn triples(&self) -> u64 {
        match self {
            Backend::Platform(p) => p.store().len() as u64,
            Backend::Reader(r) => r.snapshot().len() as u64,
        }
    }
}

/// Server tuning knobs. `Default` is sized for tests and small fleets.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Worker threads serving connections.
    pub workers: usize,
    /// Accepted connections waiting for a worker before the acceptor
    /// starts answering 503.
    pub queue_depth: usize,
    /// Largest request body accepted (→ 413 beyond it).
    pub max_body_bytes: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig { workers: 4, queue_depth: 64, max_body_bytes: 1 << 20 }
    }
}

/// A running server. Bind with [`LidsServer::start`], stop with
/// [`LidsServer::shutdown`] (also runs on drop).
pub struct LidsServer {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    acceptor: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
    obs: Arc<Obs>,
}

/// How often an idle keep-alive connection polls the shutdown flag.
const IDLE_POLL: Duration = Duration::from_millis(100);

impl LidsServer {
    /// Bind `addr` (use `"127.0.0.1:0"` for an ephemeral test port) and
    /// start accepting.
    pub fn start(backend: Backend, addr: &str, config: ServerConfig) -> std::io::Result<LidsServer> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let obs = Arc::new(Obs::new());
        let next_id = Arc::new(AtomicU64::new(1));
        let (tx, rx) = sync_channel::<TcpStream>(config.queue_depth.max(1));
        let rx = Arc::new(Mutex::new(rx));

        let workers = (0..config.workers.max(1))
            .map(|_| {
                let rx = Arc::clone(&rx);
                let backend = backend.clone();
                let obs = Arc::clone(&obs);
                let shutdown = Arc::clone(&shutdown);
                let next_id = Arc::clone(&next_id);
                let max_body = config.max_body_bytes;
                std::thread::spawn(move || {
                    loop {
                        let conn = {
                            match rx.lock() {
                                Ok(rx) => rx.recv(),
                                Err(_) => break,
                            }
                        };
                        match conn {
                            Ok(stream) => {
                                serve_connection(
                                    stream, &backend, &obs, &shutdown, &next_id, max_body,
                                );
                            }
                            // acceptor gone and queue drained: shutdown
                            Err(_) => break,
                        }
                    }
                })
            })
            .collect();

        let acceptor = {
            let shutdown = Arc::clone(&shutdown);
            let obs = Arc::clone(&obs);
            std::thread::spawn(move || {
                for conn in listener.incoming() {
                    if shutdown.load(Ordering::SeqCst) {
                        break;
                    }
                    let Ok(stream) = conn else { continue };
                    match tx.try_send(stream) {
                        Ok(()) => obs.metrics.counter_add("server.accepted", 1),
                        Err(TrySendError::Full(mut stream)) => {
                            // shed load: answer 503 without occupying a worker
                            obs.metrics.counter_add("server.rejected_queue_full", 1);
                            let body = error_body(
                                "req-0",
                                "Overloaded",
                                "connection queue full; retry",
                                503,
                            );
                            let _ = http::write_response(&mut stream, 503, &body, false);
                        }
                        Err(TrySendError::Disconnected(_)) => break,
                    }
                }
                // dropping tx here lets workers drain the queue then exit
            })
        };

        Ok(LidsServer { addr, shutdown, acceptor: Some(acceptor), workers, obs })
    }

    /// The bound address (resolves the ephemeral port).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// This server's observability handle (the same registry `/metrics`
    /// serves).
    pub fn obs(&self) -> &Arc<Obs> {
        &self.obs
    }

    /// Stop accepting, drain in-flight requests, join every thread.
    pub fn shutdown(mut self) {
        self.stop();
    }

    fn stop(&mut self) {
        if self.shutdown.swap(true, Ordering::SeqCst) {
            return;
        }
        // unblock the acceptor's blocking accept
        let _ = TcpStream::connect(self.addr);
        if let Some(acceptor) = self.acceptor.take() {
            let _ = acceptor.join();
        }
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

impl Drop for LidsServer {
    fn drop(&mut self) {
        self.stop();
    }
}

fn error_body(request_id: &str, error: &str, message: &str, status: u16) -> String {
    let resp = ErrorResponse {
        api: API_VERSION.to_string(),
        request_id: request_id.to_string(),
        error: error.to_string(),
        message: message.to_string(),
        status: u64::from(status),
    };
    serde_json::to_string(&resp)
        .unwrap_or_else(|_| format!("{{\"error\":\"{error}\",\"status\":{status}}}"))
}

/// Serve one connection until the peer closes, a framing error ends it,
/// or shutdown begins.
fn serve_connection(
    stream: TcpStream,
    backend: &Backend,
    obs: &Obs,
    shutdown: &AtomicBool,
    next_id: &AtomicU64,
    max_body: usize,
) {
    if stream.set_read_timeout(Some(IDLE_POLL)).is_err() {
        return;
    }
    // small request/response exchanges; never trade latency for batching
    let _ = stream.set_nodelay(true);
    let mut reader = BufReader::new(stream);
    loop {
        match http::read_request(&mut reader, max_body) {
            Ok(req) => {
                let request_id = format!("req-{}", next_id.fetch_add(1, Ordering::Relaxed));
                let started = Instant::now();
                let (status, body, label) = handle(backend, obs, &req, &request_id);
                obs.metrics.counter_add("server.requests", 1);
                obs.metrics.counter_add(
                    match status {
                        200..=299 => "server.responses_2xx",
                        400..=499 => "server.responses_4xx",
                        _ => "server.responses_5xx",
                    },
                    1,
                );
                obs.metrics
                    .observe_duration(&format!("server.latency_us.{label}"), started.elapsed());
                // in-flight requests finish during shutdown, but the
                // connection is told to close
                let keep = req.keep_alive && !shutdown.load(Ordering::SeqCst);
                if http::write_response(reader.get_mut(), status, &body, keep).is_err() || !keep {
                    return;
                }
            }
            Err(HttpReadError::Idle) => {
                if shutdown.load(Ordering::SeqCst) {
                    return;
                }
            }
            Err(HttpReadError::Closed) => return,
            Err(HttpReadError::Malformed(m)) => {
                obs.metrics.counter_add("server.responses_4xx", 1);
                let body = error_body("req-0", "Malformed", &m, 400);
                let _ = http::write_response(reader.get_mut(), 400, &body, false);
                return;
            }
            Err(HttpReadError::TooLarge { what, limit }) => {
                obs.metrics.counter_add("server.responses_4xx", 1);
                let body = error_body(
                    "req-0",
                    "PayloadTooLarge",
                    &format!("{what} exceeds {limit} bytes"),
                    413,
                );
                let _ = http::write_response(reader.get_mut(), 413, &body, false);
                return;
            }
            Err(HttpReadError::Io(_)) => return,
        }
    }
}

fn to_json<T: Serialize>(request_id: &str, value: &T) -> (u16, String) {
    match serde_json::to_string(value) {
        Ok(body) => (200, body),
        Err(e) => (
            500,
            error_body(request_id, "Internal", &format!("response serialization: {e}"), 500),
        ),
    }
}

fn lids_error_response(request_id: &str, e: &LidsError) -> (u16, String) {
    let status = e.kind().http_status();
    (status, error_body(request_id, e.kind().name(), e.message(), status))
}

fn parse_body<T: for<'de> serde::Deserialize<'de>>(
    body: &[u8],
    request_id: &str,
) -> Result<T, (u16, String)> {
    let text = std::str::from_utf8(body).map_err(|_| {
        (400, error_body(request_id, "JsonMalformed", "request body is not UTF-8", 400))
    })?;
    serde_json::from_str::<T>(text).map_err(|e| {
        (400, error_body(request_id, "JsonMalformed", &format!("request body: {e}"), 400))
    })
}

/// Route and execute one request. Returns `(status, body, metric label)`.
fn handle(
    backend: &Backend,
    obs: &Obs,
    req: &HttpRequest,
    request_id: &str,
) -> (u16, String, &'static str) {
    match (req.method.as_str(), req.target.as_str()) {
        ("GET", "/healthz") => {
            let resp = HealthResponse {
                api: API_VERSION.to_string(),
                status: "ok".to_string(),
                generation: backend.generation(),
                triples: backend.triples(),
            };
            let (status, body) = to_json(request_id, &resp);
            (status, body, "healthz")
        }
        ("GET", "/metrics") => (200, obs.snapshot().to_json(), "metrics"),
        ("POST", "/v1/query") => {
            let (status, body) = handle_query(backend, &req.body, request_id);
            (status, body, "query")
        }
        ("POST", "/v1/explain") => {
            let (status, body) = handle_explain(backend, &req.body, request_id);
            (status, body, "explain")
        }
        ("POST", "/v1/discovery/unionable-tables") => {
            let (status, body) = handle_table_hits(backend, &req.body, request_id, true);
            (status, body, "unionable_tables")
        }
        ("POST", "/v1/discovery/joinable-tables") => {
            let (status, body) = handle_table_hits(backend, &req.body, request_id, false);
            (status, body, "joinable_tables")
        }
        ("POST", "/v1/discovery/paths") => {
            let (status, body) = handle_paths(backend, &req.body, request_id);
            (status, body, "paths")
        }
        ("POST", "/v1/discovery/search") => {
            let (status, body) = handle_search(backend, &req.body, request_id);
            (status, body, "search")
        }
        (_, target) => (
            404,
            error_body(request_id, "NotFound", &format!("no route for {target}"), 404),
            "other",
        ),
    }
}

fn run_query(
    backend: &Backend,
    query: &str,
    options: kglids::EvalOptions,
) -> LidsResult<(DataFrame, u64)> {
    match backend {
        Backend::Platform(p) => {
            let generation = p.store().generation();
            let df = p.query_with(query, options)?;
            Ok((df, generation))
        }
        Backend::Reader(r) => {
            let snapshot = r.snapshot();
            let df = r.query_limited(&snapshot, query, options, None)?;
            Ok((df, snapshot.generation()))
        }
    }
}

fn query_response(request_id: &str, df: DataFrame, generation: u64, started: Instant) -> (u16, String) {
    let resp = QueryResponse {
        api: API_VERSION.to_string(),
        request_id: request_id.to_string(),
        columns: df.columns,
        rows: df.rows,
        truncated: df.truncated,
        generation,
        elapsed_us: started.elapsed().as_micros().min(u128::from(u64::MAX)) as u64,
    };
    to_json(request_id, &resp)
}

fn handle_query(backend: &Backend, body: &[u8], request_id: &str) -> (u16, String) {
    let started = Instant::now();
    let req: QueryRequest = match parse_body(body, request_id) {
        Ok(req) => req,
        Err(err) => return err,
    };
    let options = req.limits.clone().unwrap_or_default().to_eval_options();
    match run_query(backend, &req.query, options) {
        Ok((df, generation)) => query_response(request_id, df, generation, started),
        Err(e) => lids_error_response(request_id, &e),
    }
}

fn handle_explain(backend: &Backend, body: &[u8], request_id: &str) -> (u16, String) {
    let req: ExplainRequest = match parse_body(body, request_id) {
        Ok(req) => req,
        Err(err) => return err,
    };
    let report = match backend {
        Backend::Platform(p) => p.explain(&req.query),
        Backend::Reader(r) => r.explain(&req.query),
    };
    match report {
        Ok(report) => {
            let resp = ExplainResponse {
                api: API_VERSION.to_string(),
                request_id: request_id.to_string(),
                reorder_joins: report.reorder_joins,
                rows: report.rows as u64,
                wall_secs: report.wall_secs,
                patterns: report
                    .patterns
                    .iter()
                    .map(|p| WirePattern {
                        pattern: p.pattern.clone(),
                        estimated_rows: p.estimated_rows as u64,
                        actual_rows: p.actual_rows,
                        scans: p.scans,
                        order: p.order.map(|o| o as u64),
                        operator: p.operator.map(str::to_string),
                        satisfiable: p.satisfiable,
                    })
                    .collect(),
                decoded_terms: report.decoded_terms,
                parallel_joins: report.parallel_joins,
                serial_joins: report.serial_joins,
                merge_joins: report.merge_joins,
                probe_joins: report.probe_joins,
                leapfrog_joins: report.leapfrog_joins,
                truncated: report.truncated,
            };
            to_json(request_id, &resp)
        }
        Err(e) => lids_error_response(request_id, &e),
    }
}

fn platform_backend<'a>(
    backend: &'a Backend,
    request_id: &str,
) -> Result<&'a Arc<KgLids>, (u16, String)> {
    match backend {
        Backend::Platform(p) => Ok(p),
        Backend::Reader(_) => Err((
            400,
            error_body(
                request_id,
                ErrorKind::InvalidArgument.name(),
                "discovery endpoints require a platform backend (profiles + embeddings)",
                400,
            ),
        )),
    }
}

fn handle_table_hits(
    backend: &Backend,
    body: &[u8],
    request_id: &str,
    unionable: bool,
) -> (u16, String) {
    let started = Instant::now();
    let req: TableHitsRequest = match parse_body(body, request_id) {
        Ok(req) => req,
        Err(err) => return err,
    };
    let platform = match platform_backend(backend, request_id) {
        Ok(p) => p,
        Err(err) => return err,
    };
    let mut d = platform.discovery();
    if let Some(k) = req.k {
        d = d.k(k as usize);
    }
    if let Some(min_score) = req.min_score {
        d = d.min_score(min_score);
    }
    if let Some(mode) = &req.mode {
        match UnionMode::parse(mode) {
            Some(mode) => d = d.mode(mode),
            None => {
                return (
                    400,
                    error_body(
                        request_id,
                        ErrorKind::InvalidArgument.name(),
                        &format!("unknown union mode: {mode}"),
                        400,
                    ),
                )
            }
        }
    }
    if let Some(limits) = &req.limits {
        d = d.limits(limits.to_query_limits());
    }
    let generation = backend.generation();
    let hits = if unionable {
        d.unionable_tables(&req.dataset, &req.table)
    } else {
        d.joinable_tables(&req.dataset, &req.table)
    };
    match hits {
        Ok(hits) => {
            let resp = TableHitsResponse {
                api: API_VERSION.to_string(),
                request_id: request_id.to_string(),
                hits: hits
                    .into_iter()
                    .map(|h| WireTableHit { dataset: h.dataset, table: h.table, score: h.score })
                    .collect(),
                generation,
                elapsed_us: started.elapsed().as_micros().min(u128::from(u64::MAX)) as u64,
            };
            to_json(request_id, &resp)
        }
        Err(e) => lids_error_response(request_id, &e),
    }
}

fn handle_paths(backend: &Backend, body: &[u8], request_id: &str) -> (u16, String) {
    let started = Instant::now();
    let req: PathsRequest = match parse_body(body, request_id) {
        Ok(req) => req,
        Err(err) => return err,
    };
    let platform = match platform_backend(backend, request_id) {
        Ok(p) => p,
        Err(err) => return err,
    };
    let mut d = platform.discovery();
    if let Some(hops) = req.hops {
        d = d.hops(hops as usize);
    }
    if let Some(limits) = &req.limits {
        d = d.limits(limits.to_query_limits());
    }
    let generation = backend.generation();
    let from = (req.from_dataset.as_str(), req.from_table.as_str());
    let to = (req.to_dataset.as_str(), req.to_table.as_str());
    let paths = if req.shortest.unwrap_or(false) {
        d.shortest_path(from, to).map(|p| p.into_iter().collect::<Vec<_>>())
    } else {
        d.paths(from, to)
    };
    match paths {
        Ok(paths) => {
            let resp = PathsResponse {
                api: API_VERSION.to_string(),
                request_id: request_id.to_string(),
                paths: paths.into_iter().map(|p| WireJoinPath { tables: p.tables }).collect(),
                generation,
                elapsed_us: started.elapsed().as_micros().min(u128::from(u64::MAX)) as u64,
            };
            to_json(request_id, &resp)
        }
        Err(e) => lids_error_response(request_id, &e),
    }
}

fn handle_search(backend: &Backend, body: &[u8], request_id: &str) -> (u16, String) {
    let started = Instant::now();
    let req: SearchRequest = match parse_body(body, request_id) {
        Ok(req) => req,
        Err(err) => return err,
    };
    let platform = match platform_backend(backend, request_id) {
        Ok(p) => p,
        Err(err) => return err,
    };
    let mut d = platform.discovery();
    if let Some(limits) = &req.limits {
        d = d.limits(limits.to_query_limits());
    }
    let generation = backend.generation();
    let groups: Vec<Vec<&str>> =
        req.conditions.iter().map(|g| g.iter().map(String::as_str).collect()).collect();
    let refs: Vec<&[&str]> = groups.iter().map(Vec::as_slice).collect();
    match d.search(&refs) {
        Ok(df) => query_response(request_id, df, generation, started),
        Err(e) => lids_error_response(request_id, &e),
    }
}
