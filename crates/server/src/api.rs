//! The `lids-api/v1` wire protocol: typed serde structs shared by the
//! server and the blocking client, so both sides speak the same schema
//! and a protocol change is a type change, not a string drift.
//!
//! Every response carries the `api` version tag and the server-assigned
//! `request_id` (for correlating client observations with server-side
//! metrics/logs). Read responses also carry the store snapshot
//! `generation` they were answered from — the client-side handle for
//! snapshot-isolation assertions: generations are monotone per
//! connection-free server, and a whole ingest batch publishes as one
//! generation bump, so a client can detect torn reads without any
//! server cooperation.

use kglids::{DataFrame, EvalOptions, QueryLimits};
use serde::{Deserialize, Serialize};
use std::time::Duration;

/// Version tag stamped on every response.
pub const API_VERSION: &str = "lids-api/v1";

/// Per-request resource-governance limits — the wire form of
/// [`QueryLimits`] plus the graceful-degradation row cap. All fields
/// optional; unset limits fall back to the server's platform guardrails.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct WireLimits {
    /// Wall-clock deadline in milliseconds.
    pub deadline_ms: Option<u64>,
    /// Logical memory budget in bytes.
    pub memory_budget_bytes: Option<u64>,
    /// Row cap: intermediate binding sets larger than this are truncated
    /// (the response is marked `truncated`) rather than failed.
    pub row_cap: Option<u64>,
}

impl WireLimits {
    /// The in-process [`QueryLimits`] these wire limits express.
    pub fn to_query_limits(&self) -> QueryLimits {
        QueryLimits {
            deadline: self.deadline_ms.map(Duration::from_millis),
            memory_budget_bytes: self.memory_budget_bytes,
            ..QueryLimits::default()
        }
    }

    /// The [`EvalOptions`] these wire limits express (for the ad-hoc
    /// query path, which takes options rather than limits).
    pub fn to_eval_options(&self) -> EvalOptions {
        EvalOptions {
            deadline: self.deadline_ms.map(Duration::from_millis),
            memory_budget: self.memory_budget_bytes,
            row_cap: self.row_cap.map(|c| c as usize),
            ..EvalOptions::default()
        }
    }
}

/// `POST /v1/query` — ad-hoc SPARQL.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct QueryRequest {
    pub query: String,
    pub limits: Option<WireLimits>,
}

/// Rows answering a query or search: the wire form of a [`DataFrame`].
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct QueryResponse {
    pub api: String,
    pub request_id: String,
    pub columns: Vec<String>,
    pub rows: Vec<Vec<String>>,
    /// True when graceful degradation truncated the result.
    pub truncated: bool,
    /// Store-snapshot generation the query executed against.
    pub generation: u64,
    /// Server-side wall time for the request, microseconds.
    pub elapsed_us: u64,
}

impl QueryResponse {
    /// The response rows as the in-process [`DataFrame`] they came from.
    pub fn to_dataframe(&self) -> DataFrame {
        DataFrame {
            columns: self.columns.clone(),
            rows: self.rows.clone(),
            truncated: self.truncated,
        }
    }
}

/// `POST /v1/explain` — instrumented evaluation.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct ExplainRequest {
    pub query: String,
}

/// One triple pattern of an explain plan.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct WirePattern {
    pub pattern: String,
    pub estimated_rows: u64,
    pub actual_rows: u64,
    pub scans: u64,
    pub order: Option<u64>,
    pub operator: Option<String>,
    pub satisfiable: bool,
}

/// `POST /v1/explain` response: the executed plan.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct ExplainResponse {
    pub api: String,
    pub request_id: String,
    pub reorder_joins: bool,
    pub rows: u64,
    pub wall_secs: f64,
    pub patterns: Vec<WirePattern>,
    pub decoded_terms: u64,
    pub parallel_joins: u64,
    pub serial_joins: u64,
    pub merge_joins: u64,
    pub probe_joins: u64,
    pub leapfrog_joins: u64,
    pub truncated: bool,
}

/// `POST /v1/discovery/unionable-tables` and `/joinable-tables`.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct TableHitsRequest {
    pub dataset: String,
    pub table: String,
    /// Keep at most `k` hits (server default 10).
    pub k: Option<u64>,
    /// Drop hits scoring below this floor.
    pub min_score: Option<f64>,
    /// Similarity mode: `"content-and-label"`, `"content-only"`, or
    /// `"label-only"` (unionable-tables only; joinable is content-only
    /// by definition).
    pub mode: Option<String>,
    pub limits: Option<WireLimits>,
}

/// One scored table hit.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct WireTableHit {
    pub dataset: String,
    pub table: String,
    pub score: f64,
}

/// Ranked hits answering a discovery search.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct TableHitsResponse {
    pub api: String,
    pub request_id: String,
    pub hits: Vec<WireTableHit>,
    pub generation: u64,
    pub elapsed_us: u64,
}

/// `POST /v1/discovery/paths` — join paths between two tables.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct PathsRequest {
    pub from_dataset: String,
    pub from_table: String,
    pub to_dataset: String,
    pub to_table: String,
    /// Maximum intermediate joins (server default 2).
    pub hops: Option<u64>,
    /// When true, return only the BFS-shortest path.
    pub shortest: Option<bool>,
    pub limits: Option<WireLimits>,
}

/// One join path (table names, endpoints included).
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct WireJoinPath {
    pub tables: Vec<String>,
}

/// Join paths answering a path-discovery request.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct PathsResponse {
    pub api: String,
    pub request_id: String,
    pub paths: Vec<WireJoinPath>,
    pub generation: u64,
    pub elapsed_us: u64,
}

/// `POST /v1/discovery/search` — §5 keyword table search. The outer list
/// is a disjunction of conjunctive keyword groups. Answered with a
/// [`QueryResponse`] (the search result is a DataFrame).
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct SearchRequest {
    pub conditions: Vec<Vec<String>>,
    pub limits: Option<WireLimits>,
}

/// Every non-2xx response: the platform's typed error on the wire.
/// `error` is the stable [`kglids::ErrorKind`] name; `status` repeats the
/// HTTP status so the body alone is self-describing.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct ErrorResponse {
    pub api: String,
    pub request_id: String,
    pub error: String,
    pub message: String,
    pub status: u64,
}

/// `GET /healthz`.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct HealthResponse {
    pub api: String,
    pub status: String,
    pub generation: u64,
    pub triples: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wire_limits_round_trip_and_defaults() {
        let limits = WireLimits {
            deadline_ms: Some(250),
            memory_budget_bytes: None,
            row_cap: Some(1000),
        };
        let json = serde_json::to_string(&limits).unwrap();
        let back: WireLimits = serde_json::from_str(&json).unwrap();
        assert_eq!(back, limits);
        // missing fields deserialize to None
        let sparse: WireLimits = serde_json::from_str("{\"deadline_ms\": 5}").unwrap();
        assert_eq!(sparse.deadline_ms, Some(5));
        assert_eq!(sparse.memory_budget_bytes, None);
        assert_eq!(sparse.row_cap, None);
        let q = limits.to_query_limits();
        assert_eq!(q.deadline, Some(Duration::from_millis(250)));
        assert_eq!(q.memory_budget_bytes, None);
        let o = limits.to_eval_options();
        assert_eq!(o.row_cap, Some(1000));
    }

    #[test]
    fn query_request_requires_query_field() {
        let ok: QueryRequest = serde_json::from_str("{\"query\": \"ASK {}\"}").unwrap();
        assert_eq!(ok.query, "ASK {}");
        assert!(ok.limits.is_none());
        // a body without `query` is a schema violation, not an empty query
        assert!(serde_json::from_str::<QueryRequest>("{\"limits\": {}}").is_err());
    }

    #[test]
    fn query_response_round_trips_dataframe() {
        let resp = QueryResponse {
            api: API_VERSION.into(),
            request_id: "req-1".into(),
            columns: vec!["a".into(), "b".into()],
            rows: vec![vec!["1".into(), "x".into()], vec!["2".into(), String::new()]],
            truncated: false,
            generation: 7,
            elapsed_us: 42,
        };
        let json = serde_json::to_string(&resp).unwrap();
        let back: QueryResponse = serde_json::from_str(&json).unwrap();
        assert_eq!(back, resp);
        let df = back.to_dataframe();
        assert_eq!(df.get(1, "a"), Some("2"));
        assert_eq!(df.len(), 2);
    }

    #[test]
    fn error_response_carries_kind_name() {
        let err = ErrorResponse {
            api: API_VERSION.into(),
            request_id: "req-9".into(),
            error: "SparqlError".into(),
            message: "parse error at byte 0".into(),
            status: 400,
        };
        let json = serde_json::to_string(&err).unwrap();
        assert!(json.contains("\"SparqlError\""));
        let back: ErrorResponse = serde_json::from_str(&json).unwrap();
        assert_eq!(back.status, 400);
    }

    #[test]
    fn discovery_requests_round_trip() {
        let req = TableHitsRequest {
            dataset: "census".into(),
            table: "people".into(),
            k: Some(5),
            min_score: Some(0.25),
            mode: Some("content-only".into()),
            limits: Some(WireLimits { deadline_ms: Some(100), ..WireLimits::default() }),
        };
        let back: TableHitsRequest =
            serde_json::from_str(&serde_json::to_string(&req).unwrap()).unwrap();
        assert_eq!(back, req);

        let paths = PathsRequest {
            from_dataset: "a".into(),
            from_table: "t1".into(),
            to_dataset: "b".into(),
            to_table: "t2".into(),
            hops: Some(3),
            shortest: Some(true),
            limits: None,
        };
        let back: PathsRequest =
            serde_json::from_str(&serde_json::to_string(&paths).unwrap()).unwrap();
        assert_eq!(back, paths);

        let search = SearchRequest {
            conditions: vec![vec!["heart".into(), "failure".into()], vec!["patients".into()]],
            limits: None,
        };
        let back: SearchRequest =
            serde_json::from_str(&serde_json::to_string(&search).unwrap()).unwrap();
        assert_eq!(back, search);
    }
}
