//! Root re-export crate: one `use kglids_repro::…` namespace for the
//! examples and cross-crate integration tests.

pub use kglids;
pub use lids_automl as automl;
pub use lids_baselines as baselines;
pub use lids_datagen as datagen;
pub use lids_embed as embed;
pub use lids_exec as exec;
pub use lids_gnn as gnn;
pub use lids_kg as kg;
pub use lids_ml as ml;
pub use lids_obs as obs;
pub use lids_profiler as profiler;
pub use lids_py as py;
pub use lids_rdf as rdf;
pub use lids_sparql as sparql;
pub use lids_vector as vector;
