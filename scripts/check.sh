#!/usr/bin/env bash
# Full local gate: release build, tests (incl. the chaos suite), lint-clean
# clippy, and a guard against new unwrap/expect in fault-tolerant crates.
# Run from anywhere; operates on the workspace root.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release --workspace
cargo test -q --workspace
cargo test -q --test chaos
cargo clippy --workspace --all-targets -- -D warnings

# The ingestion-path crates deny unwrap/expect outside tests; make sure the
# crate-root opt-ins are still in place so clippy keeps enforcing it.
for crate in exec profiler pyast core; do
  lib="crates/${crate}/src/lib.rs"
  if ! grep -q "deny(clippy::unwrap_used" "$lib"; then
    echo "error: ${lib} dropped the unwrap_used/expect_used deny opt-in" >&2
    exit 1
  fi
done

echo "all checks passed"
