#!/usr/bin/env bash
# Full local gate: release build, tests, and lint-clean clippy.
# Run from anywhere; operates on the workspace root.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release --workspace
cargo test -q --workspace
cargo clippy --workspace --all-targets -- -D warnings
