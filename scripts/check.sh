#!/usr/bin/env bash
# Full local gate: release build, tests (incl. the chaos suite), lint-clean
# clippy, and a guard against new unwrap/expect in fault-tolerant crates.
# Run from anywhere; operates on the workspace root.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release --workspace
cargo test -q --workspace
cargo test -q --test chaos
# Exact-vs-pruned linking must agree edge for edge, score for score.
cargo test -q --test linking_differential
# Incremental maintenance must be exact: any interleaving of apply_delta
# adds/removals equals a from-scratch bootstrap of the surviving lake,
# retraction restores the never-ingested baseline, and live readers see
# whole deltas or nothing (a reader spinning on torn state would hang,
# which the timeout turns into a failure).
timeout 600 cargo test -q --release --test incremental_differential
# Bulk loading must be indistinguishable from sequential insertion:
# identical quad sets, identical insert-order-dense TermId assignment.
cargo test -q -p lids-rdf --test bulk_load_differential
# Span tree, explain cardinalities, and the <10% instrumentation budget.
cargo test -q --test observability
# Vectorized operators (probe/merge/leapfrog) and the plan cache must agree
# with the reference evaluator row for row, including star shapes and
# OPTIONAL, and identical query shapes must parse exactly once.
cargo test -q -p lids-sparql --test encoded_vs_reference
cargo test -q -p lids-sparql plan::
# Query-governance chaos suite under a hard external bound: adversarial
# workloads must terminate with typed errors or truncated partials; a hang
# here is a governance regression and the timeout turns it into a failure.
timeout 600 cargo test -q --release --test query_chaos
# Snapshot-isolation suite under a hard external bound: frozen-snapshot
# proptests, the concurrent reader/writer stress loop (a deadlock or a
# reader spinning on torn state would hang, which the timeout turns into
# a failure), and the stale-generation plan-cache regression.
timeout 300 cargo test -q --release --test snapshot_isolation
# Server end-to-end suite on real ephemeral-port sockets: HTTP answers
# byte-equal the in-process API, every failure is a typed 4xx/5xx JSON
# error, shutdown drains, and live-ingest clients see whole batches. A
# hung connection would hang the suite; the timeout turns it into a
# failure.
timeout 300 cargo test -q --release --test server_e2e
cargo clippy --workspace --all-targets -- -D warnings

# Smoke-run the linking benchmark: both modes complete, edge sets match
# (asserted inside the binary), and the report is well-formed JSON with the
# fields EXPERIMENTS.md cites.
smoke_out="$(mktemp)"
target/release/linking_schema --smoke --out "$smoke_out" >/dev/null
python3 - "$smoke_out" <<'EOF'
import json, sys
with open(sys.argv[1]) as f:
    report = json.load(f)
assert report["bench"] == "linking_schema", report
assert report["smoke"] is True, report
for mode in ("exact", "pruned"):
    stats = report[mode]
    for field in ("content_secs", "label_secs", "pairs_compared",
                  "candidates_generated", "pairs_pruned", "content_edges",
                  "label_edges", "triples"):
        assert field in stats, (mode, field)
assert report["exact"]["content_edges"] == report["pruned"]["content_edges"]
assert report["content_speedup"] > 0
print("linking_schema smoke report ok")
EOF
rm -f "$smoke_out"

# Smoke-run the delta benchmark: a one-dataset delta into a bootstrapped
# lake must produce a store identical to a full rebuild (asserted inside
# the binary and re-checked here), cost no more than the rebuild, and
# retraction must restore the never-ingested baseline.
delta_out="$(mktemp)"
timeout 300 target/release/delta_bench --smoke --out "$delta_out" >/dev/null
python3 - "$delta_out" <<'EOF'
import json, sys
with open(sys.argv[1]) as f:
    report = json.load(f)
assert report["bench"] == "delta_bench", report
assert report["smoke"] is True, report
assert report["identical"] is True, report
assert report["delta_speedup"] >= 1.0, report["delta_speedup"]
assert report["delta_columns"] > 0, report
retraction = report["retraction"]
assert retraction["identical"] is True, retraction
assert retraction["quads_retracted"] > 0, retraction
print("delta_bench smoke report ok (speedup %.1fx, %d quads retracted)"
      % (report["delta_speedup"], retraction["quads_retracted"]))
EOF
rm -f "$delta_out"

# Smoke-run the observability benchmark: the embedded metrics snapshot must
# carry the lids-obs/v1 schema, the bootstrap counters, and histograms whose
# bucket boundaries are strictly monotone.
obs_out="$(mktemp)"
target/release/obs_bench --smoke --out "$obs_out" >/dev/null
python3 - "$obs_out" <<'EOF'
import json, sys
with open(sys.argv[1]) as f:
    report = json.load(f)
assert report["bench"] == "observability", report
assert report["smoke"] is True, report
assert report["overhead_ratio"] > 0, report
snap = report["snapshot"]
assert snap["schema"] == "lids-obs/v1", snap.get("schema")
metrics = snap["metrics"]
for section in ("counters", "gauges", "histograms"):
    assert section in metrics, section
counters = metrics["counters"]
for key in ("bootstrap.triples", "bootstrap.columns_profiled", "query.count"):
    assert key in counters and counters[key] > 0, key
assert "memory.peak_bytes" in metrics["gauges"]
histograms = metrics["histograms"]
assert "query.wall_us" in histograms, sorted(histograms)
for name, hist in histograms.items():
    assert hist["count"] > 0, name
    les = [b["le"] for b in hist["buckets"]]
    assert les == sorted(set(les)), f"{name}: non-monotone buckets {les}"
print("obs_bench smoke report ok")
EOF
rm -f "$obs_out"

# Smoke-run the ingest benchmark: sequential and bulk loaders both complete
# on the synthetic lake batch, the stores are bit-identical (asserted inside
# the binary), and bulk loading is at least as fast as sequential insertion.
ingest_out="$(mktemp)"
target/release/ingest_bench --smoke --out "$ingest_out" >/dev/null
python3 - "$ingest_out" <<'EOF'
import json, sys
with open(sys.argv[1]) as f:
    report = json.load(f)
assert report["bench"] == "ingest", report
assert report["smoke"] is True, report
assert report["quads"] > 0, report
assert report["quads_added"] > 0, report
assert report["identical"] is True, report
assert report["speedup"] >= 1.0, report["speedup"]
for field in ("extract_secs", "encode_secs", "index_secs"):
    assert field in report["phases"], field
print("ingest_bench smoke report ok (speedup %.2fx)" % report["speedup"])
EOF
rm -f "$ingest_out"

# Smoke-run the SPARQL execution benchmark: all three legs (row-at-a-time,
# vectorized, cached plan) complete with exact row parity (asserted inside
# the binary), the vectorized and cached paths are at least as fast as the
# row engine, and the plan cache parsed the query exactly once.
sparql_out="$(mktemp)"
target/release/sparql_bench --smoke --out "$sparql_out" >/dev/null
python3 - "$sparql_out" <<'EOF'
import json, sys
with open(sys.argv[1]) as f:
    report = json.load(f)
assert report["bench"] == "sparql", report
assert report["smoke"] is True, report
assert report["rows"] > 0, report
assert report["parity"] is True, report
for field in ("row_secs", "vectorized_secs", "cached_secs"):
    assert report[field] > 0, field
assert report["speedup_vectorized"] >= 1.0, report["speedup_vectorized"]
assert report["speedup_cached"] >= 1.0, report["speedup_cached"]
assert report["plan_cache_parses"] == 1, report["plan_cache_parses"]
assert report["plan_cache_hits"] >= report["iters"], report
print("sparql_bench smoke report ok (vectorized %.2fx, cached %.2fx)"
      % (report["speedup_vectorized"], report["speedup_cached"]))
EOF
rm -f "$sparql_out"

# Smoke-run the governor benchmark: every adversarial case must terminate
# (typed governed error, truncated partial, or completion) with zero panics
# and zero hard-wall breaches, and the armed-but-generous governor must not
# meaningfully slow the representative discovery query.
governor_out="$(mktemp)"
target/release/governor_bench --smoke --out "$governor_out" >/dev/null
python3 - "$governor_out" <<'EOF'
import json, sys
with open(sys.argv[1]) as f:
    report = json.load(f)
assert report["bench"] == "governor", report
assert report["smoke"] is True, report
assert report["cases"] > 0, report
assert report["terminated"] == report["cases"], report
assert report["aborts"] == 0, report
assert report["typed_errors"] + report["completed"] == report["cases"], report
assert report["max_case_secs"] < 10.0, report["max_case_secs"]
# smoke runs are noisy; this is a sanity bound, the tight 5% acceptance
# bound is checked on the full-scale run
assert report["overhead_ratio"] < 1.5, report["overhead_ratio"]
print("governor smoke report ok (%d/%d terminated, overhead %.2fx)"
      % (report["terminated"], report["cases"], report["overhead_ratio"]))
EOF
rm -f "$governor_out"

# Smoke-run the serving benchmark: reader threads answer through store
# snapshots while a writer streams batches; the report must carry a p99
# per config cell, exact parity against the single-threaded oracle, and
# zero torn reads (the binary itself exits non-zero on either failure).
serving_out="$(mktemp)"
target/release/serving_bench --smoke --out "$serving_out" >/dev/null
python3 - "$serving_out" <<'EOF'
import json, sys
with open(sys.argv[1]) as f:
    report = json.load(f)
assert report["bench"] == "serving", report
assert report["smoke"] is True, report
assert report["parity"] is True, report
assert report["torn_reads"] == 0, report
assert report["base_quads"] > 0, report
assert report["configs"], "no configs measured"
writer_cells = 0
for cfg in report["configs"]:
    for field in ("threads", "writer", "ops", "qps", "p50_us", "p99_us"):
        assert field in cfg, (field, cfg)
    assert cfg["ops"] > 0, cfg
    assert cfg["p99_us"] >= cfg["p50_us"], cfg
    assert cfg["parity"] is True, cfg
    if cfg["writer"]:
        writer_cells += 1
        assert cfg["batches_committed"] > 0, cfg
assert writer_cells > 0, "no writer-on cells measured"
print("serving_bench smoke report ok (%d configs, parity, 0 torn reads)"
      % len(report["configs"]))
EOF
rm -f "$serving_out"

# Refresh the committed serving report from the smoke run if the full-scale
# file is missing (full-scale runs overwrite it directly).
if [ ! -f BENCH_serving.json ]; then
  target/release/serving_bench --smoke >/dev/null
fi

# Smoke-run the network serving benchmark: client threads drive the HTTP
# server over real sockets while a writer streams batches; every cell must
# report a p99 and parity (HTTP rows == in-process == oracle replay, all
# asserted inside the binary) with zero torn reads over the wire.
net_out="$(mktemp)"
timeout 120 target/release/serving_net_bench --smoke --out "$net_out" >/dev/null
python3 - "$net_out" <<'EOF'
import json, sys
with open(sys.argv[1]) as f:
    report = json.load(f)
assert report["bench"] == "serving_net", report
assert report["smoke"] is True, report
assert report["parity"] is True, report
assert report["torn_reads"] == 0, report
assert report["configs"], "no configs measured"
for cfg in report["configs"]:
    for field in ("threads", "ops", "qps", "p50_us", "p99_us", "batches_committed"):
        assert field in cfg, (field, cfg)
    assert cfg["ops"] > 0, cfg
    assert cfg["p99_us"] >= cfg["p50_us"], cfg
    assert cfg["parity"] is True, cfg
    assert cfg["batches_committed"] > 0, cfg
print("serving_net_bench smoke report ok (%d cells, parity, 0 torn reads)"
      % len(report["configs"]))
EOF
rm -f "$net_out"

# Refresh the committed network serving report if the full-scale file is
# missing (full-scale runs overwrite it directly).
if [ ! -f BENCH_net.json ]; then
  timeout 120 target/release/serving_net_bench --smoke >/dev/null
fi

# Validate the committed BENCH_net.json: p99 per cell, parity, 0 torn reads.
python3 - BENCH_net.json <<'EOF'
import json, sys
with open(sys.argv[1]) as f:
    report = json.load(f)
assert report["bench"] == "serving_net", report
assert report["parity"] is True, report
assert report["torn_reads"] == 0, report
for cfg in report["configs"]:
    assert "p99_us" in cfg and cfg["p99_us"] > 0, cfg
    assert cfg["parity"] is True, cfg
print("BENCH_net.json ok (%d cells)" % len(report["configs"]))
EOF

# Server smoke over a real socket: start the demo server on an ephemeral
# port under a hard timeout, then drive healthz + one query + metrics from
# an independent HTTP client (python3 http.client; curl is not in the
# container). The request counter in /metrics proves the server-side obs
# registry saw the same requests.
serve_log="$(mktemp)"
timeout 90 target/release/lids_serve --duration-ms 30000 >"$serve_log" 2>/dev/null &
serve_pid=$!
addr=""
for _ in $(seq 100); do
  addr="$(sed -n 's/^lids-server listening on //p' "$serve_log" | head -1)"
  [ -n "$addr" ] && break
  sleep 0.1
done
[ -n "$addr" ] || { echo "error: lids_serve never reported its address" >&2; exit 1; }
python3 - "$addr" <<'EOF'
import json, sys, http.client
conn = http.client.HTTPConnection(sys.argv[1], timeout=15)
conn.request("GET", "/healthz")
r = conn.getresponse(); health = json.loads(r.read())
assert r.status == 200 and health["status"] == "ok", health
assert health["api"] == "lids-api/v1" and health["triples"] > 0, health
body = json.dumps({"query":
    "PREFIX k: <http://kglids.org/ontology/> SELECT ?t WHERE { ?t a k:Table . }"})
conn.request("POST", "/v1/query", body, {"Content-Type": "application/json"})
r = conn.getresponse(); q = json.loads(r.read())
assert r.status == 200 and q["api"] == "lids-api/v1", q
assert len(q["rows"]) > 0 and q["generation"] > 0, q
conn.request("GET", "/metrics")
r = conn.getresponse(); m = json.loads(r.read())
assert r.status == 200 and m["schema"] == "lids-obs/v1", m
assert m["metrics"]["counters"]["server.requests"] >= 2, m["metrics"]["counters"]
print("server socket smoke ok (%d triples, %d rows)"
      % (health["triples"], len(q["rows"])))
EOF
kill "$serve_pid" 2>/dev/null || true
wait "$serve_pid" 2>/dev/null || true
rm -f "$serve_log"

# The ingestion-path and query-path crates deny unwrap/expect outside tests;
# make sure the crate-root opt-ins are still in place so clippy keeps
# enforcing it.
for lib in crates/{exec,profiler,pyast,core,sparql,rdf,server}/src/lib.rs \
           crates/kg/src/incremental.rs; do
  if ! grep -q "deny(clippy::unwrap_used" "$lib"; then
    echo "error: ${lib} dropped the unwrap_used/expect_used deny opt-in" >&2
    exit 1
  fi
done

echo "all checks passed"
