//! Query-governance chaos suite: run seeded adversarial SPARQL workloads
//! (cross-product stars, unbound-everything scans, deep OPTIONAL towers)
//! against a governed platform and assert the robustness contract:
//!
//! - every adversarial query terminates within its deadline with either a
//!   typed resource error or a truncated partial result — never a panic,
//!   abort, or hang;
//! - the store and plan cache are left untouched (read path has no
//!   side effects on data);
//! - a concurrent stream of well-behaved queries completes with exact
//!   results while the adversarial load runs;
//! - (proptest) cancelling at a random governor checkpoint is safe: the
//!   interrupted query either errors `QueryCancelled` or completes, and a
//!   re-run without the governor reproduces the ungoverned baseline.

use std::time::{Duration, Instant};

use kglids_repro::datagen::{AdversarialSuite, LakeSpec};
use kglids_repro::exec::{ErrorKind, LidsError, QueryLimits, TripReason};
use kglids_repro::kglids::{KgLids, KgLidsBuilder, QueryGuardrails};
use kglids_repro::profiler::table::Dataset;
use kglids_repro::rdf::{QuadStore, Term};
use kglids_repro::sparql::{EvalOptions, PlanCache, SparqlError};
use proptest::prelude::*;

const SEED: u64 = 41;
/// Wall-clock ceiling per adversarial query: guardrail deadline (250ms)
/// plus generous slack for checkpoint granularity and CI jitter. This
/// guards against *hangs*, not latency — on a loaded 1-core container
/// the worst adversarial shape has been observed needing >10s of wall
/// time to reach its next checkpoint, so the ceiling is generous.
const HARD_WALL: Duration = Duration::from_secs(60);

fn governed_platform() -> KgLids {
    let lake = LakeSpec::tus_small().scaled(0.15).generate();
    let (platform, _) = KgLidsBuilder::new()
        .with_dataset(Dataset::new(lake.name.clone(), lake.tables))
        .with_query_guardrails(QueryGuardrails {
            deadline: Some(Duration::from_millis(250)),
            memory_budget: Some(1 << 20),
            degraded_row_cap: 500,
            // high threshold: quarantine behaviour has its own test below
            poison_threshold: u32::MAX,
            ..QueryGuardrails::default()
        })
        .bootstrap();
    platform
}

fn is_governed_kind(kind: ErrorKind) -> bool {
    matches!(
        kind,
        ErrorKind::QueryTimeout | ErrorKind::QueryCancelled | ErrorKind::QueryBudgetExceeded
    )
}

#[test]
fn adversarial_queries_terminate_with_typed_errors_or_truncation() {
    let platform = governed_platform();
    let gen_before = platform.store().generation();
    let len_before = platform.store().len();

    let queries = AdversarialSuite::new(SEED).generate(9);
    let mut outcomes = Vec::new();
    for q in &queries {
        let start = Instant::now();
        let result = platform.query(&q.text);
        let elapsed = start.elapsed();
        assert!(
            elapsed < HARD_WALL,
            "{} ran {elapsed:?}, past the hard wall",
            q.name
        );
        match result {
            Ok(df) => {
                // a full answer would be astronomically large for these
                // shapes, so an Ok must be a degraded, capped partial
                assert!(df.truncated, "{} returned Ok without truncation", q.name);
                assert!(df.len() <= 500, "{} exceeded the degraded row cap", q.name);
                outcomes.push("truncated");
            }
            Err(e) => {
                assert!(
                    is_governed_kind(e.kind()),
                    "{} failed with untyped error: {e}",
                    q.name
                );
                outcomes.push("typed-error");
            }
        }
    }
    assert_eq!(outcomes.len(), queries.len());

    // the read path must not have mutated the store
    assert_eq!(platform.store().generation(), gen_before);
    assert_eq!(platform.store().len(), len_before);

    // governance was exercised and exported through obs
    let metrics = platform.obs().metrics.snapshot();
    let trips = metrics.counter("query.timeouts").unwrap_or(0)
        + metrics.counter("query.budget_denials").unwrap_or(0)
        + metrics.counter("query.cancelled").unwrap_or(0);
    assert!(trips >= 1, "no governor trips recorded in obs");
    assert!(metrics.counter("query.count").unwrap_or(0) >= queries.len() as u64);

    // the platform still answers well-behaved queries exactly afterwards
    let benign = platform
        .query(
            "PREFIX k: <http://kglids.org/ontology/> \
             SELECT (COUNT(?t) AS ?n) WHERE { ?t a k:Table . }",
        )
        .expect("benign query after chaos");
    assert!(!benign.truncated);
    assert!(benign.get_f64(0, "n").unwrap_or(0.0) > 10.0);
}

#[test]
fn concurrent_benign_stream_is_unaffected_by_adversarial_load() {
    let platform = governed_platform();
    let benign_q = "PREFIX k: <http://kglids.org/ontology/> \
                    SELECT (COUNT(?t) AS ?n) WHERE { ?t a k:Table . }";
    let expected = platform
        .query(benign_q)
        .expect("benign baseline")
        .get_f64(0, "n")
        .expect("count column");

    std::thread::scope(|scope| {
        let adversary = scope.spawn(|| {
            let queries = AdversarialSuite::new(SEED + 1).generate(6);
            for q in &queries {
                // typed error or truncated partial — both fine; a panic
                // here fails the test via the join below
                let _ = platform.query(&q.text);
            }
        });
        for _ in 0..20 {
            let start = Instant::now();
            let df = platform.query(benign_q).expect("benign stream query");
            // starvation bound: a ~ms query must stay interactive even
            // while the adversarial stream burns its budgets next door
            assert!(
                start.elapsed() < Duration::from_secs(2),
                "benign query starved under adversarial load ({:?})",
                start.elapsed()
            );
            assert!(!df.truncated, "well-behaved query got degraded");
            assert_eq!(df.get_f64(0, "n"), Some(expected));
        }
        adversary.join().expect("adversarial thread panicked");
    });
}

#[test]
fn repeat_offender_shape_is_quarantined_across_formatting_variants() {
    let lake = LakeSpec::tus_small().scaled(0.1).generate();
    let (platform, _) = KgLidsBuilder::new()
        .with_dataset(Dataset::new(lake.name.clone(), lake.tables))
        .with_query_guardrails(QueryGuardrails {
            deadline: Some(Duration::from_millis(250)),
            memory_budget: Some(4 << 10),
            // cap 0: degraded retries return empty truncated results, but
            // every budget trip still counts as an offense
            degraded_row_cap: 0,
            poison_threshold: 2,
            ..QueryGuardrails::default()
        })
        .bootstrap();

    let hostile = "SELECT * WHERE { ?a ?b ?c . ?d ?e ?f . ?g ?h ?i . }";
    // formatting variant of the same shape (extra whitespace)
    let variant = "SELECT *  WHERE  { ?a ?b ?c .  ?d ?e ?f .  ?g ?h ?i . }";

    let mut quarantined = false;
    for _ in 0..4 {
        if let Err(e) = platform.query(hostile) {
            if e.to_string().contains("quarantined") {
                quarantined = true;
                break;
            }
        }
    }
    assert!(quarantined, "repeat offender was never quarantined");

    let err = platform.query(variant).expect_err("variant should be fenced");
    assert_eq!(err.kind(), ErrorKind::QueryBudgetExceeded);
    assert!(err.to_string().contains("quarantined"), "got: {err}");

    let metrics = platform.obs().metrics.snapshot();
    assert!(metrics.counter("query.shapes_poisoned").unwrap_or(0) >= 1);
    assert!(metrics.counter("query.quarantine_denials").unwrap_or(0) >= 1);
}

/// Small dense store for the proptest: adversarial shapes stay tractable
/// ungoverned (the baseline run must finish) while still crossing many
/// governor checkpoints.
fn proptest_store() -> QuadStore {
    let mut store = QuadStore::new();
    for (s, p, o) in AdversarialSuite::new(SEED).dense_triples(3, 1) {
        store.insert_triple(Term::iri(&s), Term::iri(&p), Term::iri(&o));
    }
    store
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Satellite: cancellation safety. Interrupting a query at the Nth
    /// governor checkpoint (fault injection via `cancel_after_checks`)
    /// must yield either a typed `Cancelled` error or — when N exceeds
    /// the query's checkpoint count — the exact result; afterwards the
    /// store generation and plan cache are consistent and a governor-free
    /// re-run reproduces the ungoverned baseline bit for bit.
    #[test]
    fn random_checkpoint_interrupt_is_safe(n in 1u64..64, pick in 0usize..9) {
        let store = proptest_store();
        let gen_before = store.generation();
        let cache = PlanCache::with_capacity(8, 8);

        let queries = AdversarialSuite::new(SEED + 2).generate(9);
        let text = &queries[pick].text;
        let prepared = cache.prepare(text).expect("adversarial query parses");
        let baseline = prepared
            .execute(&store)
            .expect("ungoverned baseline terminates on the small store");

        let limits = QueryLimits { cancel_after_checks: Some(n), ..QueryLimits::default() };
        let governor = limits.arm().expect("fault injection arms the governor");
        let governed =
            prepared.execute_governed(&store, EvalOptions::default(), Some(&governor), None);
        match governed {
            Err(SparqlError::Governed(trip)) => {
                prop_assert_eq!(trip.reason, TripReason::Cancelled);
                let typed: LidsError = SparqlError::Governed(trip).into();
                prop_assert_eq!(typed.kind(), ErrorKind::QueryCancelled);
            }
            Err(other) => prop_assert!(false, "untyped failure: {}", other),
            Ok(s) => {
                // interrupt landed after the last checkpoint: exact result
                prop_assert_eq!(&s.columns, &baseline.columns);
                prop_assert_eq!(s.rows.len(), baseline.rows.len());
                prop_assert!(!s.truncated);
            }
        }

        // no side effects on the store or the cache's integrity
        prop_assert_eq!(store.generation(), gen_before);
        let stats = cache.stats();
        prop_assert!(stats.texts_len <= 8 && stats.shapes_len <= 8);
        prop_assert_eq!(cache.poisoned_len(), 0);

        // a clean re-run through the same cached plan is still exact
        let rerun = prepared.execute(&store).expect("re-run after interrupt");
        prop_assert_eq!(rerun.rows.len(), baseline.rows.len());
        prop_assert_eq!(rerun.rows, baseline.rows);
    }
}
