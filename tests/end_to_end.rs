//! End-to-end integration: bootstrap the platform over a generated lake
//! and pipeline corpus, then exercise every public interface against
//! ground truth and direct store scans.

use kglids_repro::datagen::pipelines::{generate_corpus, CorpusSpec};
use kglids_repro::datagen::LakeSpec;
use kglids_repro::kg::abstraction::PipelineMetadata;
use kglids_repro::kglids::discovery::UnionMode;
use kglids_repro::kglids::{KgLidsBuilder, PipelineScript};
use kglids_repro::ml::precision_recall_at_k;
use kglids_repro::profiler::table::Dataset;
use kglids_repro::rdf::{QuadPattern, Term};

fn lake_platform() -> (
    kglids_repro::datagen::Lake,
    kglids_repro::kglids::KgLids,
) {
    let lake = LakeSpec::tus_small().scaled(0.25).generate();
    let (platform, _) = KgLidsBuilder::new()
        .with_dataset(Dataset::new(lake.name.clone(), lake.tables.clone()))
        .bootstrap();
    (lake, platform)
}

#[test]
fn union_search_beats_chance_on_generated_lake() {
    let (lake, platform) = lake_platform();
    let k = lake.avg_unionable().max(1.0) as usize;
    let mut recall_sum = 0.0;
    for q in &lake.query_tables {
        let retrieved: Vec<String> = platform
            .discovery()
            .k(k)
            .mode(UnionMode::ContentAndLabel)
            .unionable_tables(&lake.name, q)
            .unwrap()
            .into_iter()
            .map(|h| h.table)
            .collect();
        let (_, r) = precision_recall_at_k(&retrieved, &lake.unionable[q], k);
        recall_sum += r;
    }
    let mean_recall = recall_sum / lake.query_tables.len() as f64;
    // families share column names and distributions: recall should be high
    assert!(mean_recall > 0.5, "mean recall {mean_recall}");
}

#[test]
fn sparql_results_match_direct_store_scans() {
    let (_, platform) = lake_platform();
    // count Table-typed nodes two ways
    let via_sparql = platform
        .query(
            "PREFIX k: <http://kglids.org/ontology/> \
             SELECT (COUNT(?t) AS ?n) WHERE { ?t a k:Table . }",
        )
        .unwrap()
        .get_f64(0, "n")
        .unwrap() as usize;
    let via_scan = platform
        .store()
        .match_pattern(
            &QuadPattern::any()
                .with_predicate(Term::iri(
                    "http://www.w3.org/1999/02/22-rdf-syntax-ns#type",
                ))
                .with_object(Term::iri("http://kglids.org/ontology/Table")),
        )
        .count();
    assert_eq!(via_sparql, via_scan);
    assert!(via_scan > 10);
}

#[test]
fn similarity_edges_carry_rdf_star_scores() {
    let (_, platform) = lake_platform();
    let df = platform
        .query(
            "PREFIX k: <http://kglids.org/ontology/> \
             SELECT ?a ?b ?s WHERE { \
                ?a k:hasContentSimilarity ?b . \
                << ?a k:hasContentSimilarity ?b >> k:withCertainty ?s . \
             } LIMIT 20",
        )
        .unwrap();
    assert!(!df.is_empty(), "no annotated similarity edges");
    for i in 0..df.len() {
        let score = df.get_f64(i, "s").unwrap();
        assert!((0.0..=1.0 + 1e-6).contains(&score), "score {score}");
    }
}

#[test]
fn corpus_bootstrap_links_pipelines_to_datasets() {
    let spec = CorpusSpec::synthetic(4, 3, 31);
    let pipelines = generate_corpus(&spec);
    let datasets = lids_bench_free_sketch_tables(&spec);
    let scripts: Vec<PipelineScript> = pipelines
        .iter()
        .map(|p| PipelineScript { metadata: p.metadata.clone(), source: p.source.clone() })
        .collect();
    let (platform, stats) = KgLidsBuilder::new()
        .with_datasets(datasets)
        .with_pipelines(scripts)
        .bootstrap();
    assert_eq!(stats.pipelines_abstracted, 12);
    assert_eq!(stats.pipelines_failed, 0);
    assert!(stats.links.tables_linked > 0, "no table links");
    assert!(stats.links.columns_linked > 0, "no column links");

    // every pipeline is its own named graph
    assert_eq!(platform.store().named_graphs().len(), 12);

    // the Figure 4 query works and pandas dominates
    let libs = platform.get_top_k_libraries_used(10);
    assert_eq!(libs.get(0, "library"), Some("pandas"));
    assert_eq!(libs.get_f64(0, "pipelines"), Some(12.0));
}

/// Local copy of the bench helper (integration tests avoid dev-only deps).
fn lids_bench_free_sketch_tables(spec: &CorpusSpec) -> Vec<Dataset> {
    use kglids_repro::profiler::table::{Column, Table};
    spec.datasets
        .iter()
        .map(|sketch| {
            let tables = sketch
                .tables
                .iter()
                .map(|(name, columns)| {
                    let cols = columns
                        .iter()
                        .enumerate()
                        .map(|(j, cname)| {
                            let values: Vec<String> = (0..30)
                                .map(|i| {
                                    if j == 0 {
                                        format!("c{}", i % 2)
                                    } else {
                                        format!("{:.2}", (i * (j + 2)) as f64 * 0.3)
                                    }
                                })
                                .collect();
                            Column::new(cname.clone(), values)
                        })
                        .collect();
                    Table::new(name.clone(), cols)
                })
                .collect();
            Dataset::new(sketch.name.clone(), tables)
        })
        .collect()
}

#[test]
fn automation_round_trip_on_unseen_data() {
    use kglids_repro::ml::MlFrame;
    let spec = CorpusSpec::synthetic(6, 4, 77);
    let pipelines = generate_corpus(&spec);
    let datasets = lids_bench_free_sketch_tables(&spec);
    let scripts: Vec<PipelineScript> = pipelines
        .iter()
        .map(|p| PipelineScript { metadata: p.metadata.clone(), source: p.source.clone() })
        .collect();
    let (mut platform, _) = KgLidsBuilder::new()
        .with_datasets(datasets)
        .with_pipelines(scripts)
        .bootstrap();

    let task = &kglids_repro::datagen::tasks::cleaning_datasets(0.1)[1];
    let frame = MlFrame::from_table(&task.table, &task.target).unwrap();
    assert!(frame.has_missing());
    let ranked = platform.recommend_cleaning_operations(&task.table);
    assert!(!ranked.is_empty());
    let cleaned = platform.apply_cleaning_operations(ranked[0].0, &frame);
    assert!(!cleaned.has_missing());

    let rec = platform.recommend_transformations(&task.table);
    let transformed = platform.apply_transformations(&rec, &cleaned);
    assert_eq!(transformed.rows(), cleaned.rows());

    // AutoML knowledge base harvests estimators from the corpus
    let automl = platform.automl();
    assert!(!automl.is_empty());
    let emb = platform.embed_table(&task.table);
    let result = automl.fit_with_budget(&frame.drop_missing(), &emb, 2, true, 5);
    assert!(result.evaluations <= 2);
    assert!(result.best_f1 >= 0.0);
}

#[test]
fn pipeline_metadata_queryable_by_votes() {
    let md = |id: &str, votes: u32| PipelineMetadata {
        id: id.into(),
        dataset: "d".into(),
        title: id.into(),
        author: "a".into(),
        votes,
        score: 0.5,
        task: "classification".into(),
    };
    let script = |id: &str, votes: u32| PipelineScript {
        metadata: md(id, votes),
        source: "import pandas as pd\ndf = pd.read_csv('d/t.csv')\n".into(),
    };
    let (platform, _) = KgLidsBuilder::new()
        .with_pipelines([script("low", 3), script("high", 300), script("mid", 30)])
        .bootstrap();
    let df = platform
        .query(
            "PREFIX k: <http://kglids.org/ontology/> \
             SELECT ?p ?v WHERE { ?p a k:Pipeline ; k:hasVotes ?v . } ORDER BY DESC(?v)",
        )
        .unwrap();
    assert_eq!(df.len(), 3);
    assert!(df.get(0, "p").unwrap().contains("high"));
    assert_eq!(df.get_f64(0, "v"), Some(300.0));
}
