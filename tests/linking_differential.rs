//! Differential test of the staged similarity engine: for any profile
//! set, pruned linking must emit *exactly* the edge set and RDF-star
//! scores of the exact exhaustive pass. Pruning is a candidate filter,
//! never a semantic gate — α/β/θ decide, in both modes, and both modes
//! score through the same kernel, so the stores must match to the bit.

use kglids_repro::datagen::{synthetic_profiles, ProfileLakeSpec};
use kglids_repro::embed::WordEmbeddings;
use kglids_repro::kg::{build_data_global_schema, LinkingConfig, LinkingMode, SchemaConfig};
use kglids_repro::rdf::QuadStore;

/// Derive a small but structurally varied lake from one seed: every
/// fine-grained type, clustered embeddings, duplicate labels, occasional
/// missing embeddings/ratios.
fn spec_for(seed: u64) -> ProfileLakeSpec {
    ProfileLakeSpec {
        seed,
        tables: 4 + (seed % 13) as usize,
        columns_per_table: 2 + (seed % 4) as usize,
        tables_per_dataset: 1 + (seed % 3) as usize,
        embedding_dim: 16 + (seed % 3) as usize * 16,
        clusters: 1 + (seed % 4) as usize,
        noise: 0.01 + (seed % 5) as f32 * 0.02,
        dominant_share: if seed.is_multiple_of(3) { 0.6 } else { 0.0 },
    }
}

fn build(
    profiles: &[kglids_repro::profiler::ColumnProfile],
    we: &WordEmbeddings,
    linking: LinkingConfig,
) -> (Vec<String>, kglids_repro::kg::SchemaStats) {
    let mut store = QuadStore::new();
    let config = SchemaConfig { linking, ..Default::default() };
    let stats = build_data_global_schema(&mut store, profiles, &config, we);
    let mut quads: Vec<String> = store.iter().map(|q| q.to_string()).collect();
    quads.sort();
    (quads, stats)
}

#[test]
fn pruned_emits_identical_edges_across_100_random_lakes() {
    let we = WordEmbeddings::new();
    for seed in 0..100u64 {
        let profiles = synthetic_profiles(&spec_for(seed));
        let (exact_quads, exact_stats) = build(
            &profiles,
            &we,
            LinkingConfig { mode: LinkingMode::Exact, ..Default::default() },
        );
        // cutoff 0 forces the HNSW / sliding-window candidate paths even
        // on tiny buckets; small init_k stresses the adaptive over-fetch
        let (pruned_quads, pruned_stats) = build(
            &profiles,
            &we,
            LinkingConfig {
                mode: LinkingMode::Pruned,
                bucket_cutoff: 0,
                init_k: 2,
                ..Default::default()
            },
        );
        assert_eq!(
            exact_quads, pruned_quads,
            "seed {seed}: pruned store differs from exact"
        );
        assert_eq!(exact_stats.label_edges, pruned_stats.label_edges, "seed {seed}");
        assert_eq!(exact_stats.content_edges, pruned_stats.content_edges, "seed {seed}");
        assert_eq!(exact_stats.pairs_compared, pruned_stats.pairs_compared, "seed {seed}");
        // counters are consistent: every candidate was an eligible pair,
        // and pruning only ever removes pairs
        assert!(
            pruned_stats.candidates_generated + pruned_stats.pairs_pruned
                <= pruned_stats.pairs_compared,
            "seed {seed}: {pruned_stats:?}"
        );
        assert!(
            pruned_stats.candidates_generated <= exact_stats.candidates_generated,
            "seed {seed}: pruned scored more pairs than exact"
        );
    }
}

#[test]
fn pruned_actually_prunes_on_clustered_lakes() {
    // sanity: on a lake with well-separated clusters the candidate stage
    // must discard a meaningful share of pairs, otherwise the engine is
    // exact-with-extra-steps
    let we = WordEmbeddings::new();
    let profiles = synthetic_profiles(&ProfileLakeSpec {
        seed: 42,
        tables: 24,
        columns_per_table: 6,
        clusters: 6,
        ..Default::default()
    });
    let (_, stats) = build(
        &profiles,
        &we,
        LinkingConfig { mode: LinkingMode::Pruned, bucket_cutoff: 0, ..Default::default() },
    );
    assert!(stats.pairs_pruned > 0, "{stats:?}");
    assert!(stats.pairs_pruned > stats.candidates_generated, "{stats:?}");
}
