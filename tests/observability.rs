//! Observability integration: the explain path reports a complete plan
//! for the discovery star query, the bootstrap span tree reaches
//! `BootstrapStats`, the `lids-obs/v1` snapshot is well-formed, and the
//! instrumented evaluator stays within the overhead budget.

use kglids_repro::kglids::{KgLidsBuilder, PipelineScript, SEARCH_TABLES_QUERY};
use kglids_repro::kg::abstraction::PipelineMetadata;
use kglids_repro::profiler::table::{Column, Dataset, Table};
use kglids_repro::rdf::{Quad, QuadStore, Term};
use kglids_repro::sparql::{evaluate_explained, evaluate_with, parse_query, EvalOptions};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::time::Instant;

fn platform() -> kglids_repro::kglids::KgLids {
    let ages: Vec<String> = (20..50).map(|i| i.to_string()).collect();
    let cities: Vec<String> = (0..30)
        .map(|i| ["London", "Paris", "Tokyo"][i % 3].to_string())
        .collect();
    let script = PipelineScript {
        metadata: PipelineMetadata {
            id: "p1".into(),
            dataset: "health".into(),
            title: "t".into(),
            author: "a".into(),
            votes: 1,
            score: 0.5,
            task: "classification".into(),
        },
        source: "import pandas as pd\ndf = pd.read_csv('health/patients.csv')\n".into(),
    };
    KgLidsBuilder::new()
        .with_datasets([
            Dataset::new(
                "health",
                vec![Table::new(
                    "patients",
                    vec![Column::new("age", ages.clone()), Column::new("city", cities.clone())],
                )],
            ),
            Dataset::new(
                "census",
                vec![Table::new("people", vec![Column::new("age", ages)])],
            ),
        ])
        .with_pipelines([script])
        .bootstrap()
        .0
}

#[test]
fn explain_reports_est_and_actual_for_star_query() {
    let platform = platform();
    let report = platform.explain(SEARCH_TABLES_QUERY).unwrap();
    assert!(!report.patterns.is_empty());
    assert!(report.rows > 0, "star query matched nothing");
    // every triple pattern of the discovery star join reports an estimated
    // AND an actual cardinality, and was actually executed
    for p in &report.patterns {
        assert!(p.satisfiable, "{}", p.pattern);
        assert!(p.order.is_some(), "{} never executed", p.pattern);
        assert!(p.estimated_rows > 0, "{} missing estimate", p.pattern);
        assert!(p.actual_rows > 0, "{} missing actual rows", p.pattern);
    }
    // executed positions are per-BGP, so each is within bounds and the
    // star join's first pattern (position 0) exists
    assert!(report.patterns.iter().any(|p| p.order == Some(0)));
    for p in &report.patterns {
        assert!(p.order.unwrap_or(0) < report.patterns.len());
    }
    // the rendering carries both cardinalities per pattern
    let text = report.to_string();
    assert!(text.contains("est "), "{text}");
    assert!(text.contains("actual "), "{text}");
    // and matches the plain evaluation
    let rows = platform.query(SEARCH_TABLES_QUERY).unwrap().len();
    assert_eq!(report.rows, rows);
}

#[test]
fn operator_and_plan_cache_counters_exported() {
    let platform = platform();
    platform.query(SEARCH_TABLES_QUERY).unwrap();
    let first = platform.plan_cache_stats();
    assert!(first.parses >= 1);
    platform.query(SEARCH_TABLES_QUERY).unwrap();
    let second = platform.plan_cache_stats();
    // second execution of an identical query does zero parse/plan work
    assert_eq!(second.parses, first.parses, "identical query re-parsed");
    assert_eq!(second.compiles, first.compiles, "identical query re-planned");
    assert_eq!(second.hits_text, first.hits_text + 1);

    let metrics = platform.obs().metrics.snapshot();
    // plan-cache gauges carry the cache's monotonic totals
    assert_eq!(metrics.gauge("sparql.plan_cache.parses"), Some(second.parses as f64));
    assert_eq!(metrics.gauge("sparql.plan_cache.hits"), Some(second.hits() as f64));
    // the discovery star join runs on the vectorized operators
    let leapfrog = metrics.counter("query.ops.leapfrog").unwrap_or(0);
    let probe = metrics.counter("query.ops.probe").unwrap_or(0);
    let merge = metrics.counter("query.ops.merge").unwrap_or(0);
    assert!(leapfrog > 0, "star query should leapfrog its root star");
    assert!(leapfrog + probe + merge >= 2);

    // snapshot stability: serializing twice without new queries is
    // byte-identical and carries the new metric families
    let a = platform.obs_snapshot_json();
    let b = platform.obs_snapshot_json();
    assert_eq!(a, b);
    assert!(a.contains("query.ops.leapfrog"));
    assert!(a.contains("sparql.plan_cache.hits"));
}

#[test]
fn explain_labels_operators_for_star_query() {
    let platform = platform();
    let report = platform.explain(SEARCH_TABLES_QUERY).unwrap();
    // every executed pattern carries an operator label
    for p in &report.patterns {
        if p.order.is_some() {
            assert!(p.operator.is_some(), "{} executed without operator", p.pattern);
        }
    }
    assert!(report.leapfrog_joins > 0, "star join should record a leapfrog execution");
    let text = report.to_string();
    assert!(text.contains("leapfrog"), "{text}");
}

#[test]
fn bootstrap_trace_and_snapshot_schema() {
    let ages: Vec<String> = (20..30).map(|i| i.to_string()).collect();
    let (platform, stats) = KgLidsBuilder::new()
        .with_dataset(Dataset::new(
            "d",
            vec![Table::new("t", vec![Column::new("age", ages)])],
        ))
        .bootstrap();
    let root = stats.trace.root("bootstrap").expect("root span");
    assert!(root.closed);
    for stage in ["parse", "profile", "link.schema", "abstract", "link.pipelines", "embed"] {
        assert!(root.child(stage).is_some(), "missing stage span {stage}");
    }
    let json = platform.obs_snapshot_json();
    assert!(json.contains("\"lids-obs/v1\""));
    assert!(json.contains("memory.peak_bytes"));
}

/// Conformance-style corpus: the instrumented evaluator must stay within
/// 10% of the uninstrumented one. Interleaved min-of-N per attempt, with
/// retries, so scheduler noise can't fail the build spuriously.
#[test]
fn instrumentation_overhead_within_budget() {
    let mut rng = SmallRng::seed_from_u64(42);
    let mut store = QuadStore::new();
    for _ in 0..4000 {
        store.insert(&Quad::new(
            Term::iri(format!("s{}", rng.gen_range(0..40))),
            Term::iri(format!("p{}", rng.gen_range(0..4))),
            Term::iri(format!("o{}", rng.gen_range(0..40))),
        ));
    }
    let query = parse_query(
        "SELECT ?x ?y ?z WHERE { ?x <p0> ?y . ?y <p1> ?z . ?z <p2> ?w . }",
    )
    .unwrap();
    // pinned to the row engine the 1.10x budget was calibrated on:
    // vectorized execution shrinks evaluation time, so the (constant)
    // explain-mode costs would dominate the ratio without measuring any
    // new per-row overhead
    let opts = EvalOptions { vectorize: false, ..EvalOptions::default() };
    // warm up both paths once
    let plain_rows = evaluate_with(&store, &query, opts).unwrap().len();
    let (instr, _) = evaluate_explained(&store, &query, opts).unwrap();
    assert_eq!(plain_rows, instr.len());

    let mut best = f64::INFINITY;
    for _attempt in 0..10 {
        let mut plain_min = f64::INFINITY;
        let mut instr_min = f64::INFINITY;
        for i in 0..8 {
            // alternate which path runs first so cache/scheduler effects
            // don't systematically favour one side
            for leg in 0..2 {
                if (i + leg) % 2 == 0 {
                    let t = Instant::now();
                    let s = evaluate_with(&store, &query, opts).unwrap();
                    plain_min = plain_min.min(t.elapsed().as_secs_f64());
                    assert_eq!(s.len(), plain_rows);
                } else {
                    let t = Instant::now();
                    let (s, _) = evaluate_explained(&store, &query, opts).unwrap();
                    instr_min = instr_min.min(t.elapsed().as_secs_f64());
                    assert_eq!(s.len(), plain_rows);
                }
            }
        }
        best = best.min(instr_min / plain_min.max(1e-9));
        if best < 1.10 {
            return;
        }
    }
    panic!("instrumentation overhead {best:.3}x exceeds 1.10x budget");
}
