//! Chaos suite: bootstrap a data lake whose artifacts have been damaged by
//! the seeded fault injector and assert the platform degrades gracefully —
//! it never panics, quarantines exactly the corrupted artifacts with the
//! right error kinds, records queryable provenance, and builds the same
//! graph it would have built from a lake that never contained the damaged
//! artifacts.

use std::collections::{HashMap, HashSet};

use kglids_repro::datagen::faults::{Corruptor, FaultKind};
use kglids_repro::datagen::pipelines::{generate_corpus, CorpusSpec};
use kglids_repro::datagen::LakeSpec;
use kglids_repro::kg::provenance::{push_quarantine, QuarantineRecord, QUARANTINE_GRAPH};
use kglids_repro::kglids::{
    ArtifactKind, IngestOptions, KgLids, KgLidsBuilder, PipelineScript,
};
use kglids_repro::profiler::{write_csv, RawDataset, RawTable};
use kglids_repro::rdf::{GraphName, Quad, QuadStore};

const SEED: u64 = 2024;

/// The lake serialized to raw CSV bytes, plus the pipeline corpus.
fn artifacts() -> (String, Vec<RawTable>, Vec<PipelineScript>) {
    let lake = LakeSpec::tus_small().scaled(0.15).generate();
    let tables: Vec<RawTable> = lake
        .tables
        .iter()
        .map(|t| RawTable::new(t.name.clone(), write_csv(t).into_bytes()))
        .collect();
    let corpus = generate_corpus(&CorpusSpec::synthetic(3, 2, SEED));
    let scripts: Vec<PipelineScript> = corpus
        .iter()
        .map(|p| PipelineScript { metadata: p.metadata.clone(), source: p.source.clone() })
        .collect();
    (lake.name, tables, scripts)
}

/// Deterministic test options: no real sleeping during retries.
fn fast_opts() -> IngestOptions {
    IngestOptions {
        clock: kglids_repro::exec::TestClock::new(),
        ..IngestOptions::default()
    }
}

fn bootstrap(
    lake: &str,
    tables: Vec<RawTable>,
    scripts: Vec<PipelineScript>,
) -> (KgLids, kglids_repro::kglids::BootstrapStats) {
    KgLidsBuilder::new()
        .with_raw_dataset(RawDataset::new(lake, tables))
        .with_pipelines(scripts)
        .with_ingest_options(fast_opts())
        .bootstrap()
}

/// All quads outside the quarantine provenance graph, as sorted strings.
fn content_quads(platform: &KgLids) -> Vec<String> {
    let quarantine = GraphName::named(QUARANTINE_GRAPH);
    let mut quads: Vec<String> = platform
        .store()
        .iter()
        .filter(|q| q.graph != quarantine)
        .map(|q| q.to_string())
        .collect();
    quads.sort();
    quads
}

#[test]
fn corrupted_lake_quarantines_exactly_the_damaged_artifacts() {
    let (lake, clean_tables, clean_scripts) = artifacts();
    assert!(clean_tables.len() > 5, "lake too small for the chaos plan");

    // Damage one table per CSV fault kind (5 distinct kinds) plus one
    // pipeline script (PySyntax) — 6 fault kinds total.
    let mut corruptor = Corruptor::new(SEED);
    let mut tables = clean_tables.clone();
    let mut expected: HashMap<String, FaultKind> = HashMap::new();
    for (slot, kind) in FaultKind::CSV.into_iter().enumerate() {
        let table = &mut tables[slot];
        table.bytes = corruptor.corrupt_csv(&table.bytes, kind);
        expected.insert(format!("{lake}/{}", table.name), kind);
    }
    let mut scripts = clean_scripts.clone();
    scripts[0].source = corruptor.corrupt_py(&scripts[0].source);
    expected.insert(
        format!("{}/{}", scripts[0].metadata.dataset, scripts[0].metadata.id),
        FaultKind::PySyntax,
    );

    let (platform, stats) = bootstrap(&lake, tables, scripts);

    // exactly the corrupted artifacts are quarantined, with the error
    // kind each fault maps to
    let quarantined: HashSet<String> = stats
        .report
        .quarantined
        .iter()
        .map(|e| e.artifact.clone())
        .collect();
    let planted: HashSet<String> = expected.keys().cloned().collect();
    assert_eq!(quarantined, planted);
    for (artifact, fault) in &expected {
        let entry = stats.report.entry(artifact).expect("quarantined");
        assert_eq!(
            entry.error.kind(),
            fault.expected_error(),
            "{artifact} ({fault}): {}",
            entry.error
        );
        let kind = if *fault == FaultKind::PySyntax {
            ArtifactKind::Pipeline
        } else {
            ArtifactKind::Table
        };
        assert_eq!(entry.kind, kind, "{artifact}");
    }
    assert_eq!(stats.pipelines_failed, 1);
    assert_eq!(stats.pipelines_abstracted, clean_scripts.len() - 1);

    // provenance is queryable over SPARQL in the quarantine named graph
    let df = platform
        .query(&format!(
            "PREFIX prov: <http://kglids.org/provenance/> \
             SELECT ?a ?kind WHERE {{ \
                GRAPH <{QUARANTINE_GRAPH}> {{ \
                    ?a a prov:QuarantinedArtifact ; prov:errorKind ?kind . \
                }} \
             }}"
        ))
        .expect("provenance query");
    assert_eq!(df.len(), expected.len());
    let kinds: HashSet<String> = (0..df.len())
        .filter_map(|i| df.get(i, "kind").map(str::to_string))
        .collect();
    assert_eq!(
        kinds,
        HashSet::from([
            "CsvMalformed".to_string(),
            "EncodingError".to_string(),
            "PyParseError".to_string(),
        ])
    );
}

/// The bootstrap path accumulates all quarantine records into one batch
/// and bulk-loads it; the provenance that lands in the store must be
/// exactly what per-record emission would have produced.
#[test]
fn quarantine_provenance_lands_batched_and_complete() {
    let (lake, clean_tables, clean_scripts) = artifacts();
    let mut corruptor = Corruptor::new(SEED + 2);
    let mut tables = clean_tables.clone();
    for (slot, kind) in FaultKind::CSV.into_iter().enumerate() {
        tables[slot].bytes = corruptor.corrupt_csv(&tables[slot].bytes, kind);
    }
    let mut scripts = clean_scripts.clone();
    scripts[0].source = corruptor.corrupt_py(&scripts[0].source);

    let (platform, stats) = bootstrap(&lake, tables, scripts);
    assert!(!stats.report.quarantined.is_empty());

    // reference: one push_quarantine batch over the report, bulk-loaded
    // into a fresh store — the same call sequence bootstrap uses
    let mut batch: Vec<Quad> = Vec::new();
    for entry in &stats.report.quarantined {
        push_quarantine(
            &mut batch,
            &QuarantineRecord {
                artifact_id: &entry.artifact,
                artifact_kind: entry.kind.name(),
                error: &entry.error,
                retries: entry.retries,
            },
        );
    }
    assert_eq!(batch.len(), stats.report.quarantined.len() * 5);
    let mut reference = QuadStore::new();
    reference.extend(batch);

    let quarantine = GraphName::named(QUARANTINE_GRAPH);
    let mut stored: Vec<String> = platform
        .store()
        .iter()
        .filter(|q| q.graph == quarantine)
        .map(|q| q.to_string())
        .collect();
    stored.sort();
    let mut expected: Vec<String> = reference.iter().map(|q| q.to_string()).collect();
    expected.sort();
    assert_eq!(stored, expected);
}

#[test]
fn corrupted_bootstrap_equals_clean_bootstrap_minus_quarantined() {
    let (lake, clean_tables, clean_scripts) = artifacts();

    let mut corruptor = Corruptor::new(SEED + 1);
    let mut tables = clean_tables.clone();
    let mut dropped_tables: HashSet<String> = HashSet::new();
    for (slot, kind) in FaultKind::CSV.into_iter().enumerate() {
        let table = &mut tables[slot];
        table.bytes = corruptor.corrupt_csv(&table.bytes, kind);
        dropped_tables.insert(table.name.clone());
    }
    let mut scripts = clean_scripts.clone();
    scripts[0].source = corruptor.corrupt_py(&scripts[0].source);
    let dropped_pipeline =
        (scripts[0].metadata.dataset.clone(), scripts[0].metadata.id.clone());

    let (corrupted, stats) = bootstrap(&lake, tables, scripts);
    assert_eq!(stats.report.len(), dropped_tables.len() + 1);

    // reference: a lake that never contained the damaged artifacts
    let surviving_tables: Vec<RawTable> = clean_tables
        .iter()
        .filter(|t| !dropped_tables.contains(&t.name))
        .cloned()
        .collect();
    let surviving_scripts: Vec<PipelineScript> = clean_scripts
        .iter()
        .filter(|s| (s.metadata.dataset.as_str(), s.metadata.id.as_str())
            != (dropped_pipeline.0.as_str(), dropped_pipeline.1.as_str()))
        .cloned()
        .collect();
    let (reference, ref_stats) = bootstrap(&lake, surviving_tables, surviving_scripts);
    assert!(ref_stats.report.is_clean());

    assert_eq!(content_quads(&corrupted), content_quads(&reference));
}

#[test]
fn clean_lake_bootstrap_reports_clean() {
    let (lake, tables, scripts) = artifacts();
    let (_, stats) = bootstrap(&lake, tables, scripts);
    assert!(stats.report.is_clean(), "{}", stats.report);
    assert_eq!(stats.pipelines_failed, 0);
    assert!(stats.report.summary().contains("clean"));
}

#[test]
fn every_fault_kind_alone_never_panics_and_quarantines_one_artifact() {
    let (lake, clean_tables, clean_scripts) = artifacts();
    for (i, kind) in FaultKind::ALL.into_iter().enumerate() {
        let mut corruptor = Corruptor::new(100 + i as u64);
        let mut tables = clean_tables.clone();
        let mut scripts = clean_scripts.clone();
        let artifact = if kind == FaultKind::PySyntax {
            scripts[1].source = corruptor.corrupt_py(&scripts[1].source);
            format!("{}/{}", scripts[1].metadata.dataset, scripts[1].metadata.id)
        } else {
            tables[3].bytes = corruptor.corrupt_csv(&tables[3].bytes, kind);
            format!("{lake}/{}", tables[3].name)
        };
        let (_, stats) = bootstrap(&lake, tables, scripts);
        assert_eq!(stats.report.len(), 1, "{kind}");
        let entry = stats.report.entry(&artifact).expect("quarantined");
        assert_eq!(entry.error.kind(), kind.expected_error(), "{kind}");
    }
}
