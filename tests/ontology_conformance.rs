//! Ontology conformance: every predicate and every `rdf:type` object in a
//! bootstrapped LiDS graph must come from the declared LiDS vocabulary
//! (13 classes / 19 object properties / 22 data properties, §2.1) or the
//! RDF/RDFS standard terms. Guards against vocabulary drift as the
//! platform evolves.

use std::collections::HashSet;

use kglids_repro::datagen::pipelines::{generate_corpus, CorpusSpec};
use kglids_repro::kg::ontology::{class, data_prop, object_prop, ONT, RDFS_LABEL, RDF_TYPE};
use kglids_repro::kg::provenance;
use kglids_repro::kglids::{KgLidsBuilder, PipelineScript};
use kglids_repro::profiler::table::{Column, Dataset, Table};
use kglids_repro::profiler::{RawDataset, RawTable};

fn vocabulary() -> (HashSet<String>, HashSet<String>) {
    let mut predicates: HashSet<String> = HashSet::new();
    predicates.insert(RDF_TYPE.to_string());
    predicates.insert(RDFS_LABEL.to_string());
    for p in object_prop::ALL {
        predicates.insert(object_prop::iri(p));
    }
    for p in data_prop::ALL {
        predicates.insert(data_prop::iri(p));
    }
    // quarantine provenance lives in its own namespace, outside the
    // 13/19/22 LiDS ontology
    for p in provenance::prop::ALL {
        predicates.insert(provenance::iri(p));
    }
    let mut classes: HashSet<String> = class::ALL.iter().map(|c| class::iri(c)).collect();
    classes.insert(provenance::iri(provenance::QUARANTINED_ARTIFACT));
    (predicates, classes)
}

#[test]
fn bootstrapped_graph_uses_only_declared_vocabulary() {
    let spec = CorpusSpec::synthetic(3, 3, 5);
    let pipelines = generate_corpus(&spec);
    let datasets: Vec<Dataset> = spec
        .datasets
        .iter()
        .map(|sk| {
            let tables = sk
                .tables
                .iter()
                .map(|(name, cols)| {
                    Table::new(
                        name.clone(),
                        cols.iter()
                            .map(|c| {
                                Column::new(
                                    c.clone(),
                                    (0..12).map(|i| i.to_string()).collect(),
                                )
                            })
                            .collect(),
                    )
                })
                .collect();
            Dataset::new(sk.name.clone(), tables)
        })
        .collect();
    let scripts: Vec<PipelineScript> = pipelines
        .iter()
        .map(|p| PipelineScript { metadata: p.metadata.clone(), source: p.source.clone() })
        .collect();
    // a damaged raw table makes sure quarantine provenance is also
    // covered by the conformance sweep
    let (platform, stats) = KgLidsBuilder::new()
        .with_datasets(datasets)
        .with_raw_dataset(RawDataset::new(
            "damaged",
            vec![RawTable::new("bad", b"a,b\n\"unterminated\n".to_vec())],
        ))
        .with_pipelines(scripts)
        .bootstrap();
    assert_eq!(stats.report.len(), 1, "damaged table quarantined");

    let (predicates, classes) = vocabulary();
    let mut seen_predicates: HashSet<String> = HashSet::new();
    for quad in platform.store().iter() {
        let pred = quad
            .predicate
            .as_iri()
            .unwrap_or_else(|| panic!("non-IRI predicate {:?}", quad.predicate))
            .to_string();
        assert!(
            predicates.contains(&pred),
            "undeclared predicate {pred} on {quad}"
        );
        seen_predicates.insert(pred.clone());
        if pred == RDF_TYPE {
            let ty = quad.object.as_iri().expect("type object is IRI");
            assert!(classes.contains(ty), "undeclared class {ty}");
        }
        // all LiDS IRIs live under the ontology/resource namespaces
        if let Some(iri) = quad.subject.as_iri() {
            assert!(
                iri.starts_with("http://kglids.org/") || iri.starts_with(ONT),
                "foreign subject {iri}"
            );
        }
    }
    // the graph actually exercises a meaningful slice of the vocabulary
    assert!(
        seen_predicates.len() >= 15,
        "only {} predicates used",
        seen_predicates.len()
    );
}

#[test]
fn ontology_counts_match_the_paper() {
    assert_eq!(class::ALL.len(), 13, "13 classes");
    assert_eq!(object_prop::ALL.len(), 19, "19 object properties");
    assert_eq!(data_prop::ALL.len(), 22, "22 data properties");
}
