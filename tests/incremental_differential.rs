//! Differential tests of incremental maintenance: any interleaving of
//! `apply_delta` adds and removals must leave the store bit-identical
//! (decoded quad sets — dictionary ids may differ) to a from-scratch
//! bootstrap of the equivalent final lake. Incremental linking reuses the
//! batch pass's exact kernels behind a lossless triangle-inequality
//! candidate bound, so this holds for every lake, not just easy ones.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use kglids_repro::datagen::{synthetic_profiles, Corruptor, ProfileLakeSpec};
use kglids_repro::embed::WordEmbeddings;
use kglids_repro::kg::abstraction::PipelineMetadata;
use kglids_repro::kg::schema::data_global_schema_quads_seeded;
use kglids_repro::kg::{
    build_data_global_schema, LinkIndex, LinkingConfig, LinkingMode, SchemaConfig,
};
use kglids_repro::kglids::{DeltaBatch, KgLids, KgLidsBuilder, PipelineScript};
use kglids_repro::profiler::table::{Column, Dataset, Table};
use kglids_repro::rdf::QuadStore;

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Sorted decoded quad strings — the dictionary-independent fingerprint.
fn dump(store: &QuadStore) -> Vec<String> {
    let mut quads: Vec<String> = store.iter().map(|q| q.to_string()).collect();
    quads.sort();
    quads
}

fn dump_platform(platform: &KgLids) -> Vec<String> {
    dump(platform.store())
}

/// A small mixed-type dataset: labels drawn from a shared pool so
/// cross-dataset label and content edges actually fire.
fn gen_dataset(name: &str, seed: u64) -> Dataset {
    let mut rng = SmallRng::seed_from_u64(seed);
    let labels = ["age", "height", "name", "active", "score", "city", "id"];
    let tables = (0..2 + (seed % 3) as usize)
        .map(|t| {
            let cols = (0..2 + ((seed + t as u64) % 3) as usize)
                .map(|c| {
                    let label = labels[rng.gen_range(0..labels.len())];
                    let values: Vec<String> = match label {
                        "age" | "id" => {
                            (0..30).map(|_| rng.gen_range(18..90).to_string()).collect()
                        }
                        "height" | "score" => (0..30)
                            .map(|_| format!("{:.2}", rng.gen_range(1.0f64..200.0)))
                            .collect(),
                        "active" => (0..30)
                            .map(|_| if rng.gen_bool(0.5) { "true" } else { "false" }.into())
                            .collect(),
                        _ => (0..30).map(|i| format!("entry {i} of {name}")).collect(),
                    };
                    Column::new(format!("{label}_{c}"), values)
                })
                .collect();
            Table::new(format!("t{t}"), cols)
        })
        .collect();
    Dataset::new(name, tables)
}

fn pipeline_for(dataset: &Dataset, id: &str, score: f64) -> PipelineScript {
    let table = &dataset.tables[0];
    let column = &table.columns[0].name;
    PipelineScript {
        metadata: PipelineMetadata {
            id: id.into(),
            dataset: dataset.name.clone(),
            title: format!("{id} on {}", dataset.name),
            author: "casey".into(),
            votes: 3,
            score,
            task: "classification".into(),
        },
        source: format!(
            "import pandas as pd\ndf = pd.read_csv('{}/{}.csv')\nx = df['{}']\n",
            dataset.name, table.name, column
        ),
    }
}

/// The tentpole guarantee, across 10 random lakes and a nontrivial
/// interleaving: bootstrap {d0,d1,d2} → +d3 → (−d2, +d4) must equal a
/// from-scratch bootstrap of {d0,d1,d3,d4}, with the plan-cache
/// generation bumping exactly once per delta.
#[test]
fn delta_interleavings_match_full_bootstrap() {
    for seed in 0..10u64 {
        let ds: Vec<Dataset> =
            (0..5).map(|i| gen_dataset(&format!("ds{i}"), seed * 31 + i)).collect();
        let pipes: Vec<PipelineScript> = ds
            .iter()
            .enumerate()
            .map(|(i, d)| pipeline_for(d, &format!("p{i}"), 0.5 + i as f64 / 10.0))
            .collect();

        // from-scratch bootstrap of the final lake {d0, d1, d3, d4}
        let (full, _) = KgLidsBuilder::new()
            .with_datasets([ds[0].clone(), ds[1].clone(), ds[3].clone(), ds[4].clone()])
            .with_pipelines([
                pipes[0].clone(),
                pipes[1].clone(),
                pipes[3].clone(),
                pipes[4].clone(),
            ])
            .bootstrap();

        // incremental: {d0, d1, d2} then +d3, then (−d2, +d4)
        let (mut platform, _) = KgLidsBuilder::new()
            .with_datasets([ds[0].clone(), ds[1].clone(), ds[2].clone()])
            .with_pipelines([pipes[0].clone(), pipes[1].clone(), pipes[2].clone()])
            .bootstrap();

        let base = platform.store().generation();
        let d1 = platform.apply_delta(
            DeltaBatch::new().add_dataset(ds[3].clone()).add_pipelines([pipes[3].clone()]),
        );
        assert_eq!(d1.generation, base + 1, "seed {seed}: delta must bump gen once");

        let d2 = platform.apply_delta(
            DeltaBatch::new()
                .remove_dataset("ds2")
                .add_dataset(ds[4].clone())
                .add_pipelines([pipes[4].clone()]),
        );
        assert_eq!(d2.generation, base + 2, "seed {seed}: mixed delta bumps gen once");
        assert_eq!(d2.datasets_removed, 1);
        assert!(d2.quads_retracted > 0, "seed {seed}: removal must retract quads");

        assert_eq!(
            dump_platform(&full),
            dump_platform(&platform),
            "seed {seed}: incremental store differs from full rebuild"
        );

        // an empty delta leaves the generation untouched
        let d3 = platform.apply_delta(DeltaBatch::new());
        assert_eq!(d3.generation, base + 2, "seed {seed}: empty delta must not publish");
    }
}

/// Retraction leaves the store equal to a never-ingested baseline, and no
/// ghost quarantine entries survive — including provenance of artifacts
/// that were quarantined while the dataset was being added.
#[test]
fn retraction_equals_never_ingested_baseline_including_quarantine() {
    let keep = gen_dataset("keep", 7);
    let gone = gen_dataset("gone", 8);
    let keep_pipe = pipeline_for(&keep, "kp", 0.7);
    let gone_pipe = pipeline_for(&gone, "gp", 0.6);
    // a broken pipeline of the doomed dataset: quarantined on add,
    // withdrawn (report + provenance + gauge) on removal
    let mut corruptor = Corruptor::new(99);
    let broken = PipelineScript {
        source: corruptor.corrupt_py(&gone_pipe.source),
        metadata: PipelineMetadata { id: "gp_broken".into(), ..gone_pipe.metadata.clone() },
    };

    let (baseline, _) = KgLidsBuilder::new()
        .with_dataset(keep.clone())
        .with_pipelines([keep_pipe.clone()])
        .bootstrap();

    let (mut platform, _) = KgLidsBuilder::new()
        .with_dataset(keep.clone())
        .with_pipelines([keep_pipe.clone()])
        .bootstrap();
    let added = platform.apply_delta(
        DeltaBatch::new()
            .add_dataset(gone.clone())
            .add_pipelines([gone_pipe.clone(), broken.clone()]),
    );
    assert_eq!(added.pipelines_abstracted, 1);
    assert_eq!(added.pipelines_failed, 1, "broken script quarantined, batch kept");
    assert_eq!(platform.quarantine_report().len(), 1);
    assert_eq!(
        platform.obs().metrics.snapshot().gauge("ingest.quarantine.artifacts"),
        Some(1.0)
    );

    let removed = platform.apply_delta(DeltaBatch::new().remove_dataset("gone"));
    assert!(removed.quads_retracted > 0);
    assert_eq!(
        dump_platform(&baseline),
        dump_platform(&platform),
        "retraction must leave the store equal to a never-ingested baseline"
    );
    // no ghosts: ledger, gauge, and provenance graph are all clean
    assert!(platform.quarantine_report().is_clean());
    assert_eq!(
        platform.obs().metrics.snapshot().gauge("ingest.quarantine.artifacts"),
        Some(0.0)
    );
    assert!(!platform
        .ask(
            "PREFIX p: <http://kglids.org/provenance/> \
             ASK { GRAPH <http://kglids.org/provenance/quarantine> \
             { ?a a p:QuarantinedArtifact . } }"
        )
        .unwrap());
}

/// A syntactically broken script inside a `DeltaBatch` quarantines that
/// script (typed `PyParseError` + provenance quad) without dropping the
/// rest of the batch — `lids_datagen::faults` py-syntax corruption.
#[test]
fn broken_pipeline_in_delta_is_quarantined_without_dropping_batch() {
    let d = gen_dataset("lake", 21);
    let good = pipeline_for(&d, "good", 0.9);
    let mut corruptor = Corruptor::new(4);
    let broken = PipelineScript {
        source: corruptor.corrupt_py(&good.source),
        metadata: PipelineMetadata { id: "bad".into(), ..good.metadata.clone() },
    };

    let (mut platform, _) = KgLidsBuilder::new().bootstrap();
    let stats = platform.apply_delta(
        DeltaBatch::new()
            .add_dataset(d.clone())
            .add_pipelines([good.clone(), broken]),
    );
    assert_eq!(stats.pipelines_abstracted, 1);
    assert_eq!(stats.pipelines_failed, 1);
    assert_eq!(stats.report.quarantined.len(), 1);
    let entry = &stats.report.quarantined[0];
    assert_eq!(entry.artifact, "lake/bad");
    assert_eq!(entry.error.kind(), kglids_repro::exec::ErrorKind::PyParseError);
    // the good pipeline of the same batch made it into the graph...
    assert!(platform
        .ask("PREFIX k: <http://kglids.org/ontology/> ASK { ?p a k:Pipeline . }")
        .unwrap());
    // ...and the failure is recorded as provenance
    assert!(platform
        .ask(
            "PREFIX p: <http://kglids.org/provenance/> \
             ASK { GRAPH <http://kglids.org/provenance/quarantine> \
             { ?a p:errorKind ?k . } }"
        )
        .unwrap());
}

/// Live readers observe whole deltas or nothing: a polling thread must
/// only ever see (base generation, base size) or (base+1, final size),
/// never a torn intermediate.
#[test]
fn readers_see_whole_deltas_or_nothing() {
    let (mut platform, _) =
        KgLidsBuilder::new().with_dataset(gen_dataset("base", 3)).bootstrap();
    let reader = platform.reader();
    let base_gen = reader.snapshot().generation();
    let base_len = reader.snapshot().len();
    let stop = Arc::new(AtomicBool::new(false));
    let poller = {
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            let mut seen = Vec::new();
            while !stop.load(Ordering::Relaxed) {
                let snap = reader.snapshot();
                seen.push((snap.generation(), snap.len()));
            }
            seen
        })
    };
    for i in 0..3 {
        platform.apply_delta(
            DeltaBatch::new().add_dataset(gen_dataset(&format!("extra{i}"), 40 + i)),
        );
    }
    let final_gen = platform.store().generation();
    let final_len = platform.store().len();
    stop.store(true, Ordering::Relaxed);
    let seen = poller.join().expect("poller thread");
    assert_eq!(final_gen, base_gen + 3, "three deltas, three bumps");
    // every observation is a committed delta boundary: generations only
    // ever step by whole deltas, and a given generation always pairs with
    // one single store size
    let mut sizes: std::collections::HashMap<u64, std::collections::HashSet<usize>> =
        Default::default();
    sizes.entry(base_gen).or_default().insert(base_len);
    sizes.entry(final_gen).or_default().insert(final_len);
    for (g, l) in seen {
        assert!((base_gen..=final_gen).contains(&g), "unknown generation {g}");
        sizes.entry(g).or_default().insert(l);
    }
    for (g, ls) in sizes {
        assert_eq!(ls.len(), 1, "generation {g} observed with torn sizes {ls:?}");
    }
}

proptest::proptest! {
    #![proptest_config(proptest::prelude::ProptestConfig::with_cases(12))]

    /// Random interleavings of adds and removals over a pool of datasets:
    /// whatever survives must equal a from-scratch bootstrap of exactly
    /// the surviving set, and every applied (non-empty) delta bumps the
    /// plan-cache generation exactly once.
    #[test]
    fn random_add_remove_sequences_match_bootstrap(
        seed in 0u64..1000,
        ops in proptest::collection::vec((0usize..6, proptest::prelude::any::<bool>()), 1..7),
    ) {
        let pool: Vec<Dataset> =
            (0..6).map(|i| gen_dataset(&format!("pool{i}"), seed * 61 + i)).collect();
        let (mut platform, _) = KgLidsBuilder::new().bootstrap();
        let mut present: Vec<usize> = Vec::new();
        for (idx, add) in ops {
            // re-adding a present dataset is a documented caller error;
            // removing an absent one is a no-op we skip to keep the model
            // aligned — the interleaving itself stays arbitrary.
            let batch = if add && !present.contains(&idx) {
                present.push(idx);
                DeltaBatch::new().add_dataset(pool[idx].clone())
            } else if !add && present.contains(&idx) {
                present.retain(|p| *p != idx);
                DeltaBatch::new().remove_dataset(&pool[idx].name)
            } else {
                continue;
            };
            let before = platform.store().generation();
            let stats = platform.apply_delta(batch);
            proptest::prop_assert_eq!(stats.generation, before + 1);
        }
        let (full, _) = KgLidsBuilder::new()
            .with_datasets(present.iter().map(|i| pool[*i].clone()))
            .bootstrap();
        proptest::prop_assert_eq!(dump_platform(&full), dump_platform(&platform));
    }
}

/// The kg-level engine differential at scale: adopt a seeded batch pass
/// over a large lake (buckets big enough to carry HNSW + cell geometry),
/// then add the held-out tail incrementally — the union of quads must
/// equal a from-scratch batch pass over everything. Exercises the
/// triangle-inequality candidate bound, incremental HNSW inserts, and
/// cell rebuilds, at `bucket_cutoff` 0 (everything pruned) and default.
#[test]
fn link_index_matches_batch_pass_on_large_buckets() {
    let we = WordEmbeddings::new();
    for (seed, cutoff) in [(11u64, 0usize), (12, 0), (13, 192), (14, 8)] {
        let profiles = synthetic_profiles(&ProfileLakeSpec {
            seed,
            tables: 60,
            columns_per_table: 5,
            tables_per_dataset: 3,
            ..Default::default()
        });
        let linking = LinkingConfig {
            mode: LinkingMode::Pruned,
            bucket_cutoff: cutoff,
            init_k: 4,
            ..Default::default()
        };
        let config = SchemaConfig { linking, ..Default::default() };

        // full batch pass over everything
        let mut full = QuadStore::new();
        build_data_global_schema(&mut full, &profiles, &config, &we);

        // batch pass over a prefix, then incremental adds of the tail —
        // split at a table boundary, in several delta-sized chunks
        let split = profiles
            .iter()
            .position(|p| p.meta.table == profiles[profiles.len() * 3 / 4].meta.table)
            .unwrap();
        let mut out = Vec::new();
        let (_, seedling) =
            data_global_schema_quads_seeded(&mut out, &profiles[..split], &config, &we);
        let mut index = LinkIndex::from_seed(seedling, &profiles[..split], config);
        for chunk in profiles[split..].chunks(7) {
            index.add_columns(&mut out, chunk, &we);
        }
        let mut incremental = QuadStore::new();
        incremental.extend(out);

        assert_eq!(
            dump(&full),
            dump(&incremental),
            "seed {seed} cutoff {cutoff}: incremental edges differ from batch"
        );
    }
}
