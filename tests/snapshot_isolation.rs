//! Snapshot-isolation suite for the copy-on-write store (ISSUE 8).
//!
//! Contract under test:
//!
//! - a snapshot taken at any point is *bit-identical* to a frozen copy of
//!   the store at acquisition, no matter what writes happen afterwards;
//! - with no intervening writes, snapshot and live store agree exactly;
//! - concurrent readers under a writing thread never observe torn or
//!   partially-published state: every published snapshot has internally
//!   consistent indexes and corresponds to a committed batch boundary;
//! - `PlanCache` entries compiled against an old snapshot generation are
//!   recompiled (not reused stale) after ingest publishes a new
//!   generation, while the parse is still reused.

use std::collections::BTreeSet;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread;

use kglids_repro::rdf::{Quad, QuadStore, StoreSnapshot, Term};
use kglids_repro::sparql::PlanCache;
use proptest::prelude::*;

/// One step of an interleaved write/snapshot schedule.
#[derive(Debug, Clone)]
enum Op {
    /// Extend with a batch of `n` quads drawn from a small universe.
    Extend(Vec<(u8, u8, u8)>),
    /// Insert a single quad.
    Insert(u8, u8, u8),
    /// Remove a single quad (may be a no-op miss).
    Remove(u8, u8, u8),
    /// Acquire a snapshot and remember what the store looked like.
    Snapshot,
}

fn quad(s: u8, p: u8, o: u8) -> Quad {
    Quad::new(
        Term::iri(format!("urn:s:{s}")),
        Term::iri(format!("urn:p:{p}")),
        Term::iri(format!("urn:o:{o}")),
    )
}

/// The store's logical content as a canonical sorted set.
fn contents(snap: &StoreSnapshot) -> BTreeSet<String> {
    snap.iter().map(|q| format!("{q:?}")).collect()
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        3 => proptest::collection::vec((0u8..6, 0u8..4, 0u8..8), 0..12).prop_map(Op::Extend),
        2 => (0u8..6, 0u8..4, 0u8..8).prop_map(|(s, p, o)| Op::Insert(s, p, o)),
        2 => (0u8..6, 0u8..4, 0u8..8).prop_map(|(s, p, o)| Op::Remove(s, p, o)),
        3 => Just(Op::Snapshot),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// (a) Snapshots are frozen at acquisition: after the whole schedule
    /// runs, every snapshot still matches the deep copy of the store
    /// taken at the same step — writes after acquisition are invisible.
    /// (b) With no writes in between, a snapshot equals the live store.
    #[test]
    fn snapshots_are_frozen_copies(ops in proptest::collection::vec(op_strategy(), 1..40)) {
        let mut store = QuadStore::new();
        // (snapshot, frozen copy of logical contents, generation at acquisition)
        let mut pinned: Vec<(Arc<StoreSnapshot>, BTreeSet<String>, u64)> = Vec::new();
        for op in ops {
            match op {
                Op::Extend(batch) => {
                    store.extend(batch.iter().map(|&(s, p, o)| quad(s, p, o)));
                }
                Op::Insert(s, p, o) => {
                    store.insert(&quad(s, p, o));
                }
                Op::Remove(s, p, o) => {
                    store.remove(&quad(s, p, o));
                }
                Op::Snapshot => {
                    let snap = store.snapshot();
                    // (b) no writes since the deref'd live view: exact match
                    prop_assert_eq!(snap.len(), store.len());
                    prop_assert_eq!(snap.generation(), store.generation());
                    prop_assert_eq!(contents(&snap), contents(&store));
                    let frozen = contents(&snap);
                    let generation = snap.generation();
                    pinned.push((snap, frozen, generation));
                }
            }
        }
        // (a) every pinned snapshot is still bit-identical to its frozen
        // copy, regardless of the writes that followed
        for (snap, frozen, generation) in &pinned {
            prop_assert_eq!(&contents(snap), frozen);
            prop_assert_eq!(snap.generation(), *generation);
            prop_assert!(snap.validate_indexes(), "snapshot indexes disagree");
        }
        prop_assert!(store.validate_indexes(), "live store indexes disagree");
    }
}

/// (c) Concurrent readers under a writer never see torn state. The
/// writer commits batches whose quads share a batch tag; readers grab
/// snapshots through a `StoreReader` and assert every snapshot is a
/// committed batch boundary: all four indexes agree, and for each batch
/// tag the snapshot holds either all of its quads or none.
#[test]
fn concurrent_readers_never_observe_torn_state() {
    const BATCHES: usize = 60;
    const BATCH_SIZE: usize = 25;
    const READERS: usize = 4;

    let mut store = QuadStore::new();
    let reader_handle = store.reader();
    let done = Arc::new(AtomicBool::new(false));

    let readers: Vec<_> = (0..READERS)
        .map(|_| {
            let handle = reader_handle.clone();
            let done = Arc::clone(&done);
            thread::spawn(move || {
                let mut checked = 0usize;
                let mut last_len = 0usize;
                let mut last_gen = 0u64;
                while !done.load(Ordering::Acquire) || checked == 0 {
                    let snap = handle.snapshot();
                    assert!(snap.validate_indexes(), "torn snapshot: indexes disagree");
                    // publication is monotone: later snapshots never go back
                    // to an older generation or lose committed quads
                    assert!(snap.generation() >= last_gen, "generation went backwards");
                    assert!(snap.len() >= last_len, "committed quads vanished");
                    last_gen = snap.generation();
                    last_len = snap.len();
                    // batch atomicity: each committed batch is all-or-nothing
                    assert_eq!(
                        snap.len() % BATCH_SIZE,
                        0,
                        "snapshot cuts a batch in half: len {}",
                        snap.len()
                    );
                    checked += 1;
                }
                checked
            })
        })
        .collect();

    for b in 0..BATCHES {
        let batch: Vec<Quad> = (0..BATCH_SIZE)
            .map(|i| {
                Quad::new(
                    Term::iri(format!("urn:batch:{b}")),
                    Term::iri("urn:p:member"),
                    Term::iri(format!("urn:item:{b}:{i}")),
                )
            })
            .collect();
        assert_eq!(store.extend(batch), BATCH_SIZE);
    }
    done.store(true, Ordering::Release);

    let mut total_checked = 0;
    for r in readers {
        total_checked += r.join().expect("reader thread panicked");
    }
    assert!(total_checked > 0, "readers never ran");
    assert_eq!(store.len(), BATCHES * BATCH_SIZE);
    // the final published snapshot converges to the writer's final state
    assert_eq!(reader_handle.snapshot().len(), store.len());
}

/// Stale-generation regression (satellite 6): a prepared query compiled
/// against generation N must observe data ingested at generation N+1 on
/// its next execution — recompiled against the new snapshot, with the
/// parse still reused (one parse, two compiles).
#[test]
fn prepared_query_recompiles_after_ingest_not_stale() {
    let cache = PlanCache::new();
    let mut store = QuadStore::new();
    store.extend([quad(0, 0, 0)]);

    let text = "SELECT ?s WHERE { ?s <urn:p:0> <urn:o:0> . }";
    let prepared = cache.prepare(text).expect("parse");
    let first = prepared.execute(&store.snapshot()).expect("first run");
    assert_eq!(first.rows.len(), 1);

    // ingest publishes a new generation with one more matching row
    store.extend([quad(1, 0, 0)]);
    let again = cache.prepare(text).expect("cache hit");
    let second = again.execute(&store.snapshot()).expect("second run");
    assert_eq!(second.rows.len(), 2, "stale plan reused: new data not visible");

    let stats = cache.stats();
    assert_eq!(stats.parses, 1, "parse should be reused across generations");
    assert_eq!(stats.compiles, 2, "plan must recompile for the new generation");
    assert_eq!(stats.hits(), 1);
}

/// A query running on a pinned snapshot is isolated from concurrent
/// publication: executing the same prepared plan against the pinned
/// snapshot after ingest still returns the old view.
#[test]
fn pinned_snapshot_query_is_isolated_from_ingest() {
    let cache = PlanCache::new();
    let mut store = QuadStore::new();
    store.extend([quad(0, 0, 0)]);
    let pinned = store.snapshot();

    let text = "SELECT ?s WHERE { ?s <urn:p:0> <urn:o:0> . }";
    let prepared = cache.prepare(text).expect("parse");

    store.extend([quad(1, 0, 0), quad(2, 0, 0)]);

    let old_view = prepared.execute(&pinned).expect("pinned run");
    assert_eq!(old_view.rows.len(), 1, "pinned snapshot leaked newer writes");
    let new_view = prepared.execute(&store.snapshot()).expect("fresh run");
    assert_eq!(new_view.rows.len(), 3);
}
