//! SPARQL engine conformance: evaluator results cross-checked against a
//! naive reference evaluation on randomly generated graphs.

use kglids_repro::rdf::{GraphName, Quad, QuadStore, Term};
use kglids_repro::sparql;
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Random small graph: subjects s0..s5, predicates p0..p3, objects o0..o5.
fn random_store(seed: u64, quads: usize) -> QuadStore {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut store = QuadStore::new();
    for _ in 0..quads {
        store.insert(&Quad::new(
            Term::iri(format!("s{}", rng.gen_range(0..6))),
            Term::iri(format!("p{}", rng.gen_range(0..4))),
            Term::iri(format!("o{}", rng.gen_range(0..6))),
        ));
    }
    store
}

/// Naive reference: `?x p0 ?y . ?y p1 ?z` by double loop.
fn naive_two_hop(store: &QuadStore) -> usize {
    let all: Vec<Quad> = store.iter().collect();
    let mut count = 0;
    for a in &all {
        if a.predicate != Term::iri("p0") {
            continue;
        }
        for b in &all {
            if b.predicate == Term::iri("p1") && b.subject == a.object {
                count += 1;
            }
        }
    }
    count
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn prop_two_hop_join_matches_naive(seed in 0u64..500, quads in 5usize..60) {
        let store = random_store(seed, quads);
        let solutions = sparql::query(
            &store,
            "SELECT ?x ?y ?z WHERE { ?x <p0> ?y . ?y <p1> ?z . }",
        ).unwrap();
        prop_assert_eq!(solutions.len(), naive_two_hop(&store));
    }

    #[test]
    fn prop_distinct_never_exceeds_plain(seed in 0u64..200) {
        let store = random_store(seed, 40);
        let plain = sparql::query(&store, "SELECT ?x WHERE { ?x ?p ?o . }").unwrap();
        let distinct = sparql::query(&store, "SELECT DISTINCT ?x WHERE { ?x ?p ?o . }").unwrap();
        prop_assert!(distinct.len() <= plain.len());
        prop_assert_eq!(plain.len(), store.len());
    }

    #[test]
    fn prop_count_matches_row_count(seed in 0u64..200) {
        let store = random_store(seed, 30);
        let rows = sparql::query(&store, "SELECT ?x ?o WHERE { ?x <p2> ?o . }").unwrap();
        let count = sparql::query(
            &store,
            "SELECT (COUNT(?x) AS ?n) WHERE { ?x <p2> ?o . }",
        ).unwrap();
        prop_assert_eq!(count.get_f64(0, "n").unwrap() as usize, rows.len());
    }

    #[test]
    fn prop_union_is_sum_when_branches_disjoint(seed in 0u64..200) {
        let store = random_store(seed, 40);
        let a = sparql::query(&store, "SELECT ?x WHERE { ?x <p0> ?o . }").unwrap();
        let b = sparql::query(&store, "SELECT ?x WHERE { ?x <p1> ?o . }").unwrap();
        let u = sparql::query(
            &store,
            "SELECT ?x WHERE { { ?x <p0> ?o . } UNION { ?x <p1> ?o . } }",
        ).unwrap();
        prop_assert_eq!(u.len(), a.len() + b.len());
    }

    #[test]
    fn prop_limit_truncates(seed in 0u64..100, limit in 1usize..10) {
        let store = random_store(seed, 50);
        let all = sparql::query(&store, "SELECT ?x WHERE { ?x ?p ?o . }").unwrap();
        let limited = sparql::query(
            &store,
            &format!("SELECT ?x WHERE {{ ?x ?p ?o . }} LIMIT {limit}"),
        ).unwrap();
        prop_assert_eq!(limited.len(), all.len().min(limit));
    }

    #[test]
    fn prop_filter_partition(seed in 0u64..100) {
        // FILTER(c) + FILTER(!c) partition the solutions
        let store = random_store(seed, 40);
        let all = sparql::query(&store, "SELECT ?x ?o WHERE { ?x <p0> ?o . }").unwrap();
        let yes = sparql::query(
            &store,
            r#"SELECT ?x ?o WHERE { ?x <p0> ?o . FILTER(CONTAINS(STR(?o), "o1")) }"#,
        ).unwrap();
        let no = sparql::query(
            &store,
            r#"SELECT ?x ?o WHERE { ?x <p0> ?o . FILTER(!CONTAINS(STR(?o), "o1")) }"#,
        ).unwrap();
        prop_assert_eq!(yes.len() + no.len(), all.len());
    }
}

#[test]
fn optional_left_join_semantics() {
    let mut store = QuadStore::new();
    store.insert(&Quad::new(Term::iri("a"), Term::iri("p"), Term::iri("x")));
    store.insert(&Quad::new(Term::iri("b"), Term::iri("p"), Term::iri("y")));
    store.insert(&Quad::new(Term::iri("x"), Term::iri("q"), Term::integer(1)));
    let s = sparql::query(
        &store,
        "SELECT ?s ?v WHERE { ?s <p> ?o . OPTIONAL { ?o <q> ?v . } } ORDER BY ?s",
    )
    .unwrap();
    assert_eq!(s.len(), 2);
    assert_eq!(s.get_f64(0, "v"), Some(1.0)); // a→x→1
    assert!(s.get(1, "v").is_none()); // b→y has no q
}

#[test]
fn named_graph_isolation() {
    let mut store = QuadStore::new();
    for g in ["g1", "g2", "g3"] {
        store.insert(&Quad::in_graph(
            Term::iri(format!("{g}-s")),
            Term::iri("p"),
            Term::iri("o"),
            GraphName::named(g),
        ));
    }
    let per_graph = sparql::query(
        &store,
        "SELECT ?s WHERE { GRAPH <g2> { ?s <p> ?o . } }",
    )
    .unwrap();
    assert_eq!(per_graph.len(), 1);
    assert_eq!(per_graph.get_str(0, "s").as_deref(), Some("g2-s"));

    let graphs = sparql::query(
        &store,
        "SELECT DISTINCT ?g WHERE { GRAPH ?g { ?s <p> ?o . } } ORDER BY ?g",
    )
    .unwrap();
    assert_eq!(graphs.len(), 3);
}

#[test]
fn aggregate_group_ordering() {
    let mut store = QuadStore::new();
    for (s, lib) in [("a", "pandas"), ("b", "pandas"), ("c", "numpy"), ("d", "pandas"), ("e", "numpy"), ("f", "scipy")] {
        store.insert(&Quad::new(Term::iri(s), Term::iri("calls"), Term::iri(lib)));
    }
    let s = sparql::query(
        &store,
        "SELECT ?lib (COUNT(?s) AS ?n) WHERE { ?s <calls> ?lib . } \
         GROUP BY ?lib ORDER BY DESC(?n) LIMIT 2",
    )
    .unwrap();
    assert_eq!(s.len(), 2);
    assert_eq!(s.get_str(0, "lib").as_deref(), Some("pandas"));
    assert_eq!(s.get_f64(0, "n"), Some(3.0));
    assert_eq!(s.get_f64(1, "n"), Some(2.0));
}
