//! End-to-end tests for `lids-server`: a real socket on an ephemeral
//! port, the typed blocking client, and the platform underneath.
//!
//! The contract under test, per endpoint family:
//! - answers over HTTP are *identical* to the in-process API on the same
//!   store (parity);
//! - every failure is a typed JSON error with the platform's own
//!   `ErrorKind` name and the right 4xx/5xx status — malformed bytes,
//!   oversized bodies, bad SPARQL, and mid-shutdown requests never hang
//!   a connection;
//! - under a live writer, clients observe whole ingest batches or
//!   nothing (snapshot isolation over the wire).

use kglids::{KgLids, KgLidsBuilder};
use lids_profiler::table::{Column, Dataset, Table};
use lids_rdf::{Quad, QuadStore, Term};
use lids_server::{
    Backend, Client, ClientError, LidsServer, PathsRequest, SearchRequest, ServerConfig,
    TableHitsRequest, API_VERSION,
};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Three tables: patients/people share `age`, people/trips share `city`
/// — the same shape the in-process discovery tests use, so the HTTP
/// answers can be checked against known structure.
fn platform() -> Arc<KgLids> {
    let ages: Vec<String> = (20..60).map(|i| i.to_string()).collect();
    let cities: Vec<String> = (0..40)
        .map(|i| ["London", "Paris", "Tokyo", "Cairo"][i % 4].to_string())
        .collect();
    let salaries: Vec<String> = (0..40).map(|i| (30_000 + i * 500).to_string()).collect();
    let ds = |name: &str, table: &str, cols: Vec<Column>| {
        Dataset::new(name, vec![Table::new(table, cols)])
    };
    Arc::new(
        KgLidsBuilder::new()
            .with_datasets([
                ds(
                    "health",
                    "patients",
                    vec![Column::new("age", ages.clone()), Column::new("salary", salaries)],
                ),
                ds(
                    "census",
                    "people",
                    vec![Column::new("age", ages), Column::new("city", cities.clone())],
                ),
                ds("travel", "trips", vec![Column::new("city", cities)]),
            ])
            .bootstrap()
            .0,
    )
}

fn start(platform: &Arc<KgLids>) -> LidsServer {
    LidsServer::start(
        Backend::Platform(Arc::clone(platform)),
        "127.0.0.1:0",
        ServerConfig::default(),
    )
    .expect("server binds an ephemeral port")
}

const TABLES_QUERY: &str = "PREFIX k: <http://kglids.org/ontology/> \
    SELECT ?t ?c WHERE { ?t a k:Table . ?t k:hasColumn ?c . }";

fn sorted(mut rows: Vec<Vec<String>>) -> Vec<Vec<String>> {
    rows.sort();
    rows
}

#[test]
fn query_over_http_matches_in_process() {
    let p = platform();
    let server = start(&p);
    let mut client = Client::connect(server.addr().to_string());

    let wire = client.query(TABLES_QUERY, None).expect("query over http");
    let local = p.query(TABLES_QUERY).expect("query in process");
    assert_eq!(wire.api, API_VERSION);
    assert!(wire.request_id.starts_with("req-"));
    let df = wire.to_dataframe();
    assert_eq!(df.columns, local.columns);
    assert_eq!(sorted(df.rows), sorted(local.rows), "wire rows must be byte-equal");
    assert!(!wire.truncated);
    assert!(wire.generation > 0);

    // explain rides the same socket and reports the same result size
    let explain = client.explain(TABLES_QUERY).expect("explain over http");
    assert_eq!(explain.rows as usize, wire.rows.len());
    assert!(!explain.patterns.is_empty());
}

#[test]
fn discovery_over_http_matches_in_process() {
    let p = platform();
    let server = start(&p);
    let mut client = Client::connect(server.addr().to_string());

    // unionable tables
    let wire = client
        .unionable_tables(&TableHitsRequest {
            dataset: "health".into(),
            table: "patients".into(),
            k: Some(5),
            ..TableHitsRequest::default()
        })
        .expect("unionable over http");
    let local = p.discovery().k(5).unionable_tables("health", "patients").expect("in process");
    assert_eq!(wire.hits.len(), local.len());
    for (w, l) in wire.hits.iter().zip(&local) {
        assert_eq!((w.dataset.as_str(), w.table.as_str()), (l.dataset.as_str(), l.table.as_str()));
        assert!((w.score - l.score).abs() < 1e-12);
    }
    assert_eq!(wire.hits[0].table, "people");

    // join paths, plain and shortest
    let req = PathsRequest {
        from_dataset: "health".into(),
        from_table: "patients".into(),
        to_dataset: "travel".into(),
        to_table: "trips".into(),
        hops: Some(2),
        ..PathsRequest::default()
    };
    let wire_paths = client.paths(&req).expect("paths over http");
    let local_paths = p
        .discovery()
        .hops(2)
        .paths(("health", "patients"), ("travel", "trips"))
        .expect("in process");
    assert_eq!(
        wire_paths.paths.iter().map(|p| p.tables.clone()).collect::<Vec<_>>(),
        local_paths.iter().map(|p| p.tables.clone()).collect::<Vec<_>>()
    );
    let shortest = client
        .paths(&PathsRequest { shortest: Some(true), ..req })
        .expect("shortest over http");
    assert_eq!(shortest.paths.len(), 1);
    assert_eq!(shortest.paths[0].tables, vec!["patients", "people", "trips"]);

    // keyword search answers the DataFrame shape
    let search = client
        .search(&SearchRequest {
            conditions: vec![vec!["age".into(), "city".into()], vec!["travel".into()]],
            limits: None,
        })
        .expect("search over http");
    let local = p
        .discovery()
        .search(&[&["age", "city"], &["travel"]])
        .expect("in process search");
    assert_eq!(sorted(search.to_dataframe().rows), sorted(local.rows));
}

#[test]
fn health_and_metrics_report_the_server() {
    let p = platform();
    let server = start(&p);
    let mut client = Client::connect(server.addr().to_string());

    let health = client.healthz().expect("healthz");
    assert_eq!(health.status, "ok");
    assert!(health.triples > 0);
    assert_eq!(health.generation, p.store().generation());

    client.query(TABLES_QUERY, None).expect("query");
    let metrics = client.metrics_json().expect("metrics");
    let v: serde_json::Value = serde_json::from_str(&metrics).expect("metrics is JSON");
    fn field<'a>(v: &'a serde_json::Value, key: &str) -> &'a serde_json::Value {
        match v {
            serde_json::Value::Object(m) => {
                m.get(key).unwrap_or_else(|| panic!("missing field `{key}`"))
            }
            other => panic!("expected object at `{key}`, got {other:?}"),
        }
    }
    fn as_i64(v: &serde_json::Value) -> i64 {
        match v {
            serde_json::Value::Number(n) => n.as_i64().expect("integral number"),
            other => panic!("not a number: {other:?}"),
        }
    }
    assert_eq!(field(&v, "schema"), &serde_json::Value::String("lids-obs/v1".into()));
    let counters = field(field(&v, "metrics"), "counters");
    assert!(
        as_i64(field(counters, "server.requests")) >= 2,
        "healthz + query must be counted: {counters:?}"
    );
    let latency = field(
        field(field(&v, "metrics"), "histograms"),
        "server.latency_us.query",
    );
    assert!(as_i64(field(latency, "count")) >= 1, "query latency histogram missing");
}

/// Satellite regression: error taxonomy over the wire. Bad requests are
/// 400s with the platform's `ErrorKind` name — including the empty-query
/// case, which used to panic deep in the platform as an internal error.
#[test]
fn typed_errors_over_the_wire() {
    let p = platform();
    let server = start(&p);
    let mut client = Client::connect(server.addr().to_string());

    // malformed JSON body → 400 JsonMalformed
    let (status, body) = client
        .request_raw("POST", "/v1/query", "{not json")
        .expect("request completes");
    assert_eq!(status, 400);
    assert!(body.contains("JsonMalformed"), "{body}");

    // schema-violating body (no `query` field) → 400 JsonMalformed
    let (status, body) = client.request_raw("POST", "/v1/query", "{}").expect("completes");
    assert_eq!(status, 400);
    assert!(body.contains("JsonMalformed"), "{body}");

    // unparseable SPARQL → 400 SparqlError
    match client.query("SELEKT nonsense", None) {
        Err(ClientError::Api(e)) => {
            assert_eq!(e.status, 400);
            assert_eq!(e.error, "SparqlError");
        }
        other => panic!("expected typed API error, got {other:?}"),
    }

    // empty SPARQL → 400 InvalidArgument (not a 500): the regression
    match client.query("   ", None) {
        Err(ClientError::Api(e)) => {
            assert_eq!(e.status, 400, "empty query must be a client error: {e:?}");
            assert_eq!(e.error, "InvalidArgument");
        }
        other => panic!("expected typed API error, got {other:?}"),
    }

    // out-of-domain discovery options → 400 InvalidArgument
    match client.unionable_tables(&TableHitsRequest {
        dataset: "health".into(),
        table: "patients".into(),
        mode: Some("psychic".into()),
        ..TableHitsRequest::default()
    }) {
        Err(ClientError::Api(e)) => {
            assert_eq!(e.status, 400);
            assert_eq!(e.error, "InvalidArgument");
        }
        other => panic!("expected typed API error, got {other:?}"),
    }

    // impossible deadline → 503 QueryTimeout (governance, not failure)
    match client.query(
        TABLES_QUERY,
        Some(lids_server::WireLimits { deadline_ms: Some(0), ..Default::default() }),
    ) {
        Err(ClientError::Api(e)) => {
            assert_eq!(e.status, 503);
            assert_eq!(e.error, "QueryTimeout");
        }
        other => panic!("expected typed API error, got {other:?}"),
    }

    // unknown route → 404 NotFound
    let (status, body) = client.request_raw("POST", "/v1/nope", "{}").expect("completes");
    assert_eq!(status, 404);
    assert!(body.contains("NotFound"), "{body}");

    // the connection survived every typed error above
    client.healthz().expect("keep-alive connection still healthy");
}

#[test]
fn oversized_and_malformed_requests_close_without_hanging() {
    let p = platform();
    let server = LidsServer::start(
        Backend::Platform(Arc::clone(&p)),
        "127.0.0.1:0",
        ServerConfig { max_body_bytes: 512, ..ServerConfig::default() },
    )
    .expect("server binds");
    let addr = server.addr().to_string();

    // a body over the cap → 413, connection closed by the server
    let mut client = Client::connect(addr.clone());
    let big = format!("{{\"query\": \"{}\"}}", "x".repeat(2048));
    let (status, body) = client.request_raw("POST", "/v1/query", &big).expect("413 answered");
    assert_eq!(status, 413);
    assert!(body.contains("PayloadTooLarge"), "{body}");

    // raw garbage that is not HTTP → 400, then the server closes; the
    // whole exchange must finish quickly rather than hang
    use std::io::{BufReader, Write};
    let start = Instant::now();
    let mut raw = std::net::TcpStream::connect(&addr).expect("connect");
    raw.write_all(b"this is not http\r\n\r\n").expect("write");
    let mut reader = BufReader::new(raw);
    let (status, body, keep_alive) =
        lids_server::http::read_response(&mut reader).expect("400 answered");
    assert_eq!(status, 400);
    assert!(body.contains("Malformed"), "{body}");
    assert!(!keep_alive, "framing errors must close the connection");
    assert!(start.elapsed() < Duration::from_secs(5), "malformed request hung");
}

#[test]
fn shutdown_drains_and_refuses_new_connections() {
    let p = platform();
    let server = start(&p);
    let addr = server.addr().to_string();

    let mut client = Client::connect(addr.clone());
    client.query(TABLES_QUERY, None).expect("pre-shutdown query");

    let start = Instant::now();
    server.shutdown();
    assert!(start.elapsed() < Duration::from_secs(10), "shutdown must not hang");

    // new work is refused once the server is gone — as a fast error,
    // never a hang
    let mut late = Client::connect(addr);
    match late.query(TABLES_QUERY, None) {
        Err(ClientError::Io(_)) | Err(ClientError::Protocol(_)) => {}
        Ok(_) => panic!("query succeeded after shutdown"),
        Err(ClientError::Api(e)) => panic!("unexpected typed answer after shutdown: {e:?}"),
    }
}

/// Snapshot isolation over the wire: while a writer commits fixed-size
/// batches, every HTTP response must reflect a whole number of batches —
/// and per connection, generations and results only move forward.
#[test]
fn concurrent_clients_observe_whole_batches_during_ingest() {
    const BATCH: usize = 5;
    const BATCHES: usize = 12;
    const BASE: usize = 8;

    let pred = || Term::iri("http://x/p");
    let mut store = QuadStore::new();
    store.extend((0..BASE).map(|i| {
        Quad::new(Term::iri(format!("http://x/base{i}")), pred(), Term::integer(i as i64))
    }));
    let reader = kglids::LidsReader::for_store(&store);
    let server = LidsServer::start(
        Backend::Reader(reader),
        "127.0.0.1:0",
        ServerConfig { workers: 2, ..ServerConfig::default() },
    )
    .expect("server binds");
    let addr = server.addr().to_string();

    let query = "SELECT ?s ?o WHERE { ?s <http://x/p> ?o }";
    std::thread::scope(|scope| {
        let clients: Vec<_> = (0..2)
            .map(|_| {
                let addr = addr.clone();
                scope.spawn(move || {
                    let mut client = Client::connect(addr);
                    let mut last_rows = 0usize;
                    let mut last_gen = 0u64;
                    loop {
                        let resp = client.query(query, None).expect("query during ingest");
                        let rows = resp.rows.len();
                        assert!(
                            rows >= BASE && (rows - BASE).is_multiple_of(BATCH),
                            "torn read: {rows} rows is not base + whole batches"
                        );
                        assert!(rows >= last_rows, "result set went backwards");
                        assert!(resp.generation >= last_gen, "generation went backwards");
                        last_rows = rows;
                        last_gen = resp.generation;
                        if rows == BASE + BATCHES * BATCH {
                            return;
                        }
                    }
                })
            })
            .collect();

        // one extend() call per batch = one atomic publish per batch
        for b in 0..BATCHES {
            store.extend((0..BATCH).map(|i| {
                Quad::new(
                    Term::iri(format!("http://x/b{b}c{i}")),
                    pred(),
                    Term::integer((1000 + b * BATCH + i) as i64),
                )
            }));
            std::thread::sleep(Duration::from_millis(2));
        }

        for c in clients {
            c.join().expect("client thread");
        }
    });
    server.shutdown();
}
