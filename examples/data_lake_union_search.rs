//! Data-lake union search (§6.1): generate a TUS-style benchmark lake with
//! known ground truth, bootstrap KGLiDS over it, and measure P@k/R@k of
//! the different similarity modes against the ground truth.
//!
//! ```text
//! cargo run --release --example data_lake_union_search
//! ```

use kglids::discovery::UnionMode;
use kglids::KgLidsBuilder;
use lids_datagen::LakeSpec;
use lids_ml::precision_recall_at_k;
use lids_profiler::table::Dataset;

fn main() {
    let lake = LakeSpec::tus_small().scaled(0.4).generate();
    println!(
        "lake '{}': {} tables, {} columns, {} query tables, avg family {:.0}",
        lake.name,
        lake.tables.len(),
        lake.column_count(),
        lake.query_tables.len(),
        lake.avg_unionable()
    );

    let (platform, stats) = KgLidsBuilder::new()
        .with_dataset(Dataset::new(lake.name.clone(), lake.tables.clone()))
        .bootstrap();
    let schema = stats.schema.unwrap();
    println!(
        "bootstrap: {:.2}s profiling + {:.2}s schema | {} column pairs compared, {} label + {} content edges",
        stats.profiling_secs, stats.schema_secs,
        schema.pairs_compared, schema.label_edges, schema.content_edges
    );
    println!("{}\n", stats.report.summary());

    let k = lake.avg_unionable().max(1.0) as usize;
    for (label, mode) in [
        ("CoLR + label (full system)", UnionMode::ContentAndLabel),
        ("CoLR only (anonymised lake)", UnionMode::ContentOnly),
        ("label only", UnionMode::LabelOnly),
    ] {
        let mut p_sum = 0.0;
        let mut r_sum = 0.0;
        for q in &lake.query_tables {
            let retrieved: Vec<String> = platform
                .discovery()
                .k(k)
                .mode(mode)
                .unionable_tables(&lake.name, q)
                .expect("in-domain discovery options")
                .into_iter()
                .map(|h| h.table)
                .collect();
            let truth = &lake.unionable[q];
            let (p, r) = precision_recall_at_k(&retrieved, truth, k);
            p_sum += p;
            r_sum += r;
        }
        let n = lake.query_tables.len() as f64;
        println!(
            "{label:<30} P@{k} {:.3}  R@{k} {:.3}",
            p_sum / n,
            r_sum / n
        );
    }

    // drill into one query, via the fluent discovery API
    let q = &lake.query_tables[0];
    println!("\ntop-5 unionable tables for '{q}':");
    let hits = platform
        .discovery()
        .k(5)
        .unionable_tables(&lake.name, q)
        .expect("in-domain discovery options");
    for hit in hits {
        let relevant = lake.unionable[q].contains(&hit.table);
        println!(
            "  {:<24} score {:>7.2}  {}",
            hit.table,
            hit.score,
            if relevant { "(relevant)" } else { "" }
        );
    }
}
