//! On-demand automation (§4): train the cleaning/transformation GNNs from
//! a pipeline corpus, then clean and transform an unseen dataset and run
//! the budgeted AutoML pipeline — measuring the downstream effect.
//!
//! ```text
//! cargo run --release --example pipeline_automation
//! ```

use lids_bench::cleaning::downstream_f1;
use lids_bench::corpus::corpus_platform;
use lids_bench::transform::downstream_accuracy;
use lids_datagen::tasks::{cleaning_datasets, transform_datasets};
use lids_ml::MlFrame;

fn main() {
    // a platform bootstrapped over a synthetic Kaggle-style corpus
    println!("bootstrapping corpus platform (12 datasets × 5 pipelines)...");
    let mut cp = corpus_platform(12, 5, 2026);
    println!("LiDS graph: {} triples\n", cp.platform.triple_count());

    // ---- cleaning an unseen dataset ----
    let dataset = &cleaning_datasets(0.4)[6]; // "titanic"
    let frame = MlFrame::from_table(&dataset.table, &dataset.target).unwrap();
    println!(
        "unseen dataset '{}': {} rows, {} missing cells",
        dataset.name,
        frame.rows(),
        frame.missing_count()
    );
    let ranked = cp.platform.recommend_cleaning_operations(&dataset.table);
    println!("cleaning recommendations (GNN ranking):");
    for (op, p) in &ranked {
        println!("  {:<18} {:.3}", op.label(), p);
    }
    let baseline = frame.drop_missing();
    let base_f1 = if baseline.rows() > 10 {
        downstream_f1(&baseline, 5, 1)
    } else {
        0.0
    };
    let best_op = ranked[0].0;
    let cleaned = cp.platform.apply_cleaning_operations(best_op, &frame);
    let clean_f1 = downstream_f1(&cleaned, 5, 1);
    println!("downstream RF F1: drop-nulls baseline {base_f1:.2} -> {} {clean_f1:.2}\n", best_op.label());

    // ---- transforming an unseen dataset ----
    let dataset = &transform_datasets(0.4)[2]; // "wine" (mixed scales)
    let frame = MlFrame::from_table(&dataset.table, &dataset.target).unwrap();
    let rec = cp.platform.recommend_transformations(&dataset.table);
    println!(
        "unseen dataset '{}': recommended scaling = {}",
        dataset.name,
        rec.scaling.label()
    );
    let raw_acc = downstream_accuracy(&frame, 5, 1);
    let transformed = cp.platform.apply_transformations(&rec, &frame);
    let new_acc = downstream_accuracy(&transformed, 5, 1);
    println!("downstream kNN accuracy: raw {raw_acc:.2} -> transformed {new_acc:.2}\n");

    // ---- AutoML with hyperparameter priors ----
    let automl = lids_bench::automl_exp::build_knowledge(&cp.platform, 0.3, 8);
    let task = &lids_datagen::tasks::automl_datasets(0.4)[3];
    let frame = MlFrame::from_table(&task.table, &task.target).unwrap();
    let embedding = cp.platform.embed_table(&task.table);
    let with_priors = automl.fit_with_budget(&frame, &embedding, 3, true, 7);
    let without = automl.fit_with_budget(&frame, &embedding, 3, false, 7);
    println!("AutoML on '{}' (budget: 3 evaluations):", task.name);
    println!(
        "  Pip_LiDS (with priors)  F1 {:.3} via {:?} {:?}",
        with_priors.best_f1, with_priors.best_config.model, with_priors.best_config.params
    );
    println!(
        "  Pip_G4C  (no priors)    F1 {:.3} via {:?} {:?}",
        without.best_f1, without.best_config.model, without.best_config.params
    );
}
