//! Quickstart: bootstrap KGLiDS over a dataset and a pipeline script, then
//! query the LiDS graph.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use kglids::{KgLidsBuilder, PipelineScript};
use lids_kg::abstraction::PipelineMetadata;
use lids_profiler::table::{Column, Dataset, Table};

fn main() {
    // 1. A dataset: the Titanic-style table from the paper's Figure 3.
    let titanic = Dataset::new(
        "titanic",
        vec![Table::new(
            "train",
            vec![
                Column::new("Survived", ["0", "1", "1", "0", "1"].iter().map(|s| s.to_string()).collect()),
                Column::new("Age", ["22", "38", "26", "35", "28"].iter().map(|s| s.to_string()).collect()),
                Column::new("Sex", ["male", "female", "female", "male", "female"].iter().map(|s| s.to_string()).collect()),
                Column::new("Fare", ["7.25", "71.28", "7.92", "53.10", "8.05"].iter().map(|s| s.to_string()).collect()),
            ],
        )],
    );

    // 2. The pipeline of Figure 3 (as a script + Kaggle-style metadata).
    let pipeline = PipelineScript {
        metadata: PipelineMetadata {
            id: "titanic-survival".into(),
            dataset: "titanic".into(),
            title: "Titanic survival prediction".into(),
            author: "alice".into(),
            votes: 412,
            score: 0.83,
            task: "classification".into(),
        },
        source: r#"
import pandas as pd
from sklearn.impute import SimpleImputer
from sklearn.preprocessing import LabelEncoder, StandardScaler
from sklearn.ensemble import RandomForestClassifier
from sklearn.model_selection import train_test_split
from sklearn.metrics import accuracy_score

df = pd.read_csv('titanic/train.csv')
X, y = df.drop('Survived', axis=1), df['Survived']
imputer = SimpleImputer(strategy='most_frequent')
X['Sex'] = LabelEncoder().fit_transform(X['Sex'])
X = imputer.fit_transform(X)
scaler = StandardScaler()
X['NormalizedAge'] = scaler.fit_transform(X['Age'])
X_train, X_test, y_train, y_test = train_test_split(X, y, test_size=0.2)
clf = RandomForestClassifier(50, max_depth=10)
clf.fit(X_train, y_train)
print(accuracy_score(y_test, clf.predict(X_test)))
"#
        .to_string(),
    };

    // 3. Bootstrap: the KG Governor profiles, abstracts, and links.
    let (platform, stats) = KgLidsBuilder::new()
        .with_dataset(titanic)
        .with_pipelines([pipeline])
        .bootstrap();

    println!("LiDS graph bootstrapped:");
    println!("  columns profiled      {}", stats.columns_profiled);
    println!("  pipelines abstracted  {}", stats.pipelines_abstracted);
    println!("  triples               {}", stats.triples);
    println!(
        "  linked: {} table reads, {} column reads; {} predictions dropped",
        stats.links.tables_linked, stats.links.columns_linked, stats.links.predictions_dropped
    );
    println!("  {}", stats.report.summary());
    println!();

    // 4. Ad-hoc SPARQL: which columns does the pipeline read?
    let df = platform
        .query(
            "PREFIX k: <http://kglids.org/ontology/> \
             PREFIX rdfs: <http://www.w3.org/2000/01/rdf-schema#> \
             SELECT DISTINCT ?column WHERE { \
                GRAPH ?g { ?s k:readsColumn ?c . } \
                ?c rdfs:label ?column . \
             } ORDER BY ?column",
        )
        .expect("query parses");
    println!("columns the pipeline reads (via the graph linker):");
    println!("{}", df.to_text());

    // 5. The implicit hyperparameter the documentation analysis recovered
    //    (`RandomForestClassifier(50, …)` → `n_estimators=50`).
    let hp = platform.recommend_hyperparameters("titanic", "RandomForestClassifier");
    println!("hyperparameters harvested for RandomForestClassifier:");
    println!("{}", hp.to_text());

    // 6. Keyword table search (§5) — typed result like every query path.
    let hits = platform.search_tables(&[&["titanic"]]).expect("search query runs");
    println!("search_tables(titanic):");
    println!("{}", hits.to_text());
}
