//! The Section 5 walkthrough: a data scientist predicting heart failure
//! drives every pre-defined operation in sequence — keyword search,
//! unionable columns, join-path discovery, library/pipeline discovery,
//! transformation/classifier/hyperparameter recommendation.
//!
//! ```text
//! cargo run --example heart_failure_discovery
//! ```

use kglids::{KgLidsBuilder, PipelineScript};
use lids_kg::abstraction::PipelineMetadata;
use lids_profiler::table::{Column, Dataset, Table};

fn col(name: &str, values: &[&str]) -> Column {
    Column::new(name, values.iter().map(|s| s.to_string()).collect())
}

fn main() {
    // Two heart datasets (the §5 scenario) plus a lab dataset joinable
    // through patient ids.
    let ages: &[&str] = &["63", "37", "41", "56", "57", "44", "52", "61"];
    let ids: &[&str] = &["p01", "p02", "p03", "p04", "p05", "p06", "p07", "p08"];
    let heart_failure_prediction = Dataset::new(
        "heart-failure-prediction",
        vec![Table::new(
            "heart",
            vec![
                col("patient_id", ids),
                col("age", ages),
                col("cholesterol", &["233", "250", "204", "236", "354", "192", "294", "263"]),
                col("outcome", &["true", "false", "false", "true", "false", "false", "true", "false"]),
            ],
        )],
    );
    let heart_failure_clinical = Dataset::new(
        "heart-failure-clinical-data",
        vec![Table::new(
            "clinical",
            vec![
                col("patient_age", ages),
                col("serum_cholesterol", &["233", "250", "204", "236", "354", "192", "294", "263"]),
                col("smoker", &["true", "false", "false", "true", "true", "false", "false", "true"]),
            ],
        )],
    );
    let labs = Dataset::new(
        "patient-labs",
        vec![Table::new(
            "labs",
            vec![
                col("record_id", ids),
                col("bnp_level", &["812", "455", "300", "977", "623", "214", "740", "388"]),
            ],
        )],
    );

    // A few pipelines so library/pipeline discovery has content.
    let scripts = [
        (
            "hf-xgb", "heart-failure-prediction", 230,
            "import pandas as pd\nimport numpy as np\nfrom xgboost import XGBClassifier\nfrom sklearn.metrics import f1_score\n\
             df = pd.read_csv('heart-failure-prediction/heart.csv')\n\
             clf = XGBClassifier(n_estimators=100, max_depth=4)\nclf.fit(df, df['outcome'])\n\
             print(f1_score(df['outcome'], clf.predict(df)))\n",
        ),
        (
            "hf-rf", "heart-failure-prediction", 180,
            "import pandas as pd\nfrom sklearn.ensemble import RandomForestClassifier\nfrom sklearn.preprocessing import MinMaxScaler\n\
             df = pd.read_csv('heart-failure-prediction/heart.csv')\n\
             scaler = MinMaxScaler()\nX = scaler.fit_transform(df)\n\
             clf = RandomForestClassifier(n_estimators=60, max_depth=8)\nclf.fit(X, df['outcome'])\n",
        ),
        (
            "clinical-eda", "heart-failure-clinical-data", 40,
            "import pandas as pd\nimport seaborn as sns\nimport matplotlib.pyplot as plt\n\
             df = pd.read_csv('heart-failure-clinical-data/clinical.csv')\n\
             sns.heatmap(df)\nplt.show()\n",
        ),
    ];
    let pipelines: Vec<PipelineScript> = scripts
        .iter()
        .map(|(id, ds, votes, src)| PipelineScript {
            metadata: PipelineMetadata {
                id: id.to_string(),
                dataset: ds.to_string(),
                title: format!("{id} pipeline"),
                author: "dana".into(),
                votes: *votes,
                score: 0.8,
                task: "classification".into(),
            },
            source: src.to_string(),
        })
        .collect();

    let (mut platform, stats) = KgLidsBuilder::new()
        .with_datasets([heart_failure_prediction, heart_failure_clinical, labs])
        .with_pipelines(pipelines)
        .bootstrap();
    println!("{}\n", stats.report.summary());

    // --- Search Tables Based on Specific Columns ---
    // (heart AND failure) OR patients
    println!("== search_tables([['heart','failure'], ['patients']]) ==");
    let tables = platform
        .discovery()
        .search(&[&["heart", "failure"], &["patients"]])
        .expect("search query runs");
    println!("{}", tables.to_text());

    // --- Discover Unionable Columns ---
    println!("== find_unionable_columns(heart, clinical) ==");
    for hit in platform.find_unionable_columns(
        ("heart-failure-prediction", "heart"),
        ("heart-failure-clinical-data", "clinical"),
    ) {
        println!(
            "  {} ~ {}  ({} similarity {:.3})",
            hit.column_a, hit.column_b, hit.kind, hit.score
        );
    }
    println!();

    // --- Join Path Discovery (2 hops, via the fluent discovery API) ---
    println!("== discovery().hops(2).paths(heart → labs) ==");
    for path in platform
        .discovery()
        .hops(2)
        .paths(("heart-failure-prediction", "heart"), ("patient-labs", "labs"))
        .expect("in-domain discovery options")
    {
        println!("  join path: {path} ({} hops)", path.hops());
    }
    println!();

    // --- Library Discovery ---
    println!("== get_top_k_libraries_used(5) ==");
    println!("{}", platform.get_top_k_libraries_used(5).to_text());
    println!("== get_top_used_libraries(5, 'classification') ==");
    println!("{}", platform.get_top_used_libraries(5, "classification").to_text());

    // --- Pipeline Discovery ---
    println!("== get_pipelines_calling_libraries(read_csv, XGBClassifier, f1_score) ==");
    let pipes = platform.get_pipelines_calling_libraries(&[
        "pandas.read_csv",
        "xgboost.XGBClassifier",
        "sklearn.metrics.f1_score",
    ]);
    println!("{}", pipes.to_text());

    // --- Transformation Recommendation ---
    let probe = Table::new(
        "heart",
        vec![
            col("age", &["63", "37", "41", "56"]),
            col("cholesterol", &["233", "250", "204", "236"]),
        ],
    );
    let rec = platform.recommend_transformations(&probe);
    println!("== recommend_transformations(heart-failure-prediction) ==");
    println!("  scaling: {}", rec.scaling.label());
    for (column, t) in &rec.column_transforms {
        println!("  column {column}: {}", t.label());
    }
    println!();

    // --- Classifier Recommendation ---
    println!("== recommend_ml_models('heart-failure-prediction') ==");
    let models = platform.recommend_ml_models("heart-failure-prediction");
    println!("{}", models.to_text());

    // --- Hyperparameter Recommendation ---
    if let Some(best) = models.get(0, "model") {
        let best = best.to_string();
        println!("== recommend_hyperparameters({best}) ==");
        println!(
            "{}",
            platform
                .recommend_hyperparameters("heart-failure-prediction", &best)
                .to_text()
        );
    }
}
