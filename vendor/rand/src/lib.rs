//! Offline vendored stand-in for the `rand` crate.
//!
//! The build container has no access to crates.io, so this workspace vendors
//! the small API subset it actually uses: [`rngs::SmallRng`] (xoshiro256++),
//! the [`Rng`]/[`SeedableRng`] traits with `gen_range`/`gen_bool`, and
//! [`seq::SliceRandom`] (`shuffle`, `choose_multiple`). Algorithms follow the
//! published xoshiro/splitmix64 reference implementations; sampling methods
//! are simple rejection-free bounded draws (not bit-for-bit identical to
//! upstream `rand`, which no code here relies on).

pub mod rngs;
pub mod seq;

use std::ops::{Range, RangeInclusive};

/// Core random source: 64 random bits per call.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

/// User-facing sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Sample uniformly from a range. Panics on an empty range.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// Bernoulli draw: `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool p out of range: {p}");
        sample_f64(self) < p
    }
}

impl<T: RngCore> Rng for T {}

/// Seedable construction.
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

/// A type usable as the argument of [`Rng::gen_range`].
///
/// The single generic impl per range shape (mirroring upstream rand) is
/// load-bearing for type inference: `Range<{integer}>` must force
/// `T = {integer}` so contexts like slice indexing can pin the width.
pub trait SampleRange<T> {
    fn sample_single<R: RngCore>(self, rng: &mut R) -> T;
}

/// A scalar that [`Rng::gen_range`] can draw uniformly.
pub trait SampleUniform: Sized + PartialOrd {
    /// Uniform draw from `[lo, hi)` or `[lo, hi]` when `inclusive`.
    fn sample_between<R: RngCore>(rng: &mut R, lo: Self, hi: Self, inclusive: bool) -> Self;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_single<R: RngCore>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "gen_range over empty range");
        T::sample_between(rng, self.start, self.end, false)
    }
}

impl<T: SampleUniform + Copy> SampleRange<T> for RangeInclusive<T> {
    fn sample_single<R: RngCore>(self, rng: &mut R) -> T {
        let (start, end) = (*self.start(), *self.end());
        assert!(start <= end, "gen_range over empty range");
        T::sample_between(rng, start, end, true)
    }
}

fn sample_f64<R: RngCore>(rng: &mut R) -> f64 {
    // 53 random mantissa bits in [0, 1)
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Lemire-style bounded draw without modulo bias (bias is negligible for the
/// workloads here, but the widening multiply is also simply fast).
pub(crate) fn bounded_u64<R: RngCore>(rng: &mut R, bound: u64) -> u64 {
    debug_assert!(bound > 0);
    ((rng.next_u64() as u128 * bound as u128) >> 64) as u64
}

macro_rules! int_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_between<R: RngCore>(rng: &mut R, lo: Self, hi: Self, inclusive: bool) -> Self {
                let span = (hi as i128 - lo as i128) as u128 + inclusive as u128;
                let draw = (rng.next_u64() as u128).wrapping_mul(span) >> 64;
                (lo as i128 + draw as i128) as $t
            }
        }
    )*};
}

int_sample_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleUniform for f64 {
    fn sample_between<R: RngCore>(rng: &mut R, lo: Self, hi: Self, _inclusive: bool) -> Self {
        lo + sample_f64(rng) * (hi - lo)
    }
}

impl SampleUniform for f32 {
    fn sample_between<R: RngCore>(rng: &mut R, lo: Self, hi: Self, _inclusive: bool) -> Self {
        lo + (sample_f64(rng) as f32) * (hi - lo)
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::*;

    #[test]
    fn deterministic_for_seed() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v = rng.gen_range(3usize..17);
            assert!((3..17).contains(&v));
            let f = rng.gen_range(-2.0f64..2.0);
            assert!((-2.0..2.0).contains(&f));
            let i = rng.gen_range(-5i64..5);
            assert!((-5..5).contains(&i));
            let inc = rng.gen_range(0.7f64..=1.0);
            assert!((0.7..=1.0).contains(&inc));
        }
    }

    #[test]
    fn full_range_coverage() {
        let mut rng = SmallRng::seed_from_u64(2);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            seen[rng.gen_range(0usize..10)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = SmallRng::seed_from_u64(3);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }
}
