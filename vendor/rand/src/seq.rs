//! Slice sampling helpers.

use crate::Rng;

/// Random operations on slices.
pub trait SliceRandom {
    type Item;

    /// Fisher–Yates shuffle in place.
    fn shuffle<R: Rng>(&mut self, rng: &mut R);

    /// `amount` distinct elements, in random order. Returns fewer when the
    /// slice is shorter than `amount`.
    fn choose_multiple<'a, R: Rng>(
        &'a self,
        rng: &mut R,
        amount: usize,
    ) -> std::vec::IntoIter<&'a Self::Item>;

    /// One uniformly chosen element, or `None` on an empty slice.
    fn choose<'a, R: Rng>(&'a self, rng: &mut R) -> Option<&'a Self::Item>;
}

impl<T> SliceRandom for [T] {
    type Item = T;

    fn shuffle<R: Rng>(&mut self, rng: &mut R) {
        for i in (1..self.len()).rev() {
            let j = crate::bounded_u64(rng, i as u64 + 1) as usize;
            self.swap(i, j);
        }
    }

    fn choose_multiple<'a, R: Rng>(
        &'a self,
        rng: &mut R,
        amount: usize,
    ) -> std::vec::IntoIter<&'a T> {
        // partial Fisher–Yates over an index table
        let n = self.len();
        let amount = amount.min(n);
        let mut indices: Vec<usize> = (0..n).collect();
        for i in 0..amount {
            let j = i + crate::bounded_u64(rng, (n - i) as u64) as usize;
            indices.swap(i, j);
        }
        indices[..amount]
            .iter()
            .map(|&i| &self[i])
            .collect::<Vec<_>>()
            .into_iter()
    }

    fn choose<'a, R: Rng>(&'a self, rng: &mut R) -> Option<&'a T> {
        if self.is_empty() {
            None
        } else {
            Some(&self[crate::bounded_u64(rng, self.len() as u64) as usize])
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::SmallRng;
    use crate::SeedableRng;

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = SmallRng::seed_from_u64(11);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn choose_multiple_distinct() {
        let mut rng = SmallRng::seed_from_u64(12);
        let v: Vec<u32> = (0..100).collect();
        let picked: Vec<u32> = v.choose_multiple(&mut rng, 30).copied().collect();
        assert_eq!(picked.len(), 30);
        let set: std::collections::HashSet<u32> = picked.iter().copied().collect();
        assert_eq!(set.len(), 30);
        // over-asking caps at slice length
        assert_eq!(v.choose_multiple(&mut rng, 1000).count(), 100);
    }
}
