//! Offline vendored stand-in for `serde_json`.
//!
//! Bridges JSON text to the vendored mini-serde's `Content` data model:
//! `from_str` parses text into `Content` and hands it to `Deserialize`;
//! `to_string` collects a value into `Content` and renders JSON text.
//! `Value`/`Number`/`Map` mirror the upstream API surface this workspace
//! uses (match on variants, `Map::keys`/`get`, by-value iteration,
//! integer-preserving `Number` display).

use std::fmt;

use serde::__private::{Content, ContentDeserializer};
use serde::{Deserialize, Serialize};

mod parse;
mod write;

pub use parse::parse_content;

/// JSON error (parse or data-shape mismatch).
#[derive(Debug, Clone)]
pub struct Error(pub(crate) String);

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for Error {}

impl serde::ser::Error for Error {
    fn custom<T: fmt::Display>(msg: T) -> Self {
        Error(msg.to_string())
    }
}

impl serde::de::Error for Error {
    fn custom<T: fmt::Display>(msg: T) -> Self {
        Error(msg.to_string())
    }
}

/// JSON number preserving its integer/float parse shape, so `30` renders
/// back as `30` (not `30.0`) while `41.5` stays `41.5`.
#[derive(Debug, Clone, PartialEq)]
pub enum Number {
    I64(i64),
    U64(u64),
    F64(f64),
}

impl Number {
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Number::I64(v) => Some(v as f64),
            Number::U64(v) => Some(v as f64),
            Number::F64(v) => Some(v),
        }
    }

    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            Number::I64(v) => Some(v),
            Number::U64(v) => i64::try_from(v).ok(),
            Number::F64(_) => None,
        }
    }
}

impl fmt::Display for Number {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Number::I64(v) => write!(f, "{v}"),
            Number::U64(v) => write!(f, "{v}"),
            Number::F64(v) => write!(f, "{}", write::format_f64(*v)),
        }
    }
}

/// Insertion-ordered JSON object.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Map {
    entries: Vec<(String, Value)>,
}

impl Map {
    pub fn new() -> Self {
        Map::default()
    }

    pub fn insert(&mut self, key: String, value: Value) -> Option<Value> {
        match self.entries.iter_mut().find(|(k, _)| *k == key) {
            Some((_, v)) => Some(std::mem::replace(v, value)),
            None => {
                self.entries.push((key, value));
                None
            }
        }
    }

    pub fn get(&self, key: &str) -> Option<&Value> {
        self.entries.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    pub fn keys(&self) -> impl Iterator<Item = &String> {
        self.entries.iter().map(|(k, _)| k)
    }

    pub fn iter(&self) -> impl Iterator<Item = (&String, &Value)> {
        self.entries.iter().map(|(k, v)| (k, v))
    }

    pub fn len(&self) -> usize {
        self.entries.len()
    }

    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

impl IntoIterator for Map {
    type Item = (String, Value);
    type IntoIter = std::vec::IntoIter<(String, Value)>;

    fn into_iter(self) -> Self::IntoIter {
        self.entries.into_iter()
    }
}

impl<'a> IntoIterator for &'a Map {
    type Item = (&'a String, &'a Value);
    type IntoIter = Box<dyn Iterator<Item = (&'a String, &'a Value)> + 'a>;

    fn into_iter(self) -> Self::IntoIter {
        Box::new(self.entries.iter().map(|(k, v)| (k, v)))
    }
}

/// A parsed JSON document.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    Number(Number),
    String(String),
    Array(Vec<Value>),
    Object(Map),
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", write::write_content(&value_to_content(self)))
    }
}

pub(crate) fn content_to_value(content: Content) -> Value {
    match content {
        Content::Null => Value::Null,
        Content::Bool(b) => Value::Bool(b),
        Content::I64(v) => Value::Number(Number::I64(v)),
        Content::U64(v) => Value::Number(Number::U64(v)),
        Content::F64(v) => Value::Number(Number::F64(v)),
        Content::Str(s) => Value::String(s),
        Content::Seq(items) => Value::Array(items.into_iter().map(content_to_value).collect()),
        Content::Map(pairs) => {
            let mut map = Map::new();
            for (k, v) in pairs {
                map.insert(k, content_to_value(v));
            }
            Value::Object(map)
        }
    }
}

pub(crate) fn value_to_content(value: &Value) -> Content {
    match value {
        Value::Null => Content::Null,
        Value::Bool(b) => Content::Bool(*b),
        Value::Number(Number::I64(v)) => Content::I64(*v),
        Value::Number(Number::U64(v)) => Content::U64(*v),
        Value::Number(Number::F64(v)) => Content::F64(*v),
        Value::String(s) => Content::Str(s.clone()),
        Value::Array(items) => Content::Seq(items.iter().map(value_to_content).collect()),
        Value::Object(map) => {
            Content::Map(map.iter().map(|(k, v)| (k.clone(), value_to_content(v))).collect())
        }
    }
}

impl Serialize for Value {
    fn serialize<S: serde::Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_content(value_to_content(self))
    }
}

impl<'de> Deserialize<'de> for Value {
    fn deserialize<D: serde::Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        Ok(content_to_value(deserializer.take_content()?))
    }
}

/// Parse JSON text and deserialize into `T`.
pub fn from_str<'de, T: Deserialize<'de>>(text: &str) -> Result<T, Error> {
    let content = parse::parse_content(text).map_err(Error)?;
    T::deserialize(ContentDeserializer::new(content)).map_err(|e| Error(e.to_string()))
}

/// Serialize a value to compact JSON text.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let content =
        serde::__private::to_content(value).map_err(|e| Error(e.to_string()))?;
    Ok(write::write_content(&content))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn value_roundtrip() {
        let v: Value =
            from_str(r#"{"a": [1, 2.5, null], "b": "x\ny", "c": true}"#).unwrap();
        let Value::Object(map) = &v else { panic!("expected object") };
        assert_eq!(map.keys().collect::<Vec<_>>(), ["a", "b", "c"]);
        assert_eq!(map.get("b"), Some(&Value::String("x\ny".into())));
        let text = v.to_string();
        let back: Value = from_str(&text).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn number_display_preserves_shape() {
        let v: Value = from_str(r#"[30, 41.5, -7]"#).unwrap();
        let Value::Array(items) = v else { panic!() };
        let shown: Vec<String> = items
            .iter()
            .map(|v| match v {
                Value::Number(n) => n.to_string(),
                _ => panic!(),
            })
            .collect();
        assert_eq!(shown, ["30", "41.5", "-7"]);
    }

    #[test]
    fn invalid_text_errors() {
        assert!(from_str::<Value>("not json").is_err());
        assert!(from_str::<Value>(r#"{"a": }"#).is_err());
        assert!(from_str::<Value>("[1, 2").is_err());
        assert!(from_str::<Value>(r#"{"a": 1} trailing"#).is_err());
    }

    #[test]
    fn typed_roundtrip() {
        let v: Vec<Option<f64>> = from_str("[1, null, 2.5]").unwrap();
        assert_eq!(v, vec![Some(1.0), None, Some(2.5)]);
        let text = to_string(&v).unwrap();
        let back: Vec<Option<f64>> = from_str(&text).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn string_escapes() {
        let text = to_string("quote \" slash \\ tab \t").unwrap();
        assert_eq!(text, r#""quote \" slash \\ tab \t""#);
        let back: String = from_str(&text).unwrap();
        assert_eq!(back, "quote \" slash \\ tab \t");
    }
}
