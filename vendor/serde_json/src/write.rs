//! Compact JSON text writer for `Content` trees.

use serde::__private::Content;

/// Render a float the way JSON expects: finite values via Rust's shortest
/// representation, non-finite values as `null` (JSON has no NaN/Infinity).
pub(crate) fn format_f64(v: f64) -> String {
    if v.is_finite() {
        let mut s = format!("{v}");
        // keep it recognisably a float so it reparses as F64
        if !s.contains('.') && !s.contains('e') && !s.contains('E') {
            s.push_str(".0");
        }
        s
    } else {
        "null".to_string()
    }
}

pub(crate) fn write_content(content: &Content) -> String {
    let mut out = String::new();
    write_into(content, &mut out);
    out
}

fn write_into(content: &Content, out: &mut String) {
    match content {
        Content::Null => out.push_str("null"),
        Content::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Content::I64(v) => out.push_str(&v.to_string()),
        Content::U64(v) => out.push_str(&v.to_string()),
        Content::F64(v) => out.push_str(&format_f64(*v)),
        Content::Str(s) => write_string(s, out),
        Content::Seq(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_into(item, out);
            }
            out.push(']');
        }
        Content::Map(pairs) => {
            out.push('{');
            for (i, (k, v)) in pairs.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_string(k, out);
                out.push(':');
                write_into(v, out);
            }
            out.push('}');
        }
    }
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn floats_stay_floats() {
        assert_eq!(format_f64(41.5), "41.5");
        assert_eq!(format_f64(30.0), "30.0");
        assert_eq!(format_f64(f64::NAN), "null");
    }

    #[test]
    fn renders_nested() {
        let c = Content::Map(vec![
            ("a".into(), Content::Seq(vec![Content::I64(1), Content::Null])),
            ("b".into(), Content::Str("x\"y".into())),
        ]);
        assert_eq!(write_content(&c), r#"{"a":[1,null],"b":"x\"y"}"#);
    }
}
