//! Recursive-descent JSON text parser producing `Content` trees.

use serde::__private::Content;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

/// Parse a complete JSON document; trailing non-whitespace is an error.
pub fn parse_content(text: &str) -> Result<Content, String> {
    let mut p = Parser { bytes: text.as_bytes(), pos: 0 };
    p.skip_ws();
    let value = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing characters at offset {}", p.pos));
    }
    Ok(value)
}

impl<'a> Parser<'a> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, byte: u8) -> Result<(), String> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!(
                "expected '{}' at offset {}",
                byte as char, self.pos
            ))
        }
    }

    fn literal(&mut self, word: &str, value: Content) -> Result<Content, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(format!("invalid literal at offset {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Content, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => self.string().map(Content::Str),
            Some(b't') => self.literal("true", Content::Bool(true)),
            Some(b'f') => self.literal("false", Content::Bool(false)),
            Some(b'n') => self.literal("null", Content::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(c) => Err(format!(
                "unexpected character '{}' at offset {}",
                c as char, self.pos
            )),
            None => Err("unexpected end of input".to_string()),
        }
    }

    fn object(&mut self) -> Result<Content, String> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Content::Map(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Content::Map(pairs));
                }
                _ => return Err(format!("expected ',' or '}}' at offset {}", self.pos)),
            }
        }
    }

    fn array(&mut self) -> Result<Content, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Content::Seq(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Content::Seq(items));
                }
                _ => return Err(format!("expected ',' or ']' at offset {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".to_string()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        Some(b'r') => out.push('\r'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let cp = self.unicode_escape()?;
                            out.push(cp);
                            continue; // unicode_escape advanced past the digits
                        }
                        other => {
                            return Err(format!("invalid escape {other:?} at offset {}", self.pos))
                        }
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // copy one UTF-8 scalar (multi-byte safe)
                    let rest = &self.bytes[self.pos..];
                    let text = std::str::from_utf8(rest)
                        .map_err(|_| "invalid utf-8 in string".to_string())?;
                    let ch = text.chars().next().unwrap();
                    out.push(ch);
                    self.pos += ch.len_utf8();
                }
            }
        }
    }

    /// Parse the 4 hex digits after `\u` (the `u` is current). Handles
    /// surrogate pairs for completeness.
    fn unicode_escape(&mut self) -> Result<char, String> {
        self.pos += 1; // past 'u'
        let hi = self.hex4()?;
        if (0xD800..0xDC00).contains(&hi) {
            // high surrogate: require a following \uXXXX low surrogate
            if self.bytes[self.pos..].starts_with(b"\\u") {
                self.pos += 2;
                let lo = self.hex4()?;
                if (0xDC00..0xE000).contains(&lo) {
                    let cp = 0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
                    return char::from_u32(cp).ok_or_else(|| "invalid surrogate".to_string());
                }
            }
            return Err("lone surrogate in \\u escape".to_string());
        }
        char::from_u32(hi).ok_or_else(|| "invalid \\u escape".to_string())
    }

    fn hex4(&mut self) -> Result<u32, String> {
        let digits = self
            .bytes
            .get(self.pos..self.pos + 4)
            .ok_or_else(|| "truncated \\u escape".to_string())?;
        let text = std::str::from_utf8(digits).map_err(|_| "bad \\u escape".to_string())?;
        let value =
            u32::from_str_radix(text, 16).map_err(|_| "bad \\u escape".to_string())?;
        self.pos += 4;
        Ok(value)
    }

    fn number(&mut self) -> Result<Content, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(c) = self.peek() {
            match c {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        if !is_float {
            if let Ok(v) = text.parse::<i64>() {
                return Ok(Content::I64(v));
            }
            if let Ok(v) = text.parse::<u64>() {
                return Ok(Content::U64(v));
            }
        }
        text.parse::<f64>()
            .map(Content::F64)
            .map_err(|_| format!("invalid number '{text}' at offset {start}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars() {
        assert_eq!(parse_content("true").unwrap(), Content::Bool(true));
        assert_eq!(parse_content("null").unwrap(), Content::Null);
        assert_eq!(parse_content("-12").unwrap(), Content::I64(-12));
        assert_eq!(parse_content("3.25e2").unwrap(), Content::F64(325.0));
        assert_eq!(
            parse_content("18446744073709551615").unwrap(),
            Content::U64(u64::MAX)
        );
    }

    #[test]
    fn unicode_escapes() {
        assert_eq!(
            parse_content(r#""é😀""#).unwrap(),
            Content::Str("é😀".to_string())
        );
    }

    #[test]
    fn nested() {
        let c = parse_content(r#"{"xs": [{"y": 1}, {"y": 2}]}"#).unwrap();
        let Content::Map(pairs) = c else { panic!() };
        assert_eq!(pairs.len(), 1);
        let Content::Seq(items) = &pairs[0].1 else { panic!() };
        assert_eq!(items.len(), 2);
    }

    #[test]
    fn errors() {
        assert!(parse_content("").is_err());
        assert!(parse_content("tru").is_err());
        assert!(parse_content("{\"a\" 1}").is_err());
        assert!(parse_content("[1,]").is_err());
    }
}
