//! Offline vendored stand-in for `serde_derive`.
//!
//! Implements `#[derive(Serialize)]` / `#[derive(Deserialize)]` for the two
//! shapes this workspace uses, without syn/quote (unavailable offline):
//!
//! - structs with named fields, honouring `#[serde(with = "module")]`
//! - fieldless enums (serialized as the variant name string)
//!
//! The generated code targets the vendored mini-serde's `Content` data
//! model: structs become `Content::Map`, enum variants `Content::Str`.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[derive(Debug)]
struct Field {
    name: String,
    /// Path given via `#[serde(with = "...")]`, if any.
    with: Option<String>,
}

#[derive(Debug)]
enum Item {
    Struct { name: String, fields: Vec<Field> },
    Enum { name: String, variants: Vec<String> },
}

/// Parse the derive input far enough to know the type name and its
/// fields/variants. Panics (= compile error) on unsupported shapes.
fn parse_item(input: TokenStream) -> Item {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;

    // skip attributes and visibility
    loop {
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => i += 2, // #[...]
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                i += 1;
                if let Some(TokenTree::Group(g)) = tokens.get(i) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        i += 1; // pub(crate)
                    }
                }
            }
            _ => break,
        }
    }

    let kind = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("expected struct/enum, got {other:?}"),
    };
    i += 1;
    let name = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("expected type name, got {other:?}"),
    };
    i += 1;

    // no generics support
    if let Some(TokenTree::Punct(p)) = tokens.get(i) {
        if p.as_char() == '<' {
            panic!("vendored serde_derive does not support generic types");
        }
    }

    let body = loop {
        match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => break g,
            Some(_) => i += 1,
            None => panic!("expected {{ ... }} body for {name}"),
        }
    };

    match kind.as_str() {
        "struct" => Item::Struct { name, fields: parse_fields(body.stream()) },
        "enum" => Item::Enum { name, variants: parse_variants(body.stream()) },
        other => panic!("cannot derive for {other}"),
    }
}

/// Extract `with = "path"` from a `#[serde(...)]` attribute group, if present.
fn serde_with_attr(group_tokens: Vec<TokenTree>) -> Option<String> {
    // group_tokens are the tokens inside the outer [ ... ]
    let mut iter = group_tokens.into_iter();
    match iter.next() {
        Some(TokenTree::Ident(id)) if id.to_string() == "serde" => {}
        _ => return None,
    }
    let inner = match iter.next() {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => g.stream(),
        _ => return None,
    };
    let parts: Vec<TokenTree> = inner.into_iter().collect();
    // looking for: with = "path"
    for w in 0..parts.len() {
        if let TokenTree::Ident(id) = &parts[w] {
            if id.to_string() == "with" {
                if let Some(TokenTree::Literal(lit)) = parts.get(w + 2) {
                    let text = lit.to_string();
                    return Some(text.trim_matches('"').to_string());
                }
            }
        }
    }
    None
}

fn parse_fields(stream: TokenStream) -> Vec<Field> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        let mut with = None;
        // attributes
        while let Some(TokenTree::Punct(p)) = tokens.get(i) {
            if p.as_char() != '#' {
                break;
            }
            if let Some(TokenTree::Group(g)) = tokens.get(i + 1) {
                if let Some(path) = serde_with_attr(g.stream().into_iter().collect()) {
                    with = Some(path);
                }
            }
            i += 2;
        }
        // visibility
        if let Some(TokenTree::Ident(id)) = tokens.get(i) {
            if id.to_string() == "pub" {
                i += 1;
                if let Some(TokenTree::Group(g)) = tokens.get(i) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        i += 1;
                    }
                }
            }
        }
        let name = match tokens.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            None => break,
            other => panic!("expected field name, got {other:?}"),
        };
        i += 1;
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => i += 1,
            other => panic!("expected : after field {name}, got {other:?}"),
        }
        // skip the type: consume until a comma at angle-bracket depth 0
        let mut depth = 0i32;
        while let Some(tok) = tokens.get(i) {
            match tok {
                TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => break,
                _ => {}
            }
            i += 1;
        }
        i += 1; // consume comma (or run off the end)
        fields.push(Field { name, with });
    }
    fields
}

fn parse_variants(stream: TokenStream) -> Vec<String> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        // attributes
        while let Some(TokenTree::Punct(p)) = tokens.get(i) {
            if p.as_char() != '#' {
                break;
            }
            i += 2;
        }
        match tokens.get(i) {
            Some(TokenTree::Ident(id)) => {
                variants.push(id.to_string());
                i += 1;
            }
            None => break,
            other => panic!("expected enum variant, got {other:?}"),
        }
        match tokens.get(i) {
            None => break,
            Some(TokenTree::Punct(p)) if p.as_char() == ',' => i += 1,
            Some(TokenTree::Group(_)) => {
                panic!("vendored serde_derive supports only fieldless enum variants")
            }
            other => panic!("unexpected token after variant: {other:?}"),
        }
    }
    variants
}

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let code = match parse_item(input) {
        Item::Struct { name, fields } => {
            let mut pushes = String::new();
            for f in &fields {
                let value_expr = match &f.with {
                    Some(path) => format!(
                        "{path}::serialize(&self.{field}, serde::__private::ContentSerializer)",
                        field = f.name
                    ),
                    None => format!("serde::__private::to_content(&self.{})", f.name),
                };
                pushes.push_str(&format!(
                    "__map.push((\"{field}\".to_string(), {value_expr}\
                     .map_err(<S::Error as serde::ser::Error>::custom)?));\n",
                    field = f.name
                ));
            }
            format!(
                "impl serde::Serialize for {name} {{\n\
                     fn serialize<S: serde::Serializer>(&self, serializer: S)\n\
                         -> Result<S::Ok, S::Error> {{\n\
                         let mut __map: Vec<(String, serde::__private::Content)> = Vec::new();\n\
                         {pushes}\
                         serializer.serialize_content(serde::__private::Content::Map(__map))\n\
                     }}\n\
                 }}"
            )
        }
        Item::Enum { name, variants } => {
            let arms: String = variants
                .iter()
                .map(|v| format!("{name}::{v} => \"{v}\",\n"))
                .collect();
            format!(
                "impl serde::Serialize for {name} {{\n\
                     fn serialize<S: serde::Serializer>(&self, serializer: S)\n\
                         -> Result<S::Ok, S::Error> {{\n\
                         let __label = match self {{ {arms} }};\n\
                         serializer.serialize_str(__label)\n\
                     }}\n\
                 }}"
            )
        }
    };
    code.parse().expect("derive(Serialize) generated invalid Rust")
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let code = match parse_item(input) {
        Item::Struct { name, fields } => {
            let mut inits = String::new();
            for f in &fields {
                let value_expr = match &f.with {
                    Some(path) => format!(
                        "{path}::deserialize(serde::__private::ContentDeserializer::new(\
                         serde::__private::take_field(&mut __map, \"{field}\")))",
                        field = f.name
                    ),
                    None => format!(
                        "serde::Deserialize::deserialize(\
                         serde::__private::ContentDeserializer::new(\
                         serde::__private::take_field(&mut __map, \"{field}\")))",
                        field = f.name
                    ),
                };
                inits.push_str(&format!(
                    "{field}: {value_expr}.map_err(<D::Error as serde::de::Error>::custom)?,\n",
                    field = f.name
                ));
            }
            format!(
                "impl<'de> serde::Deserialize<'de> for {name} {{\n\
                     fn deserialize<D: serde::Deserializer<'de>>(deserializer: D)\n\
                         -> Result<Self, D::Error> {{\n\
                         let mut __map = match deserializer.take_content()? {{\n\
                             serde::__private::Content::Map(m) => m,\n\
                             other => return Err(<D::Error as serde::de::Error>::custom(\n\
                                 format!(\"expected map for {name}, got {{other:?}}\"))),\n\
                         }};\n\
                         Ok({name} {{ {inits} }})\n\
                     }}\n\
                 }}"
            )
        }
        Item::Enum { name, variants } => {
            let arms: String = variants
                .iter()
                .map(|v| format!("\"{v}\" => Ok({name}::{v}),\n"))
                .collect();
            format!(
                "impl<'de> serde::Deserialize<'de> for {name} {{\n\
                     fn deserialize<D: serde::Deserializer<'de>>(deserializer: D)\n\
                         -> Result<Self, D::Error> {{\n\
                         let __label = match deserializer.take_content()? {{\n\
                             serde::__private::Content::Str(s) => s,\n\
                             other => return Err(<D::Error as serde::de::Error>::custom(\n\
                                 format!(\"expected string for {name}, got {{other:?}}\"))),\n\
                         }};\n\
                         match __label.as_str() {{\n\
                             {arms}\n\
                             other => Err(<D::Error as serde::de::Error>::custom(\n\
                                 format!(\"unknown {name} variant {{other}}\"))),\n\
                         }}\n\
                     }}\n\
                 }}"
            )
        }
    };
    code.parse().expect("derive(Deserialize) generated invalid Rust")
}
