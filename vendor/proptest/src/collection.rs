//! Collection strategies.

use std::ops::{Range, RangeInclusive};

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Size specification for [`vec`]: an exact length or a length range.
#[derive(Debug, Clone)]
pub struct SizeRange {
    lo: usize,
    hi: usize, // exclusive
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { lo: n, hi: n + 1 }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty vec size range");
        SizeRange { lo: r.start, hi: r.end }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        SizeRange { lo: *r.start(), hi: *r.end() + 1 }
    }
}

/// `Vec` strategy: `size` elements drawn from `element`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy { element, size: size.into() }
}

pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn new_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len = if self.size.lo + 1 == self.size.hi {
            self.size.lo
        } else {
            self.size.lo + rng.below((self.size.hi - self.size.lo) as u64) as usize
        };
        (0..len).map(|_| self.element.new_value(rng)).collect()
    }
}
