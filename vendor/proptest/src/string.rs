//! Regex-subset string generation.
//!
//! Proptest interprets `&str` strategies as regexes. This stand-in supports
//! the subset the workspace's tests use: literal characters, escapes,
//! character classes with ranges (`[a-zA-Z0-9_]`), the `\PC` ("any
//! non-control character") shorthand, and the quantifiers `{m}`, `{m,n}`,
//! `*`, `+`, `?` (starred forms capped at 8 repeats).

use crate::test_runner::TestRng;

#[derive(Debug, Clone)]
enum Atom {
    /// Choose uniformly from this pool.
    OneOf(Vec<char>),
}

#[derive(Debug, Clone)]
struct Piece {
    atom: Atom,
    min: usize,
    max: usize, // inclusive
}

/// Characters `\PC` may produce: printable ASCII plus a few multi-byte
/// code points so UTF-8 handling gets exercised.
fn printable_pool() -> Vec<char> {
    let mut pool: Vec<char> = (0x20u8..0x7F).map(|b| b as char).collect();
    pool.extend(['é', 'ß', 'λ', '中', '✓']);
    pool
}

fn parse(pattern: &str) -> Vec<Piece> {
    let chars: Vec<char> = pattern.chars().collect();
    let mut i = 0;
    let mut pieces = Vec::new();
    while i < chars.len() {
        let atom = match chars[i] {
            '[' => {
                let (pool, next) = parse_class(&chars, i + 1);
                i = next;
                Atom::OneOf(pool)
            }
            '\\' => {
                i += 1;
                let c = *chars.get(i).unwrap_or_else(|| panic!("dangling \\ in {pattern}"));
                i += 1;
                match c {
                    'P' | 'p' => {
                        // \PC / \pC (optionally braced): treat as "printable"
                        if chars.get(i) == Some(&'{') {
                            while i < chars.len() && chars[i] != '}' {
                                i += 1;
                            }
                            i += 1;
                        } else {
                            i += 1; // the category letter
                        }
                        Atom::OneOf(printable_pool())
                    }
                    'n' => Atom::OneOf(vec!['\n']),
                    't' => Atom::OneOf(vec!['\t']),
                    'r' => Atom::OneOf(vec!['\r']),
                    'd' => Atom::OneOf(('0'..='9').collect()),
                    'w' => {
                        let mut pool: Vec<char> = ('a'..='z').collect();
                        pool.extend('A'..='Z');
                        pool.extend('0'..='9');
                        pool.push('_');
                        Atom::OneOf(pool)
                    }
                    other => Atom::OneOf(vec![other]),
                }
            }
            '.' => {
                i += 1;
                Atom::OneOf(printable_pool())
            }
            c => {
                i += 1;
                Atom::OneOf(vec![c])
            }
        };
        // quantifier
        let (min, max) = match chars.get(i) {
            Some('{') => {
                let close = chars[i..]
                    .iter()
                    .position(|&c| c == '}')
                    .map(|p| i + p)
                    .unwrap_or_else(|| panic!("unclosed {{ in {pattern}"));
                let spec: String = chars[i + 1..close].iter().collect();
                i = close + 1;
                match spec.split_once(',') {
                    Some((lo, hi)) => (
                        lo.trim().parse().expect("bad quantifier"),
                        hi.trim().parse().expect("bad quantifier"),
                    ),
                    None => {
                        let n = spec.trim().parse().expect("bad quantifier");
                        (n, n)
                    }
                }
            }
            Some('*') => {
                i += 1;
                (0, 8)
            }
            Some('+') => {
                i += 1;
                (1, 8)
            }
            Some('?') => {
                i += 1;
                (0, 1)
            }
            _ => (1, 1),
        };
        pieces.push(Piece { atom, min, max });
    }
    pieces
}

/// Parse a `[...]` class starting after the `[`; returns the pool and the
/// index just past the closing `]`.
fn parse_class(chars: &[char], mut i: usize) -> (Vec<char>, usize) {
    let mut pool = Vec::new();
    // leading ^ (negation over printable ASCII)
    let negated = chars.get(i) == Some(&'^');
    if negated {
        i += 1;
    }
    let mut members: Vec<char> = Vec::new();
    while i < chars.len() && chars[i] != ']' {
        let c = match chars[i] {
            '\\' => {
                i += 1;
                match chars[i] {
                    'n' => '\n',
                    't' => '\t',
                    'r' => '\r',
                    other => other,
                }
            }
            c => c,
        };
        i += 1;
        // range `a-z` (a `-` that is not last in the class)
        if chars.get(i) == Some(&'-') && chars.get(i + 1).is_some_and(|&n| n != ']') {
            i += 1;
            let hi = match chars[i] {
                '\\' => {
                    i += 1;
                    chars[i]
                }
                c => c,
            };
            i += 1;
            members.extend((c as u32..=hi as u32).filter_map(char::from_u32));
        } else {
            members.push(c);
        }
    }
    i += 1; // consume ']'
    if negated {
        pool.extend(printable_pool().into_iter().filter(|c| !members.contains(c)));
    } else {
        pool = members;
    }
    assert!(!pool.is_empty(), "empty character class");
    (pool, i)
}

/// Generate one string matching `pattern`.
pub fn generate(pattern: &str, rng: &mut TestRng) -> String {
    let pieces = parse(pattern);
    let mut out = String::new();
    for piece in &pieces {
        let n = if piece.min == piece.max {
            piece.min
        } else {
            piece.min + rng.below((piece.max - piece.min + 1) as u64) as usize
        };
        let Atom::OneOf(pool) = &piece.atom;
        for _ in 0..n {
            out.push(pool[rng.below(pool.len() as u64) as usize]);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> TestRng {
        TestRng::from_seed(42)
    }

    #[test]
    fn class_with_quantifier() {
        let mut r = rng();
        for _ in 0..50 {
            let s = generate("[a-z]{1,8}", &mut r);
            assert!(!s.is_empty() && s.len() <= 8);
            assert!(s.chars().all(|c| c.is_ascii_lowercase()));
        }
    }

    #[test]
    fn printable_any() {
        let mut r = rng();
        for _ in 0..50 {
            let s = generate("\\PC{0,30}", &mut r);
            assert!(s.chars().count() <= 30);
            assert!(s.chars().all(|c| !c.is_control()));
        }
    }

    #[test]
    fn literal_prefix_and_class() {
        let mut r = rng();
        let s = generate("[a-z][a-z0-9_]{0,8}", &mut r);
        assert!(s.chars().next().unwrap().is_ascii_lowercase());
    }

    #[test]
    fn class_with_escapes() {
        let mut r = rng();
        for _ in 0..50 {
            let s = generate("[a-zA-Z0-9,\"\\n ]{0,12}", &mut r);
            assert!(s
                .chars()
                .all(|c| c.is_ascii_alphanumeric() || ",\"\n ".contains(c)));
        }
    }

    #[test]
    fn space_to_tilde_range() {
        let mut r = rng();
        let s = generate("[ -~\n]{0,200}", &mut r);
        assert!(s.chars().all(|c| (' '..='~').contains(&c) || c == '\n'));
    }
}
