//! Deterministic RNG and failure reporting for generated cases.

use rand::rngs::SmallRng;
use rand::{RngCore as _, SeedableRng as _};

/// RNG handed to strategies.
#[derive(Debug, Clone)]
pub struct TestRng(SmallRng);

impl TestRng {
    pub fn from_seed(seed: u64) -> Self {
        TestRng(SmallRng::seed_from_u64(seed))
    }

    pub fn next_u64(&mut self) -> u64 {
        self.0.next_u64()
    }

    /// Uniform draw in `[0, bound)`.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0);
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }

    /// Uniform integer in `[lo, hi)` over the i128 domain.
    pub fn gen_range_int(&mut self, lo: i128, hi: i128) -> i128 {
        assert!(lo < hi, "strategy range is empty");
        let span = (hi - lo) as u128;
        let draw = ((self.next_u64() as u128) * span) >> 64;
        lo + draw as i128
    }

    /// Uniform f64 in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Why a generated case did not pass: a genuine failure, or a
/// `prop_assume!` rejection (case skipped, not failed).
#[derive(Debug, Clone)]
pub enum TestCaseError {
    Fail(String),
    Reject(String),
}

impl TestCaseError {
    pub fn fail(message: impl Into<String>) -> Self {
        TestCaseError::Fail(message.into())
    }

    pub fn reject(message: impl Into<String>) -> Self {
        TestCaseError::Reject(message.into())
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TestCaseError::Fail(m) => write!(f, "{m}"),
            TestCaseError::Reject(m) => write!(f, "rejected: {m}"),
        }
    }
}

/// Placeholder for API compatibility (`TestRunner` appears in some
/// signatures upstream); unused by the macro-driven runner here.
#[derive(Debug, Default)]
pub struct TestRunner;
