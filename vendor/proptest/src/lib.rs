//! Offline vendored stand-in for `proptest`.
//!
//! Implements the subset this workspace's property tests use: the
//! [`proptest!`] macro (with `#![proptest_config(...)]`), range and regex-ish
//! string strategies, `collection::vec`, `prop_oneof!`, `Just`,
//! `prop_map`/`prop_flat_map`, and the `prop_assert*` macros.
//!
//! Semantics: each test body runs `cases` times against values drawn from a
//! deterministic RNG seeded per test. Failing cases report the generated
//! inputs via `Debug`. Shrinking is not implemented — a failure reports the
//! raw case instead of a minimal one, which is enough for CI.

pub mod collection;
pub mod num;
pub mod strategy;
pub mod string;
pub mod test_runner;

pub mod prelude {
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{TestCaseError, TestRunner};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
        ProptestConfig,
    };
    pub use crate::arbitrary::any;
}

pub mod arbitrary {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    #[allow(unused_imports)]
    use crate::num;

    /// Minimal `any::<T>()` support for primitives.
    pub trait Arbitrary: Sized {
        fn arbitrary_one(rng: &mut TestRng) -> Self;
    }

    macro_rules! arb_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary_one(rng: &mut TestRng) -> Self {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    arb_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary_one(rng: &mut TestRng) -> Self {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for f64 {
        fn arbitrary_one(rng: &mut TestRng) -> Self {
            crate::num::f64::ANY.new_value(rng)
        }
    }

    /// Strategy producing arbitrary values of `T`.
    pub fn any<T: Arbitrary + std::fmt::Debug>() -> AnyStrategy<T> {
        AnyStrategy(std::marker::PhantomData)
    }

    pub struct AnyStrategy<T>(std::marker::PhantomData<T>);

    impl<T: Arbitrary + std::fmt::Debug> Strategy for AnyStrategy<T> {
        type Value = T;
        fn new_value(&self, rng: &mut TestRng) -> T {
            T::arbitrary_one(rng)
        }
    }
}

/// Per-test configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// The test macro. Supported grammar:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]   // optional
///     #[test]
///     fn name(a in strategy_a, b in strategy_b) { body }
///     ...
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    // with a config header
    (
        #![proptest_config($config:expr)]
        $(
            $(#[$meta:meta])+
            fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])+
            fn $name() {
                $crate::__run_proptest!($config, $name, ($($arg in $strat),+), $body);
            }
        )*
    };
    // default config
    (
        $(
            $(#[$meta:meta])+
            fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])+
            fn $name() {
                $crate::__run_proptest!(
                    $crate::ProptestConfig::default(), $name, ($($arg in $strat),+), $body);
            }
        )*
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __run_proptest {
    ($config:expr, $name:ident, ($($arg:ident in $strat:expr),+), $body:block) => {{
        use $crate::strategy::Strategy as _;
        #[allow(unused_imports)]
        use $crate::ProptestConfig;
        let config = $config;
        // stable per-test seed: test name hash
        let mut seed = 0xcbf2_9ce4_8422_2325u64;
        for b in stringify!($name).bytes() {
            seed ^= b as u64;
            seed = seed.wrapping_mul(0x1000_0000_01b3);
        }
        let mut rng = $crate::test_runner::TestRng::from_seed(seed);
        for case in 0..config.cases {
            $(let $arg = ($strat).new_value(&mut rng);)+
            // capture inputs before the body (which may move them)
            let __inputs =
                [$(format!(concat!(stringify!($arg), " = {:?}"), &$arg)),+].join(", ");
            let result: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                (move || { $body Ok(()) })();
            match result {
                Ok(()) => {}
                // prop_assume! rejection: skip this case, draw another
                Err($crate::test_runner::TestCaseError::Reject(_)) => continue,
                Err(e) => panic!("proptest case {case} failed: {e}\n  inputs: {__inputs}"),
            }
        }
    }};
}

/// `prop_assume!(cond)` — skip the current case when `cond` is false.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return Err($crate::test_runner::TestCaseError::reject(
                concat!("assumption failed: ", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return Err($crate::test_runner::TestCaseError::reject(format!($($fmt)*)));
        }
    };
}

/// `prop_assert!(cond)` / `prop_assert!(cond, "msg {}", args...)`
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return Err($crate::test_runner::TestCaseError::fail(
                concat!("assertion failed: ", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return Err($crate::test_runner::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

/// `prop_assert_eq!(a, b)` with an optional trailing message.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        if !(*a == *b) {
            return Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
                stringify!($a), stringify!($b), a, b
            )));
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let (a, b) = (&$a, &$b);
        if !(*a == *b) {
            return Err($crate::test_runner::TestCaseError::fail(format!(
                "{}\n  left: {:?}\n right: {:?}",
                format!($($fmt)*), a, b
            )));
        }
    }};
}

/// `prop_assert_ne!(a, b)`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        if *a == *b {
            return Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: {} != {} (both {:?})",
                stringify!($a), stringify!($b), a
            )));
        }
    }};
}

/// Weighted or unweighted choice between strategies yielding the same type.
///
/// `prop_oneof![s1, s2]` or `prop_oneof![3 => s1, 1 => s2]`.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:literal => $strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $(($weight as u32, $crate::strategy::Strategy::boxed($strat))),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $((1u32, $crate::strategy::Strategy::boxed($strat))),+
        ])
    };
}
