//! The [`Strategy`] trait and combinators.
//!
//! A strategy here is simply a deterministic generator: `new_value` draws one
//! value from the test RNG. (Upstream proptest builds value *trees* to enable
//! shrinking; this stand-in trades shrinking away for simplicity.)

use std::ops::{Range, RangeInclusive};
use std::rc::Rc;

use crate::test_runner::TestRng;

/// A generator of test values.
pub trait Strategy {
    type Value: std::fmt::Debug;

    /// Draw one value.
    fn new_value(&self, rng: &mut TestRng) -> Self::Value;

    /// Map generated values through `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        U: std::fmt::Debug,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// Generate a value, then generate from the strategy it maps to.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }

    /// Filter generated values (regenerates until `f` accepts, with a retry
    /// cap to keep bad filters from hanging the suite).
    fn prop_filter<F>(self, _reason: &'static str, f: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter { inner: self, f }
    }

    /// Type-erase the strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Rc::new(move |rng: &mut TestRng| self.new_value(rng)))
    }
}

/// Strategies are usable by reference.
impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn new_value(&self, rng: &mut TestRng) -> Self::Value {
        (**self).new_value(rng)
    }
}

/// Always yields a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone + std::fmt::Debug>(pub T);

impl<T: Clone + std::fmt::Debug> Strategy for Just<T> {
    type Value = T;
    fn new_value(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, U, F> Strategy for Map<S, F>
where
    S: Strategy,
    U: std::fmt::Debug,
    F: Fn(S::Value) -> U,
{
    type Value = U;
    fn new_value(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.new_value(rng))
    }
}

pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, S2, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;
    fn new_value(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.new_value(rng)).new_value(rng)
    }
}

pub struct Filter<S, F> {
    inner: S,
    f: F,
}

impl<S, F> Strategy for Filter<S, F>
where
    S: Strategy,
    F: Fn(&S::Value) -> bool,
{
    type Value = S::Value;
    fn new_value(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1000 {
            let v = self.inner.new_value(rng);
            if (self.f)(&v) {
                return v;
            }
        }
        panic!("prop_filter rejected 1000 consecutive candidates");
    }
}

/// Type-erased strategy (cheaply clonable).
#[derive(Clone)]
pub struct BoxedStrategy<T>(Rc<dyn Fn(&mut TestRng) -> T>);

impl<T: std::fmt::Debug> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn new_value(&self, rng: &mut TestRng) -> T {
        (self.0)(rng)
    }
}

/// Weighted union of strategies (the engine behind `prop_oneof!`).
pub struct Union<T> {
    arms: Vec<(u32, BoxedStrategy<T>)>,
    total: u64,
}

impl<T> Union<T> {
    pub fn new(arms: Vec<(u32, BoxedStrategy<T>)>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        let total = arms.iter().map(|(w, _)| *w as u64).sum();
        assert!(total > 0, "prop_oneof! weights sum to zero");
        Union { arms, total }
    }
}

impl<T: std::fmt::Debug> Strategy for Union<T> {
    type Value = T;
    fn new_value(&self, rng: &mut TestRng) -> T {
        let mut pick = rng.below(self.total);
        for (w, s) in &self.arms {
            if pick < *w as u64 {
                return s.new_value(rng);
            }
            pick -= *w as u64;
        }
        unreachable!("weighted pick out of range")
    }
}

// ------------------------------------------------------------ range strategies

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut TestRng) -> $t {
                rng.gen_range_int(self.start as i128, self.end as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut TestRng) -> $t {
                rng.gen_range_int(*self.start() as i128, *self.end() as i128 + 1) as $t
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn new_value(&self, rng: &mut TestRng) -> f64 {
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

impl Strategy for Range<f32> {
    type Value = f32;
    fn new_value(&self, rng: &mut TestRng) -> f32 {
        self.start + (rng.unit_f64() as f32) * (self.end - self.start)
    }
}

// ------------------------------------------------------------- string strategy

/// A `&str` is interpreted as a character-class regex (see [`crate::string`]).
impl Strategy for &str {
    type Value = String;
    fn new_value(&self, rng: &mut TestRng) -> String {
        crate::string::generate(self, rng)
    }
}

impl Strategy for String {
    type Value = String;
    fn new_value(&self, rng: &mut TestRng) -> String {
        crate::string::generate(self, rng)
    }
}

// -------------------------------------------------------------- tuple strategy

macro_rules! tuple_strategy {
    ($(($($name:ident . $idx:tt),+);)*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn new_value(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.new_value(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A.0);
    (A.0, B.1);
    (A.0, B.1, C.2);
    (A.0, B.1, C.2, D.3);
    (A.0, B.1, C.2, D.3, E.4);
    (A.0, B.1, C.2, D.3, E.4, F.5);
}
