//! Numeric strategies beyond plain ranges.

pub mod f64 {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Which f64 values a [`F64Strategy`] may produce.
    #[derive(Debug, Clone, Copy)]
    pub struct F64Strategy {
        allow_special: bool,
    }

    /// Normal (finite, non-subnormal, non-NaN) doubles of either sign.
    pub const NORMAL: F64Strategy = F64Strategy { allow_special: false };

    /// Any bit pattern that is a finite number.
    pub const ANY: F64Strategy = F64Strategy { allow_special: true };

    impl F64Strategy {
        pub(crate) fn generate(&self, rng: &mut TestRng) -> f64 {
            if self.allow_special {
                // any finite double, including zero and subnormals
                loop {
                    let v = f64::from_bits(rng.next_u64());
                    if v.is_finite() {
                        return v;
                    }
                }
            }
            // normal: exponent in [1, 2046], random sign + mantissa
            let sign = rng.next_u64() & (1 << 63);
            let exp = 1 + rng.below(2046);
            let mantissa = rng.next_u64() & ((1u64 << 52) - 1);
            f64::from_bits(sign | (exp << 52) | mantissa)
        }
    }

    impl Strategy for F64Strategy {
        type Value = f64;
        fn new_value(&self, rng: &mut TestRng) -> f64 {
            self.generate(rng)
        }
    }
}
