//! Offline vendored stand-in for `criterion`.
//!
//! Provides the macro/struct surface the workspace's benches use
//! (`criterion_group!`, `criterion_main!`, `Criterion`, `BenchmarkGroup`,
//! `BenchmarkId`, `Bencher::iter`, `black_box`) with a simple measured-loop
//! implementation: warm up briefly, then run timed batches and report the
//! per-iteration median to stdout. No statistical analysis, plots, or
//! baseline storage — enough to compare hot paths before/after a change.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level benchmark driver.
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 30,
            measurement_time: Duration::from_millis(600),
        }
    }
}

impl Criterion {
    pub fn configure_from_args(self) -> Self {
        self
    }

    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.sample_size,
            measurement_time: self.measurement_time,
            _parent: std::marker::PhantomData,
        }
    }

    pub fn bench_function<F>(&mut self, id: impl std::fmt::Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(&id.to_string(), self.sample_size, self.measurement_time, &mut f);
        self
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    measurement_time: Duration,
    _parent: std::marker::PhantomData<&'a ()>,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d;
        self
    }

    pub fn bench_function<F>(&mut self, id: impl std::fmt::Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id);
        run_benchmark(&full, self.sample_size, self.measurement_time, &mut f);
        self
    }

    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let full = format!("{}/{}", self.name, id);
        run_benchmark(&full, self.sample_size, self.measurement_time, &mut |b| {
            f(b, input)
        });
        self
    }

    pub fn finish(self) {}
}

/// Function + parameter benchmark identifier.
pub struct BenchmarkId {
    function: String,
    parameter: String,
}

impl BenchmarkId {
    pub fn new(function: impl std::fmt::Display, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            function: function.to_string(),
            parameter: parameter.to_string(),
        }
    }

    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId { function: String::new(), parameter: parameter.to_string() }
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.function.is_empty() {
            write!(f, "{}", self.parameter)
        } else {
            write!(f, "{}/{}", self.function, self.parameter)
        }
    }
}

/// Timing harness handed to the closure.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
    measurement_time: Duration,
}

impl Bencher {
    /// Measure `f` repeatedly. Each sample times one call; sampling stops
    /// after `sample_size` samples or when the measurement budget runs out.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        // warm-up: one untimed call
        black_box(f());
        let budget = Instant::now();
        loop {
            let start = Instant::now();
            black_box(f());
            self.samples.push(start.elapsed());
            if self.samples.len() >= self.sample_size
                || budget.elapsed() >= self.measurement_time
            {
                break;
            }
        }
    }
}

fn run_benchmark<F: FnMut(&mut Bencher)>(
    name: &str,
    sample_size: usize,
    measurement_time: Duration,
    f: &mut F,
) {
    let mut bencher = Bencher {
        samples: Vec::new(),
        sample_size,
        measurement_time,
    };
    f(&mut bencher);
    if bencher.samples.is_empty() {
        println!("{name:<48} (no samples)");
        return;
    }
    bencher.samples.sort();
    let median = bencher.samples[bencher.samples.len() / 2];
    let min = bencher.samples[0];
    let max = bencher.samples[bencher.samples.len() - 1];
    println!(
        "{name:<48} median {:>12} (min {}, max {}, n={})",
        fmt_duration(median),
        fmt_duration(min),
        fmt_duration(max),
        bencher.samples.len()
    );
}

fn fmt_duration(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos < 1_000 {
        format!("{nanos} ns")
    } else if nanos < 1_000_000 {
        format!("{:.2} µs", nanos as f64 / 1_000.0)
    } else if nanos < 1_000_000_000 {
        format!("{:.2} ms", nanos as f64 / 1_000_000.0)
    } else {
        format!("{:.3} s", nanos as f64 / 1_000_000_000.0)
    }
}

/// Group several registration functions under one name.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $($target(&mut criterion);)+
        }
    };
}

/// Emit `main` running the named groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
