//! Offline vendored stand-in for `serde`.
//!
//! The data model is a concrete tree ([`__private::Content`]) rather than
//! upstream serde's visitor architecture: serializers receive a fully built
//! `Content`, deserializers surrender one. That is all `serde_json` (also
//! vendored) and the derive macro need, and it keeps the trait surface tiny
//! while remaining source-compatible with the `Serialize`/`Deserialize`/
//! `Serializer`/`Deserializer` bounds this workspace's code writes.

pub mod de;
pub mod ser;

#[doc(hidden)]
pub mod __private;

pub use de::{Deserialize, Deserializer};
pub use ser::{Serialize, Serializer};

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};
