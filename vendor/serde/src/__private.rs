//! Internal data model shared by the derive macro and `serde_json`.

use std::fmt;

/// Concrete serialized form — the whole data model of this mini-serde.
#[derive(Debug, Clone, PartialEq)]
pub enum Content {
    Null,
    Bool(bool),
    I64(i64),
    U64(u64),
    F64(f64),
    Str(String),
    Seq(Vec<Content>),
    Map(Vec<(String, Content)>),
}

/// Error raised while building or destructuring [`Content`].
#[derive(Debug, Clone)]
pub struct ContentError(pub String);

impl fmt::Display for ContentError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for ContentError {}

impl crate::ser::Error for ContentError {
    fn custom<T: fmt::Display>(msg: T) -> Self {
        ContentError(msg.to_string())
    }
}

impl crate::de::Error for ContentError {
    fn custom<T: fmt::Display>(msg: T) -> Self {
        ContentError(msg.to_string())
    }
}

/// Serializer whose output *is* the content tree.
pub struct ContentSerializer;

impl crate::ser::Serializer for ContentSerializer {
    type Ok = Content;
    type Error = ContentError;

    fn serialize_content(self, content: Content) -> Result<Content, ContentError> {
        Ok(content)
    }
}

/// Deserializer that surrenders a content tree.
pub struct ContentDeserializer(pub Content);

impl ContentDeserializer {
    pub fn new(content: Content) -> Self {
        ContentDeserializer(content)
    }
}

impl<'de> crate::de::Deserializer<'de> for ContentDeserializer {
    type Error = ContentError;

    fn take_content(self) -> Result<Content, ContentError> {
        Ok(self.0)
    }
}

/// Serialize any value to a content tree.
pub fn to_content<T: crate::ser::Serialize + ?Sized>(
    value: &T,
) -> Result<Content, ContentError> {
    value.serialize(ContentSerializer)
}

/// Remove `key` from a derive-generated field map; absent keys read as null
/// (so `Option` fields tolerate elision).
pub fn take_field(map: &mut Vec<(String, Content)>, key: &str) -> Content {
    match map.iter().position(|(k, _)| k == key) {
        Some(i) => map.swap_remove(i).1,
        None => Content::Null,
    }
}
