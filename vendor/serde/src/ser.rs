//! Serialization traits and implementations for std types.

use std::collections::{BTreeMap, HashMap};
use std::fmt::Display;

use crate::__private::Content;

/// Error constraint for serializer errors.
pub trait Error: Sized + Display {
    fn custom<T: Display>(msg: T) -> Self;
}

/// Consumes a built [`Content`] tree. The convenience methods mirror the
/// upstream `serialize_*` entry points used by hand-written impls
/// (e.g. `#[serde(with = ...)]` modules).
pub trait Serializer: Sized {
    type Ok;
    type Error: Error;

    fn serialize_content(self, content: Content) -> Result<Self::Ok, Self::Error>;

    fn serialize_str(self, v: &str) -> Result<Self::Ok, Self::Error> {
        self.serialize_content(Content::Str(v.to_string()))
    }

    fn serialize_bool(self, v: bool) -> Result<Self::Ok, Self::Error> {
        self.serialize_content(Content::Bool(v))
    }

    fn serialize_i64(self, v: i64) -> Result<Self::Ok, Self::Error> {
        self.serialize_content(Content::I64(v))
    }

    fn serialize_u64(self, v: u64) -> Result<Self::Ok, Self::Error> {
        self.serialize_content(Content::U64(v))
    }

    fn serialize_f64(self, v: f64) -> Result<Self::Ok, Self::Error> {
        self.serialize_content(Content::F64(v))
    }

    fn serialize_unit(self) -> Result<Self::Ok, Self::Error> {
        self.serialize_content(Content::Null)
    }

    fn serialize_none(self) -> Result<Self::Ok, Self::Error> {
        self.serialize_content(Content::Null)
    }
}

/// A value serializable into the content data model.
pub trait Serialize {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error>;
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        (**self).serialize(serializer)
    }
}

impl Serialize for bool {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_bool(*self)
    }
}

macro_rules! ser_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
                serializer.serialize_i64(*self as i64)
            }
        }
    )*};
}

macro_rules! ser_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
                serializer.serialize_u64(*self as u64)
            }
        }
    )*};
}

ser_signed!(i8, i16, i32, i64, isize);
ser_unsigned!(u8, u16, u32, u64, usize);

impl Serialize for f64 {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_f64(*self)
    }
}

impl Serialize for f32 {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_f64(*self as f64)
    }
}

impl Serialize for str {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_str(self)
    }
}

impl Serialize for String {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_str(self)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        match self {
            None => serializer.serialize_none(),
            Some(v) => v.serialize(serializer),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        self.as_slice().serialize(serializer)
    }
}

impl<T: Serialize> Serialize for [T] {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        let mut seq = Vec::with_capacity(self.len());
        for item in self {
            seq.push(crate::__private::to_content(item).map_err(S::Error::custom)?);
        }
        serializer.serialize_content(Content::Seq(seq))
    }
}

impl<V: Serialize> Serialize for HashMap<String, V> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        // deterministic key order
        let mut keys: Vec<&String> = self.keys().collect();
        keys.sort();
        let mut map = Vec::with_capacity(self.len());
        for k in keys {
            map.push((
                k.clone(),
                crate::__private::to_content(&self[k]).map_err(S::Error::custom)?,
            ));
        }
        serializer.serialize_content(Content::Map(map))
    }
}

impl<V: Serialize> Serialize for BTreeMap<String, V> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        let mut map = Vec::with_capacity(self.len());
        for (k, v) in self {
            map.push((k.clone(), crate::__private::to_content(v).map_err(S::Error::custom)?));
        }
        serializer.serialize_content(Content::Map(map))
    }
}
