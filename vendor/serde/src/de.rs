//! Deserialization traits and implementations for std types.

use std::collections::{BTreeMap, HashMap};
use std::fmt::Display;

use crate::__private::{Content, ContentDeserializer};

/// Error constraint for deserializer errors.
pub trait Error: Sized + Display {
    fn custom<T: Display>(msg: T) -> Self;
}

/// Surrenders a [`Content`] tree for a value to destructure.
pub trait Deserializer<'de>: Sized {
    type Error: Error;

    fn take_content(self) -> Result<Content, Self::Error>;
}

/// A value constructible from the content data model.
pub trait Deserialize<'de>: Sized {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error>;
}

fn unexpected<E: Error>(expected: &str, got: &Content) -> E {
    E::custom(format!("expected {expected}, got {got:?}"))
}

impl<'de> Deserialize<'de> for bool {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        match deserializer.take_content()? {
            Content::Bool(b) => Ok(b),
            other => Err(unexpected("bool", &other)),
        }
    }
}

macro_rules! de_int {
    ($($t:ty),*) => {$(
        impl<'de> Deserialize<'de> for $t {
            fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
                let content = deserializer.take_content()?;
                let wide: i128 = match content {
                    Content::I64(v) => v as i128,
                    Content::U64(v) => v as i128,
                    Content::F64(v) if v.fract() == 0.0 => v as i128,
                    other => return Err(unexpected("integer", &other)),
                };
                <$t>::try_from(wide)
                    .map_err(|_| D::Error::custom(format!("integer out of range for {}", stringify!($t))))
            }
        }
    )*};
}

de_int!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

impl<'de> Deserialize<'de> for f64 {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        match deserializer.take_content()? {
            Content::F64(v) => Ok(v),
            Content::I64(v) => Ok(v as f64),
            Content::U64(v) => Ok(v as f64),
            other => Err(unexpected("number", &other)),
        }
    }
}

impl<'de> Deserialize<'de> for f32 {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        f64::deserialize(deserializer).map(|v| v as f32)
    }
}

impl<'de> Deserialize<'de> for String {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        match deserializer.take_content()? {
            Content::Str(s) => Ok(s),
            other => Err(unexpected("string", &other)),
        }
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Option<T> {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        match deserializer.take_content()? {
            Content::Null => Ok(None),
            other => T::deserialize(ContentDeserializer(other))
                .map(Some)
                .map_err(D::Error::custom),
        }
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Vec<T> {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        match deserializer.take_content()? {
            Content::Seq(items) => items
                .into_iter()
                .map(|c| T::deserialize(ContentDeserializer(c)).map_err(D::Error::custom))
                .collect(),
            other => Err(unexpected("sequence", &other)),
        }
    }
}

impl<'de, V: Deserialize<'de>> Deserialize<'de> for HashMap<String, V> {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        match deserializer.take_content()? {
            Content::Map(pairs) => pairs
                .into_iter()
                .map(|(k, c)| {
                    V::deserialize(ContentDeserializer(c))
                        .map(|v| (k, v))
                        .map_err(D::Error::custom)
                })
                .collect(),
            other => Err(unexpected("map", &other)),
        }
    }
}

impl<'de, V: Deserialize<'de>> Deserialize<'de> for BTreeMap<String, V> {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        match deserializer.take_content()? {
            Content::Map(pairs) => pairs
                .into_iter()
                .map(|(k, c)| {
                    V::deserialize(ContentDeserializer(c))
                        .map(|v| (k, v))
                        .map_err(D::Error::custom)
                })
                .collect(),
            other => Err(unexpected("map", &other)),
        }
    }
}
